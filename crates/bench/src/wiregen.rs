//! Wire-format trace synthesis: turns the seeded map-packet workloads of
//! `algorithms::trace` into raw byte frames for the `banzai::wire`
//! front-end — per-flow 5-tuples, an optional 802.1Q tag, and a
//! controllable malformation rate for parser-stress runs.
//!
//! The encoding contract mirrors the parser's: every **canonical header
//! field** a trace packet carries (`sport`, `dport`, …) lands in its real
//! header position; every other field rides the metadata trailer, whose
//! schema ([`banzai::wire::WireConfig`]) is the sorted union of the
//! trace's non-header fields — so `parse(encode(pkt))` recovers the trace
//! packet exactly and a wire-born replay is field-for-field comparable to
//! the map-born one. Header positions the trace doesn't mention (MACs,
//! addresses, the 5-tuple remainder) are synthesized per *flow* from the
//! generator seed, deterministic like every other workload.

use banzai::wire::{
    encode, parse, FrameSpec, ParseVerdict, WireConfig, ETHERTYPE_VLAN, IPPROTO_TCP, IPPROTO_UDP,
};
use domino_ir::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Knobs for frame synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct GenOptions {
    /// Distinct synthetic flows (5-tuple variety beyond what the trace's
    /// own `sport`/`dport` fields provide).
    pub flows: u32,
    /// Fraction of frames carrying an 802.1Q tag.
    pub vlan_rate: f64,
    /// Fraction of frames corrupted by a random mutator (truncations,
    /// garbage ethertype, bad version/IHL/offset, unknown protocol).
    pub malform_rate: f64,
    /// Extra trailer fields beyond the trace's own (typically an
    /// algorithm's *output* fields, so results written by the pipeline
    /// get a wire slot and survive deparsing — the INT idiom). Header
    /// names are ignored: those already travel in the headers.
    pub extra_meta: Vec<String>,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            flows: 64,
            vlan_rate: 0.25,
            malform_rate: 0.0,
            extra_meta: Vec::new(),
        }
    }
}

/// A synthesized wire trace: the trailer schema the frames were encoded
/// with, and the frames themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTrace {
    /// The metadata-trailer schema (parser-side contract).
    pub cfg: WireConfig,
    /// One frame per trace packet, in order.
    pub frames: Vec<Vec<u8>>,
}

/// The trailer schema for a map-packet trace: the sorted union of every
/// non-header field any packet carries.
pub fn schema_for(trace: &[Packet]) -> WireConfig {
    let mut meta: BTreeSet<&str> = BTreeSet::new();
    for pkt in trace {
        for (name, _) in pkt.iter() {
            if !domino_ir::wire::is_header_field(name) {
                meta.insert(name);
            }
        }
    }
    WireConfig::with_meta_fields(meta).expect("non-header fields cannot shadow headers")
}

/// Encodes a map-packet trace as wire frames (see the module docs for the
/// header-vs-trailer contract). Deterministic given `seed`.
pub fn wire_trace(trace: &[Packet], seed: u64, opts: &GenOptions) -> WireTrace {
    let mut meta: BTreeSet<&str> = BTreeSet::new();
    for pkt in trace {
        for (name, _) in pkt.iter() {
            if !domino_ir::wire::is_header_field(name) {
                meta.insert(name);
            }
        }
    }
    for f in &opts.extra_meta {
        if !domino_ir::wire::is_header_field(f) {
            meta.insert(f);
        }
    }
    let cfg = WireConfig::with_meta_fields(meta).expect("non-header fields cannot shadow headers");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F8A3);
    let flows = opts.flows.max(1);
    let frames = trace
        .iter()
        .map(|pkt| {
            let flow = rng.gen_range(0..flows);
            let spec = FrameSpec {
                eth_dst: 0x0200_0000_0000 | ((flow as u64) << 8) | 0x01,
                eth_src: 0x0200_0000_0000 | ((flow as u64) << 8) | 0x02,
                vlan_tci: rng
                    .gen_bool(opts.vlan_rate)
                    .then_some(0x2000 | (flow as u16 & 0x0fff)),
                ip_src: u32::from_be_bytes([10, 0, 0, 0]) | flow,
                ip_dst: u32::from_be_bytes([10, 1, 0, 0]) | (flow.rotate_left(16) & 0xff),
                ip_proto: if flow % 4 == 3 {
                    IPPROTO_UDP
                } else {
                    IPPROTO_TCP
                },
                sport: 1024 + (flow as u16 % 4096),
                dport: if flow % 2 == 0 { 80 } else { 443 },
                ..FrameSpec::default()
            };
            let mut frame = encode(pkt, &cfg, &spec);
            if rng.gen_bool(opts.malform_rate) {
                malform(&mut frame, &mut rng);
            }
            frame
        })
        .collect();
    WireTrace { cfg, frames }
}

/// Synthesizes the wire trace for one named algorithm workload: the
/// seeded map trace from `algorithms`, encoded per `opts`.
pub fn wire_trace_for(name: &str, n: usize, seed: u64, opts: &GenOptions) -> WireTrace {
    let algo = algorithms::by_name(name).unwrap_or_else(|| panic!("unknown algorithm `{name}`"));
    wire_trace(&algo.trace(n, seed), seed, opts)
}

/// The L3 offset of an encoded frame (18 when 802.1Q-tagged, else 14).
fn l3_off(frame: &[u8]) -> usize {
    if frame.len() >= 14 && u16::from_be_bytes([frame[12], frame[13]]) == ETHERTYPE_VLAN {
        18
    } else {
        14
    }
}

/// Corrupts one well-formed frame in place with a randomly chosen
/// mutator. Every mutator produces a frame the parser must *reject* —
/// none of them leaves the frame accepted, so malformed counts are exact.
fn malform(frame: &mut Vec<u8>, rng: &mut StdRng) {
    let l3 = l3_off(frame);
    match rng.gen_range(0u8..6) {
        // Runt: cut inside the Ethernet (or VLAN) header.
        0 => frame.truncate(rng.gen_range(0..l3.min(frame.len()))),
        // Cut anywhere past the Ethernet header: lands inside IPv4, L4,
        // or the metadata trailer depending on where the knife falls.
        1 => {
            let cut = rng.gen_range(l3..frame.len().max(l3 + 1)).min(frame.len());
            frame.truncate(cut.max(l3));
        }
        // Garbage ethertype (IPv6) in the innermost type position.
        2 => {
            frame[l3 - 2] = 0x86;
            frame[l3 - 1] = 0xdd;
        }
        // Bad IP version nibble.
        3 => frame[l3] = 0x60 | (frame[l3] & 0x0f),
        // IHL below 5.
        4 => frame[l3] = (frame[l3] & 0xf0) | 0x3,
        // Unknown L4 protocol (GRE).
        _ => frame[l3 + 9] = 47,
    }
}

/// Tallies what the parser says about a frame set: `(accepted, one count
/// per [`ParseVerdict`] in `ALL` order)`. The expected-counter oracle for
/// stress differentials.
pub fn expected_verdicts(
    frames: &[Vec<u8>],
    cfg: &WireConfig,
) -> (u64, [u64; ParseVerdict::COUNT]) {
    let mut accepted = 0u64;
    let mut counts = [0u64; ParseVerdict::COUNT];
    for f in frames {
        match parse(f, cfg) {
            Ok(_) => accepted += 1,
            Err(v) => counts[v.index()] += 1,
        }
    }
    (accepted, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_sorted_union_of_non_header_fields() {
        let trace = vec![
            Packet::new().with("arrival", 1).with("sport", 2),
            Packet::new().with("next_hop", 3).with("arrival", 4),
        ];
        let cfg = schema_for(&trace);
        assert_eq!(cfg.meta_fields(), ["arrival", "next_hop"]);
    }

    #[test]
    fn well_formed_frames_roundtrip_to_the_trace() {
        let opts = GenOptions::default();
        let algo = algorithms::by_name("flowlet").unwrap();
        let trace = algo.trace(200, 7);
        let wt = wire_trace(&trace, 7, &opts);
        assert_eq!(wt.frames.len(), trace.len());
        let mut vlans = 0;
        for (frame, orig) in wt.frames.iter().zip(&trace) {
            let wire = parse(frame, &wt.cfg).expect("malform_rate 0 frames all parse");
            for (name, v) in orig.iter() {
                assert_eq!(wire.pkt.get(name), Some(v), "field `{name}`");
            }
            vlans += wire.layout.has_vlan() as usize;
        }
        // The tag rate is stochastic but seeded: some of each.
        assert!(vlans > 0 && vlans < trace.len(), "vlans = {vlans}");
    }

    #[test]
    fn generation_is_deterministic() {
        let opts = GenOptions {
            malform_rate: 0.3,
            ..GenOptions::default()
        };
        let a = wire_trace_for("heavy_hitters", 300, 42, &opts);
        let b = wire_trace_for("heavy_hitters", 300, 42, &opts);
        assert_eq!(a, b);
        let c = wire_trace_for("heavy_hitters", 300, 43, &opts);
        assert_ne!(a.frames, c.frames);
    }

    #[test]
    fn malformed_frames_are_all_rejected_and_diverse() {
        let opts = GenOptions {
            malform_rate: 1.0,
            ..GenOptions::default()
        };
        let wt = wire_trace_for("flowlet", 500, 11, &opts);
        let (accepted, counts) = expected_verdicts(&wt.frames, &wt.cfg);
        assert_eq!(accepted, 0, "every mutator must produce a reject");
        assert_eq!(counts.iter().sum::<u64>(), 500);
        // The mutator set covers several distinct verdicts.
        assert!(
            counts.iter().filter(|&&c| c > 0).count() >= 4,
            "verdict spread too narrow: {counts:?}"
        );
    }
}
