//! CONGA's leaf-to-leaf best-path tracking — the paper's flagship example
//! for the Pairs atom (§5.3): two state variables whose updates are
//! mutually conditioned must live in ONE atom, or transactionality breaks.
//!
//! Run with: `cargo run --example conga_load_balancing`

use domino::prelude::*;

fn main() {
    let algo = algorithms::by_name("conga").unwrap();

    // Pairs is the *least* expressive atom that runs CONGA: every weaker
    // target rejects it.
    for kind in AtomKind::ALL {
        let result = domino::compile(algo.source, &Target::banzai(kind));
        println!(
            "target banzai-{:<11} {}",
            kind.short_name(),
            if result.is_ok() { "OK" } else { "rejected" }
        );
    }

    let pipeline = domino::compile(algo.source, &Target::banzai(AtomKind::Pairs)).unwrap();
    let mut machine = Machine::new(pipeline);

    // Feedback packets from source leaf 3: path utilizations drift; the
    // switch must always remember the best (least utilized) path.
    println!("\nfeedback stream for source leaf 3:");
    let feedback = [
        (7, 500), // path 7 at 50% utilization — becomes best
        (2, 300), // path 2 better — takes over
        (2, 900), // the best path degrades IN PLACE (the second branch:
        // same path id, so its utilization is refreshed upward)
        (5, 400), // path 5 now beats the degraded 900
    ];
    for (path, util) in feedback {
        machine.process(
            Packet::new()
                .with("src", 3)
                .with("path_id", path)
                .with("util", util),
        );
        let best = match machine.state().get("best_path").unwrap() {
            domino::domino_ir::StateValue::Array(v) => v[3],
            _ => unreachable!(),
        };
        let best_util = match machine.state().get("best_path_util").unwrap() {
            domino::domino_ir::StateValue::Array(v) => v[3],
            _ => unreachable!(),
        };
        println!("  feedback(path={path}, util={util:>3}) -> best path {best} @ {best_util}");
    }

    // Final state: path 5 at utilization 400.
    let best = match machine.state().get("best_path").unwrap() {
        domino::domino_ir::StateValue::Array(v) => v[3],
        _ => unreachable!(),
    };
    assert_eq!(best, 5);
    println!("\nbest path for leaf 3: {best} (updates to the pair were atomic)");
}
