//! Independent Rust reference implementations of the Table 4 algorithms.
//!
//! Each type here implements its algorithm directly — idiomatic Rust over
//! native state (`Vec<i32>`, scalars), written from the *algorithm's*
//! description, not from the Domino source. Differential tests run
//! compiled Banzai pipelines against these on the workload traces: if the
//! Domino program, the compiler, and the machine model are all correct,
//! the designated output fields and exported state must agree exactly.
//!
//! The only shared code is the hash/intrinsic library
//! ([`domino_ast::intrinsics`]) — both sides must hash identically for
//! outputs to be comparable; everything else (control flow, state layout,
//! arithmetic) is independent.

use domino_ast::intrinsics::eval as intr;
use domino_ir::{Packet, StateValue};

/// A reference implementation: processes packets serially and can export
/// its state for comparison with a Banzai machine's state store.
pub trait Reference {
    /// Processes one packet, setting the algorithm's output fields.
    fn process(&mut self, pkt: &mut Packet);

    /// Exports state as `(variable name, value)` pairs matching the Domino
    /// program's state declarations.
    fn export_state(&self) -> Vec<(String, StateValue)> {
        Vec::new()
    }
}

/// Builds the reference implementation for an algorithm by name.
///
/// # Panics
///
/// Panics on an unknown name; callers go through the
/// [`crate::Algorithm`] registry.
pub fn build(name: &str) -> Box<dyn Reference> {
    match name {
        "bloom_filter" => Box::new(BloomFilter::new()),
        "heavy_hitters" => Box::new(HeavyHitters::new()),
        "flowlet" => Box::new(Flowlet::new()),
        "rcp" => Box::new(Rcp::default()),
        "sampled_netflow" => Box::new(SampledNetflow::new()),
        "hull" => Box::new(Hull::default()),
        "avq" => Box::new(Avq::new()),
        "stfq" => Box::new(Stfq::new()),
        "dns_ttl_change" => Box::new(DnsTtlChange::new()),
        "conga" => Box::new(Conga::new()),
        "codel" => Box::new(Codel::default()),
        "codel_lut" => Box::new(CodelLut::default()),
        other => panic!("no reference implementation for `{other}`"),
    }
}

// ---------------------------------------------------------------------
// Bloom filter (3 hash functions)
// ---------------------------------------------------------------------

/// Three-bank Bloom filter over the (sport, dport) flow key.
pub struct BloomFilter {
    banks: [Vec<bool>; 3],
}

impl BloomFilter {
    const ENTRIES: i32 = 1024;

    /// Empty filter.
    pub fn new() -> Self {
        BloomFilter {
            banks: std::array::from_fn(|_| vec![false; Self::ENTRIES as usize]),
        }
    }

    fn hashes(sport: i32, dport: i32) -> [usize; 3] {
        [
            (intr("hash2", &[sport, dport]) % Self::ENTRIES) as usize,
            (intr("hash2", &[dport, sport]) % Self::ENTRIES) as usize,
            (intr("hash3", &[sport, dport, 48879]) % Self::ENTRIES) as usize,
        ]
    }
}

impl Default for BloomFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl Reference for BloomFilter {
    fn process(&mut self, pkt: &mut Packet) {
        let hs = Self::hashes(pkt.expect("sport"), pkt.expect("dport"));
        let member = self.banks.iter().zip(hs).all(|(bank, h)| bank[h]);
        pkt.set("member", member as i32);
        for (bank, h) in self.banks.iter_mut().zip(hs) {
            bank[h] = true;
        }
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        self.banks
            .iter()
            .enumerate()
            .map(|(i, bank)| {
                (
                    format!("filter{}", i + 1),
                    StateValue::Array(bank.iter().map(|&b| b as i32).collect()),
                )
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Heavy hitters (count-min sketch)
// ---------------------------------------------------------------------

/// Count-min sketch with three rows plus threshold flagging.
pub struct HeavyHitters {
    rows: [Vec<i32>; 3],
}

impl HeavyHitters {
    const ENTRIES: i32 = 4096;
    const THRESHOLD: i32 = 100;

    /// Empty sketch.
    pub fn new() -> Self {
        HeavyHitters {
            rows: std::array::from_fn(|_| vec![0; Self::ENTRIES as usize]),
        }
    }

    /// The sketch estimate for a flow (without updating).
    pub fn estimate(&self, sport: i32, dport: i32) -> i32 {
        let hs = Self::hashes(sport, dport);
        self.rows
            .iter()
            .zip(hs)
            .map(|(row, h)| row[h])
            .min()
            .unwrap()
    }

    fn hashes(sport: i32, dport: i32) -> [usize; 3] {
        [
            (intr("hash2", &[sport, dport]) % Self::ENTRIES) as usize,
            (intr("hash2", &[dport, sport]) % Self::ENTRIES) as usize,
            (intr("hash3", &[sport, dport, 51966]) % Self::ENTRIES) as usize,
        ]
    }
}

impl Default for HeavyHitters {
    fn default() -> Self {
        Self::new()
    }
}

impl Reference for HeavyHitters {
    fn process(&mut self, pkt: &mut Packet) {
        let hs = Self::hashes(pkt.expect("sport"), pkt.expect("dport"));
        let mut counts = [0i32; 3];
        for ((row, h), c) in self.rows.iter_mut().zip(hs).zip(&mut counts) {
            row[h] = row[h].wrapping_add(1);
            *c = row[h];
        }
        let estimate = counts.into_iter().min().unwrap();
        pkt.set("estimate", estimate);
        pkt.set("is_heavy", (estimate > Self::THRESHOLD) as i32);
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| (format!("cms{}", i + 1), StateValue::Array(row.clone())))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Flowlet switching
// ---------------------------------------------------------------------

/// Flowlet load balancer (Figure 3a semantics).
pub struct Flowlet {
    last_time: Vec<i32>,
    saved_hop: Vec<i32>,
}

impl Flowlet {
    const NUM_FLOWLETS: i32 = 8000;
    const THRESHOLD: i32 = 5;
    const NUM_HOPS: i32 = 10;

    /// Fresh tables.
    pub fn new() -> Self {
        Flowlet {
            last_time: vec![0; Self::NUM_FLOWLETS as usize],
            saved_hop: vec![0; Self::NUM_FLOWLETS as usize],
        }
    }
}

impl Default for Flowlet {
    fn default() -> Self {
        Self::new()
    }
}

impl Reference for Flowlet {
    fn process(&mut self, pkt: &mut Packet) {
        let (sport, dport, arrival) = (
            pkt.expect("sport"),
            pkt.expect("dport"),
            pkt.expect("arrival"),
        );
        let new_hop = intr("hash3", &[sport, dport, arrival]) % Self::NUM_HOPS;
        let id = (intr("hash2", &[sport, dport]) % Self::NUM_FLOWLETS) as usize;
        if arrival.wrapping_sub(self.last_time[id]) > Self::THRESHOLD {
            self.saved_hop[id] = new_hop;
        }
        self.last_time[id] = arrival;
        pkt.set("id", id as i32);
        pkt.set("new_hop", new_hop);
        pkt.set("next_hop", self.saved_hop[id]);
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![
            (
                "last_time".into(),
                StateValue::Array(self.last_time.clone()),
            ),
            (
                "saved_hop".into(),
                StateValue::Array(self.saved_hop.clone()),
            ),
        ]
    }
}

// ---------------------------------------------------------------------
// RCP accumulation
// ---------------------------------------------------------------------

/// RCP egress byte/RTT accumulators.
#[derive(Default)]
pub struct Rcp {
    input_traffic_bytes: i32,
    sum_rtt_tr: i32,
    num_pkts_with_rtt: i32,
}

impl Rcp {
    const MAX_ALLOWABLE_RTT: i32 = 30;
}

impl Reference for Rcp {
    fn process(&mut self, pkt: &mut Packet) {
        self.input_traffic_bytes = self
            .input_traffic_bytes
            .wrapping_add(pkt.expect("size_bytes"));
        let rtt = pkt.expect("rtt");
        if rtt < Self::MAX_ALLOWABLE_RTT {
            self.sum_rtt_tr = self.sum_rtt_tr.wrapping_add(rtt);
            self.num_pkts_with_rtt = self.num_pkts_with_rtt.wrapping_add(1);
        }
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![
            (
                "input_traffic_bytes".into(),
                StateValue::Scalar(self.input_traffic_bytes),
            ),
            ("sum_rtt_tr".into(), StateValue::Scalar(self.sum_rtt_tr)),
            (
                "num_pkts_with_rtt".into(),
                StateValue::Scalar(self.num_pkts_with_rtt),
            ),
        ]
    }
}

// ---------------------------------------------------------------------
// Sampled NetFlow
// ---------------------------------------------------------------------

/// Per-bucket 1-in-N packet sampler.
pub struct SampledNetflow {
    count: Vec<i32>,
}

impl SampledNetflow {
    const SAMPLE_RATE: i32 = 30;
    const NUM_BUCKETS: i32 = 4096;

    /// Fresh counters.
    pub fn new() -> Self {
        SampledNetflow {
            count: vec![0; Self::NUM_BUCKETS as usize],
        }
    }
}

impl Default for SampledNetflow {
    fn default() -> Self {
        Self::new()
    }
}

impl Reference for SampledNetflow {
    fn process(&mut self, pkt: &mut Packet) {
        let idx = (intr("hash2", &[pkt.expect("sport"), pkt.expect("dport")]) % Self::NUM_BUCKETS)
            as usize;
        if self.count[idx] == Self::SAMPLE_RATE - 1 {
            pkt.set("sample", 1);
            self.count[idx] = 0;
        } else {
            pkt.set("sample", 0);
            self.count[idx] += 1;
        }
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![("count".into(), StateValue::Array(self.count.clone()))]
    }
}

// ---------------------------------------------------------------------
// HULL phantom queue
// ---------------------------------------------------------------------

/// HULL's phantom (virtual) queue with ECN marking.
#[derive(Default)]
pub struct Hull {
    last_update: i32,
    vq: i32,
}

impl Hull {
    const DRAIN_SHIFT: u32 = 3;
    const MARK_THRESH: i32 = 3000;
}

impl Reference for Hull {
    fn process(&mut self, pkt: &mut Packet) {
        let arrival = pkt.expect("arrival");
        let size = pkt.expect("size_bytes");
        let elapsed = arrival.wrapping_sub(self.last_update);
        self.last_update = arrival;
        let drained = elapsed.wrapping_shl(Self::DRAIN_SHIFT);
        // vq' = max(vq - drained, 0) + size
        self.vq = if drained > self.vq {
            size
        } else {
            self.vq.wrapping_sub(drained.wrapping_sub(size))
        };
        pkt.set("mark", (self.vq > Self::MARK_THRESH) as i32);
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![
            ("last_update".into(), StateValue::Scalar(self.last_update)),
            ("vq".into(), StateValue::Scalar(self.vq)),
        ]
    }
}

// ---------------------------------------------------------------------
// Adaptive Virtual Queue
// ---------------------------------------------------------------------

/// AVQ's virtual queue + adaptive virtual capacity (line-rate
/// formulation: drain by shift, halt adaptation at the cap).
pub struct Avq {
    last_update: i32,
    vq: i32,
    vcap: i32,
}

impl Avq {
    const VQ_LIMIT: i32 = 3000;
    const CAP_SHIFT: u32 = 3;
    const CAP_MAX: i32 = 4000;
    const ALPHA_SHIFT: u32 = 4;

    /// Initial capacity matches the Domino source.
    pub fn new() -> Self {
        Avq {
            last_update: 0,
            vq: 0,
            vcap: 1000,
        }
    }
}

impl Default for Avq {
    fn default() -> Self {
        Self::new()
    }
}

impl Reference for Avq {
    fn process(&mut self, pkt: &mut Packet) {
        let arrival = pkt.expect("arrival");
        let size = pkt.expect("size_bytes");
        let elapsed = arrival.wrapping_sub(self.last_update);
        self.last_update = arrival;
        let drained = elapsed.wrapping_shl(Self::CAP_SHIFT);
        let thresh = Self::VQ_LIMIT - size + drained;
        let mut mark = 0;
        if drained > self.vq {
            self.vq = size; // drained empty, then enqueue
        } else if self.vq > thresh {
            mark = 1; // would overflow the virtual buffer
            self.vq = self.vq.wrapping_sub(drained);
        } else {
            self.vq = self.vq.wrapping_sub(drained.wrapping_sub(size));
        }
        pkt.set("mark", mark);
        let gain = elapsed.wrapping_shr(Self::ALPHA_SHIFT);
        if self.vcap < Self::CAP_MAX {
            self.vcap = self.vcap.wrapping_add(gain);
        }
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![
            ("last_update".into(), StateValue::Scalar(self.last_update)),
            ("vq".into(), StateValue::Scalar(self.vq)),
            ("vcap".into(), StateValue::Scalar(self.vcap)),
        ]
    }
}

// ---------------------------------------------------------------------
// STFQ priorities
// ---------------------------------------------------------------------

/// Start-time fair queueing: per-flow virtual start/finish bookkeeping.
pub struct Stfq {
    last_finish: Vec<i32>,
}

impl Stfq {
    const NUM_FLOWS: i32 = 2048;

    /// Fresh flow table.
    pub fn new() -> Self {
        Stfq {
            last_finish: vec![0; Self::NUM_FLOWS as usize],
        }
    }
}

impl Default for Stfq {
    fn default() -> Self {
        Self::new()
    }
}

impl Reference for Stfq {
    fn process(&mut self, pkt: &mut Packet) {
        let flow = pkt.expect("flow").rem_euclid(Self::NUM_FLOWS) as usize;
        let (vt, length) = (pkt.expect("vt"), pkt.expect("length"));
        let lf = self.last_finish[flow];
        let start = if lf != 0 && lf > vt { lf } else { vt };
        self.last_finish[flow] = start.wrapping_add(length);
        pkt.set("start", start);
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![(
            "last_finish".into(),
            StateValue::Array(self.last_finish.clone()),
        )]
    }
}

// ---------------------------------------------------------------------
// DNS TTL change tracking
// ---------------------------------------------------------------------

/// EXPOSURE-style per-domain TTL change counter.
pub struct DnsTtlChange {
    last_ttl: Vec<i32>,
    num_changes: Vec<i32>,
    ttl_streak: Vec<i32>,
}

impl DnsTtlChange {
    const NUM_DOMAINS: i32 = 4096;

    /// Fresh tables.
    pub fn new() -> Self {
        DnsTtlChange {
            last_ttl: vec![0; Self::NUM_DOMAINS as usize],
            num_changes: vec![0; Self::NUM_DOMAINS as usize],
            ttl_streak: vec![0; Self::NUM_DOMAINS as usize],
        }
    }
}

impl Default for DnsTtlChange {
    fn default() -> Self {
        Self::new()
    }
}

impl Reference for DnsTtlChange {
    fn process(&mut self, pkt: &mut Packet) {
        let d = (intr("hash2", &[pkt.expect("domain"), 12289]) % Self::NUM_DOMAINS) as usize;
        let ttl = pkt.expect("ttl");
        let seen = self.last_ttl[d] != 0;
        let changed = seen && self.last_ttl[d] != ttl;
        self.last_ttl[d] = ttl;
        self.num_changes[d] = self.num_changes[d].wrapping_add(changed as i32);
        self.ttl_streak[d] = if !seen || changed {
            1
        } else {
            self.ttl_streak[d].wrapping_add(1)
        };
        pkt.set("changed", changed as i32);
        pkt.set("change_count", self.num_changes[d]);
        pkt.set("streak", self.ttl_streak[d]);
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![
            ("last_ttl".into(), StateValue::Array(self.last_ttl.clone())),
            (
                "num_changes".into(),
                StateValue::Array(self.num_changes.clone()),
            ),
            (
                "ttl_streak".into(),
                StateValue::Array(self.ttl_streak.clone()),
            ),
        ]
    }
}

// ---------------------------------------------------------------------
// CONGA best-path tracking
// ---------------------------------------------------------------------

/// CONGA's per-source best-path (utilization, id) pair.
pub struct Conga {
    best_path_util: Vec<i32>,
    best_path: Vec<i32>,
}

impl Conga {
    const MAX_SRC: i32 = 256;

    /// Fresh tables (utilization starts at +infinity).
    pub fn new() -> Self {
        Conga {
            best_path_util: vec![i32::MAX; Self::MAX_SRC as usize],
            best_path: vec![-1; Self::MAX_SRC as usize],
        }
    }
}

impl Default for Conga {
    fn default() -> Self {
        Self::new()
    }
}

impl Reference for Conga {
    fn process(&mut self, pkt: &mut Packet) {
        let src = pkt.expect("src").rem_euclid(Self::MAX_SRC) as usize;
        let (util, path_id) = (pkt.expect("util"), pkt.expect("path_id"));
        if util < self.best_path_util[src] {
            self.best_path_util[src] = util;
            self.best_path[src] = path_id;
        } else if path_id == self.best_path[src] {
            self.best_path_util[src] = util;
        }
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![
            (
                "best_path_util".into(),
                StateValue::Array(self.best_path_util.clone()),
            ),
            (
                "best_path".into(),
                StateValue::Array(self.best_path.clone()),
            ),
        ]
    }
}

// ---------------------------------------------------------------------
// CoDel (faithful, with the sqrt control law)
// ---------------------------------------------------------------------

/// CoDel AQM matching `codel.domino` semantics (integer control law).
#[derive(Default)]
pub struct Codel {
    first_above_time: i32,
    dropping: i32,
    drop_next: i32,
    count: i32,
}

impl Codel {
    const TARGET: i32 = 5;
    const INTERVAL: i32 = 100;
}

impl Reference for Codel {
    fn process(&mut self, pkt: &mut Packet) {
        let now = pkt.expect("now");
        let sojourn = now.wrapping_sub(pkt.expect("enq_ts"));
        let mut ok_to_drop = 0;
        if sojourn < Self::TARGET {
            self.first_above_time = 0;
        } else if self.first_above_time == 0 {
            self.first_above_time = now.wrapping_add(Self::INTERVAL);
        } else if now >= self.first_above_time {
            ok_to_drop = 1;
        }
        let gap = {
            let s = domino_ast::intrinsics::isqrt(self.count);
            // Matches Domino's total division: x / 0 == 0.
            if s == 0 {
                0
            } else {
                Self::INTERVAL / s
            }
        };
        let mut drop = 0;
        if self.dropping == 1 {
            if ok_to_drop == 0 {
                self.dropping = 0;
            } else if now >= self.drop_next {
                drop = 1;
                self.count = self.count.wrapping_add(1);
                self.drop_next = self.drop_next.wrapping_add(gap);
            }
        } else if ok_to_drop == 1 {
            self.dropping = 1;
            drop = 1;
            self.count = 1;
            self.drop_next = now.wrapping_add(gap);
        }
        pkt.set("ok_to_drop", ok_to_drop);
        pkt.set("drop", drop);
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![
            (
                "first_above_time".into(),
                StateValue::Scalar(self.first_above_time),
            ),
            ("dropping".into(), StateValue::Scalar(self.dropping)),
            ("drop_next".into(), StateValue::Scalar(self.drop_next)),
            ("count".into(), StateValue::Scalar(self.count)),
        ]
    }
}

// ---------------------------------------------------------------------
// CoDel, LUT variant (X1)
// ---------------------------------------------------------------------

/// CoDel with the time-based count estimate and LUT control law,
/// matching `codel_lut.domino`.
#[derive(Default)]
pub struct CodelLut {
    first_above_time: i32,
    dropping: i32,
    drop_start: i32,
    drop_next: i32,
}

impl CodelLut {
    const TARGET: i32 = 5;
    const INTERVAL: i32 = 100;
}

impl Reference for CodelLut {
    fn process(&mut self, pkt: &mut Packet) {
        let now = pkt.expect("now");
        let sojourn = now.wrapping_sub(pkt.expect("enq_ts"));
        let mut ok_to_drop = 0;
        if sojourn < Self::TARGET {
            self.first_above_time = 0;
        } else if self.first_above_time == 0 {
            self.first_above_time = now.wrapping_add(Self::INTERVAL);
        } else if now >= self.first_above_time {
            ok_to_drop = 1;
        }
        self.dropping = ok_to_drop;
        let drop_start_old = self.drop_start;
        if ok_to_drop == 1 {
            if self.drop_start == 0 {
                self.drop_start = now;
            }
        } else {
            self.drop_start = 0;
        }
        let elapsed = now.wrapping_sub(drop_start_old);
        let count_est = elapsed.wrapping_shr(6);
        let gap = intr("codel_gap", &[count_est, Self::INTERVAL]);
        let mut time_to_drop = 0;
        if ok_to_drop == 1 && now >= self.drop_next {
            time_to_drop = 1;
            self.drop_next = now.wrapping_add(gap);
        }
        pkt.set("drop", ok_to_drop & time_to_drop);
    }

    fn export_state(&self) -> Vec<(String, StateValue)> {
        vec![
            (
                "first_above_time".into(),
                StateValue::Scalar(self.first_above_time),
            ),
            ("dropping".into(), StateValue::Scalar(self.dropping)),
            ("drop_start".into(), StateValue::Scalar(self.drop_start)),
            ("drop_next".into(), StateValue::Scalar(self.drop_next)),
        ]
    }
}
