//! Flowlet switching (Figure 3 of the paper) as a running system: compile
//! the load balancer, replay a bursty TCP-like trace, and measure how
//! traffic spreads over next hops while packets inside a burst stick to
//! one path (no reordering within a flowlet).
//!
//! Run with: `cargo run --example flowlet_load_balancer`

use domino::prelude::*;

fn main() {
    let algo = algorithms::by_name("flowlet").unwrap();
    let pipeline = domino::compile(algo.source, &Target::banzai(AtomKind::Praw))
        .expect("flowlet needs exactly the PRAW atom (Table 4)");
    println!(
        "compiled `{}`: {} stages, max {} atoms/stage\n",
        algo.name,
        pipeline.depth(),
        pipeline.max_atoms_per_stage()
    );

    let mut machine = Machine::new(pipeline.clone());
    let trace = algo.trace(20_000, 7);
    let t = std::time::Instant::now();
    let outs = machine.run_trace(&trace);
    let map_elapsed = t.elapsed();

    // The same pipeline on the slot-compiled fast path: fields interned to
    // dense slots at compile time, bit-identical results, no per-packet
    // string hashing.
    let mut fast = SlotMachine::compile(&pipeline).expect("compiled pipelines always lower");
    let flat_trace = fast.flatten_trace(&trace);
    let t = std::time::Instant::now();
    fast.run_trace_flat(&flat_trace);
    let slot_elapsed = t.elapsed();
    assert_eq!(
        machine.state().clone(),
        fast.export_state(),
        "engines must agree"
    );
    println!(
        "replayed {} packets: map engine {map_elapsed:?}, slot engine {slot_elapsed:?} \
         ({:.1}x)\n",
        trace.len(),
        map_elapsed.as_secs_f64() / slot_elapsed.as_secs_f64().max(1e-9)
    );

    // Load distribution across the 10 hops.
    let mut per_hop = [0usize; 10];
    for p in &outs {
        per_hop[p.get("next_hop").unwrap() as usize] += 1;
    }
    println!("load distribution over next hops:");
    for (hop, n) in per_hop.iter().enumerate() {
        let bar = "#".repeat(n / 60);
        println!("  hop {hop}: {n:>5} {bar}");
    }

    // Within-burst stability: consecutive packets of the same flow less
    // than THRESHOLD apart must use the same hop.
    let mut violations = 0;
    let mut pairs = 0;
    for w in outs.windows(2) {
        let same_flow = w[0].get("id") == w[1].get("id");
        let gap = w[1].get("arrival").unwrap() - w[0].get("arrival").unwrap();
        if same_flow && gap <= 5 {
            pairs += 1;
            if w[0].get("next_hop") != w[1].get("next_hop") {
                violations += 1;
            }
        }
    }
    println!("\nintra-flowlet hop changes: {violations}/{pairs} (must be 0 — no reordering)");
    assert_eq!(violations, 0);
}
