//! Hand-written lexer for the Domino language.
//!
//! Domino is lexically a small subset of C: identifiers, integer literals
//! (decimal and hexadecimal), the usual operator set, `//` and `/* */`
//! comments, and the `#define` directive. Keywords that C has but Domino
//! bans (Table 1: `for`, `while`, `do`, `goto`, `break`, `continue`,
//! `return`, ...) are lexed as [`TokenKind::KwBanned`] so the parser can
//! emit a targeted "not allowed in Domino" diagnostic instead of a generic
//! syntax error.

use crate::diag::{Diagnostic, Result, Stage};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Keywords Domino rejects outright, with the Table 1 reason.
const BANNED_KEYWORDS: &[&str] = &[
    "for", "while", "do", "goto", "break", "continue", "return", "switch", "case", "default",
    "float", "double", "char", "long", "short", "unsigned", "signed", "static", "const", "sizeof",
    "typedef", "union", "enum",
];

/// Tokenizes `source`, returning the token stream terminated by
/// [`TokenKind::Eof`].
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, start: (usize, u32, u32)) -> Span {
        Span::new(start.0, self.pos, start.1, start.2)
    }

    fn push(&mut self, kind: TokenKind, start: (usize, u32, u32)) {
        let span = self.span_from(start);
        self.tokens.push(Token { kind, span });
    }

    fn error(&self, msg: impl Into<String>, start: (usize, u32, u32)) -> Diagnostic {
        Diagnostic::new(Stage::Lex, msg, self.span_from(start))
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.here();
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'0'..=b'9' => self.lex_number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                b'#' => self.lex_directive(start)?,
                _ => self.lex_operator(start)?,
            }
        }
    }

    /// Skips whitespace and comments. Unterminated block comments are an
    /// error.
    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => return Err(self.error("unterminated block comment", start)),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self, start: (usize, u32, u32)) -> Result<()> {
        let mut text = String::new();
        let hex = self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X'));
        if hex {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    text.push(c as char);
                    self.bump();
                } else {
                    break;
                }
            }
            if text.is_empty() {
                return Err(self.error("hexadecimal literal needs at least one digit", start));
            }
            let value = i64::from_str_radix(&text, 16)
                .map_err(|_| self.error("hexadecimal literal out of range", start))?;
            self.check_range(value, start)?;
            self.push(TokenKind::Int(value), start);
        } else {
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c as char);
                    self.bump();
                } else {
                    break;
                }
            }
            if matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'.')) {
                return Err(self.error("malformed numeric literal", start));
            }
            let value: i64 = text
                .parse()
                .map_err(|_| self.error("integer literal out of range", start))?;
            self.check_range(value, start)?;
            self.push(TokenKind::Int(value), start);
        }
        Ok(())
    }

    /// Domino integers are 32-bit; literals must fit in `i32` (negative
    /// values are produced by unary minus at parse time, so the positive
    /// magnitude bound is `i32::MAX` + 1 handled there — we allow up to
    /// `u32::MAX` so `0xFFFFFFFF`-style masks still work and wrap).
    fn check_range(&self, value: i64, start: (usize, u32, u32)) -> Result<()> {
        if value > u32::MAX as i64 {
            return Err(self.error(
                format!("integer literal {value} does not fit in 32 bits"),
                start,
            ));
        }
        Ok(())
    }

    fn lex_ident(&mut self, start: (usize, u32, u32)) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                text.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        let kind = match text.as_str() {
            "int" => TokenKind::KwInt,
            "void" => TokenKind::KwVoid,
            "struct" => TokenKind::KwStruct,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            other => {
                if let Some(b) = BANNED_KEYWORDS.iter().find(|k| **k == other) {
                    TokenKind::KwBanned(b)
                } else {
                    TokenKind::Ident(text)
                }
            }
        };
        self.push(kind, start);
    }

    fn lex_directive(&mut self, start: (usize, u32, u32)) -> Result<()> {
        // Only `#define` is supported.
        self.bump(); // '#'
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphabetic() {
                word.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        if word == "define" {
            self.push(TokenKind::HashDefine, start);
            Ok(())
        } else {
            Err(self.error(
                format!("unsupported preprocessor directive `#{word}` (only #define is supported)"),
                start,
            ))
        }
    }

    fn lex_operator(&mut self, start: (usize, u32, u32)) -> Result<()> {
        let c = self.bump().expect("operator byte");
        let two = |l: &Self| l.peek();
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b'?' => TokenKind::Question,
            b':' => TokenKind::Colon,
            b'~' => TokenKind::Tilde,
            b'+' => match two(self) {
                Some(b'+') => {
                    self.bump();
                    TokenKind::PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    TokenKind::PlusAssign
                }
                _ => TokenKind::Plus,
            },
            b'-' => match two(self) {
                Some(b'-') => {
                    self.bump();
                    TokenKind::MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    TokenKind::MinusAssign
                }
                _ => TokenKind::Minus,
            },
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'=' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Assign
                }
            }
            b'!' => {
                if two(self) == Some(b'=') {
                    self.bump();
                    TokenKind::Ne
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => match two(self) {
                Some(b'<') => {
                    self.bump();
                    TokenKind::Shl
                }
                Some(b'=') => {
                    self.bump();
                    TokenKind::Le
                }
                _ => TokenKind::Lt,
            },
            b'>' => match two(self) {
                Some(b'>') => {
                    self.bump();
                    TokenKind::Shr
                }
                Some(b'=') => {
                    self.bump();
                    TokenKind::Ge
                }
                _ => TokenKind::Gt,
            },
            b'&' => {
                if two(self) == Some(b'&') {
                    self.bump();
                    TokenKind::AmpAmp
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                if two(self) == Some(b'|') {
                    self.bump();
                    TokenKind::PipePipe
                } else {
                    TokenKind::Pipe
                }
            }
            b'^' => TokenKind::Caret,
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char), start))
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_input_yields_eof() {
        assert_eq!(kinds(""), vec![T::Eof]);
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(
            kinds("42 0 0x1F"),
            vec![T::Int(42), T::Int(0), T::Int(31), T::Eof]
        );
    }

    #[test]
    fn rejects_overlarge_integer() {
        let err = lex("4294967296").unwrap_err();
        assert!(err.message.contains("32 bits"), "{}", err.message);
    }

    #[test]
    fn rejects_malformed_number() {
        assert!(lex("12ab").is_err());
        assert!(lex("0x").is_err());
    }

    #[test]
    fn lexes_identifiers_and_keywords() {
        assert_eq!(
            kinds("int void struct if else pkt"),
            vec![
                T::KwInt,
                T::KwVoid,
                T::KwStruct,
                T::KwIf,
                T::KwElse,
                T::Ident("pkt".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn banned_keywords_are_flagged() {
        assert_eq!(kinds("while"), vec![T::KwBanned("while"), T::Eof]);
        assert_eq!(kinds("goto"), vec![T::KwBanned("goto"), T::Eof]);
        assert_eq!(kinds("return"), vec![T::KwBanned("return"), T::Eof]);
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("<< >> <= >= == != && || += -= ++ --"),
            vec![
                T::Shl,
                T::Shr,
                T::Le,
                T::Ge,
                T::EqEq,
                T::Ne,
                T::AmpAmp,
                T::PipePipe,
                T::PlusAssign,
                T::MinusAssign,
                T::PlusPlus,
                T::MinusMinus,
                T::Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            kinds("a // comment\n b /* c */ d"),
            vec![
                T::Ident("a".into()),
                T::Ident("b".into()),
                T::Ident("d".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn lexes_define_directive() {
        assert_eq!(
            kinds("#define N 10"),
            vec![T::HashDefine, T::Ident("N".into()), T::Int(10), T::Eof]
        );
    }

    #[test]
    fn rejects_other_directives() {
        let err = lex("#include <stdio.h>").unwrap_err();
        assert!(err.message.contains("#include"), "{}", err.message);
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("@").unwrap_err();
        assert!(err.message.contains('@'), "{}", err.message);
    }

    #[test]
    fn hex_mask_fits() {
        assert_eq!(kinds("0xFFFFFFFF"), vec![T::Int(0xFFFF_FFFF), T::Eof]);
    }
}
