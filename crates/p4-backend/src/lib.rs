//! # p4-backend — emit P4 from compiled pipelines
//!
//! The paper compares Domino against P4 by lines of code (Table 4): the
//! flowlet example is 37 lines of Domino versus 107 lines of
//! auto-generated P4 (and 231 hand-written). This crate reproduces that
//! comparison: it emits a P4 program from a compiled atom pipeline, making
//! explicit everything the Domino compiler automated — header/metadata
//! declarations, one action and one table per atom, register declarations,
//! and the stage-ordered control flow.
//!
//! The dialect is P4-16-flavored (v1model-style `register` externs and
//! `hash` calls). Conditional assignments use the `cond ? a : b` form; the
//! point of the artifact is the *structure and volume* a P4 programmer
//! must manage by hand, which is what the paper's LOC comparison measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use banzai::machine::AtomPipeline;
use domino_ast::{BinOp, StateKind, UnOp};
use domino_compiler::Compilation;
use domino_ir::{Operand, StateRef, TacRhs, TacStmt};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Generates a P4 program for a compiled pipeline.
pub fn generate(compilation: &Compilation, pipeline: &AtomPipeline) -> String {
    let mut out = String::new();
    let declared: BTreeSet<&str> = compilation
        .checked
        .packet_fields
        .iter()
        .map(|s| s.as_str())
        .collect();

    let w = &mut out;
    let _ = writeln!(
        w,
        "// Auto-generated from {}.domino for target {}\n\
         // {} stages, {} atoms\n",
        pipeline.name,
        pipeline.target_name,
        pipeline.depth(),
        pipeline.atom_count()
    );

    // Headers: the declared packet fields.
    let _ = writeln!(w, "header packet_t {{");
    for f in &compilation.checked.packet_fields {
        let _ = writeln!(w, "    bit<32> {f};");
    }
    let _ = writeln!(w, "}}\n");

    // Metadata: every compiler temporary (SSA versions, flank reads).
    let mut temps: BTreeSet<String> = BTreeSet::new();
    for (_, atom) in pipeline
        .stages
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.iter().map(move |a| (i, a)))
    {
        for stmt in &atom.codelet.stmts {
            for f in stmt.fields_read() {
                if !declared.contains(f) {
                    temps.insert(f.to_string());
                }
            }
            if let Some(f) = stmt.field_written() {
                if !declared.contains(f) {
                    temps.insert(f.to_string());
                }
            }
        }
    }
    let _ = writeln!(w, "struct metadata_t {{");
    for t in &temps {
        let _ = writeln!(w, "    bit<32> {t};");
    }
    let _ = writeln!(w, "}}\n");

    // Registers: one per state variable.
    for sv in &compilation.checked.state {
        let count = match sv.kind {
            StateKind::Scalar => 1,
            StateKind::Array { size } => size,
        };
        let _ = writeln!(w, "register<bit<32>>({count}) {};", sv.name);
    }
    let _ = writeln!(w);

    // One action + one table per atom, in stage order.
    let mut table_names = Vec::new();
    for (si, stage) in pipeline.stages.iter().enumerate() {
        for (ai, atom) in stage.iter().enumerate() {
            let name = format!("stage{}_atom{}", si + 1, ai + 1);
            let _ = writeln!(w, "action do_{name}() {{");
            for stmt in &atom.codelet.stmts {
                let _ = writeln!(w, "    {}", stmt_to_p4(stmt, &declared));
            }
            let _ = writeln!(w, "}}");
            let _ = writeln!(w, "table {name}_t {{");
            let _ = writeln!(w, "    actions = {{ do_{name}; }}");
            let _ = writeln!(w, "    default_action = do_{name}();");
            let _ = writeln!(w, "}}\n");
            table_names.push(format!("{name}_t"));
        }
    }

    // Control: apply the tables in pipeline order.
    let _ = writeln!(w, "control ingress {{");
    let _ = writeln!(w, "    apply {{");
    for t in &table_names {
        let _ = writeln!(w, "        {t}.apply();");
    }
    // Deparser view: copy final SSA versions back into declared fields.
    for (field, internal) in &pipeline.output_map {
        if field != internal {
            let _ = writeln!(
                w,
                "        hdr.pkt.{field} = {};",
                field_ref(internal, &declared)
            );
        }
    }
    let _ = writeln!(w, "    }}");
    let _ = writeln!(w, "}}");
    out
}

/// Counts non-comment, non-blank lines (same counter as for Domino LOC, so
/// Table 4's comparison is apples-to-apples).
pub fn loc(p4: &str) -> usize {
    domino_ast::loc::count(p4)
}

fn field_ref(f: &str, declared: &BTreeSet<&str>) -> String {
    if declared.contains(f) {
        format!("hdr.pkt.{f}")
    } else {
        format!("meta.{f}")
    }
}

fn op_ref(o: &Operand, declared: &BTreeSet<&str>) -> String {
    match o {
        Operand::Field(f) => field_ref(f, declared),
        Operand::Const(c) => format!("{c}"),
    }
}

fn stmt_to_p4(stmt: &TacStmt, declared: &BTreeSet<&str>) -> String {
    match stmt {
        TacStmt::ReadState { dst, state } => match state {
            StateRef::Scalar(n) => {
                format!("{n}.read({}, 0);", field_ref(dst, declared))
            }
            StateRef::Array { name, index } => format!(
                "{name}.read({}, (bit<32>){});",
                field_ref(dst, declared),
                op_ref(index, declared)
            ),
        },
        TacStmt::WriteState { state, src } => match state {
            StateRef::Scalar(n) => {
                format!("{n}.write(0, {});", op_ref(src, declared))
            }
            StateRef::Array { name, index } => format!(
                "{name}.write((bit<32>){}, {});",
                op_ref(index, declared),
                op_ref(src, declared)
            ),
        },
        TacStmt::Assign { dst, rhs } => {
            let d = field_ref(dst, declared);
            match rhs {
                TacRhs::Copy(o) => format!("{d} = {};", op_ref(o, declared)),
                TacRhs::Unary(op, o) => {
                    let v = op_ref(o, declared);
                    match op {
                        UnOp::Neg => format!("{d} = 0 - {v};"),
                        UnOp::Not => format!("{d} = ({v} == 0) ? 32w1 : 32w0;"),
                        UnOp::BitNot => format!("{d} = ~{v};"),
                    }
                }
                TacRhs::Binary(op, a, b) => {
                    let (a, b) = (op_ref(a, declared), op_ref(b, declared));
                    if op.is_relational() {
                        format!("{d} = ({a} {} {b}) ? 32w1 : 32w0;", op.symbol())
                    } else {
                        match op {
                            BinOp::And => {
                                format!("{d} = ({a} != 0 && {b} != 0) ? 32w1 : 32w0;")
                            }
                            BinOp::Or => {
                                format!("{d} = ({a} != 0 || {b} != 0) ? 32w1 : 32w0;")
                            }
                            _ => format!("{d} = {a} {} {b};", op.symbol()),
                        }
                    }
                }
                TacRhs::Ternary(c, a, b) => format!(
                    "{d} = ({} != 0) ? {} : {};",
                    op_ref(c, declared),
                    op_ref(a, declared),
                    op_ref(b, declared)
                ),
                TacRhs::Intrinsic { name, args, modulo } => {
                    let arglist: Vec<String> = args.iter().map(|a| op_ref(a, declared)).collect();
                    match modulo {
                        Some(m) => format!(
                            "hash({d}, HashAlgorithm.{name}, 32w0, {{ {} }}, 32w{m});",
                            arglist.join(", ")
                        ),
                        None => format!("{d} = {name}_unit.execute({});", arglist.join(", ")),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzai::{AtomKind, Target};

    fn compile(src: &str) -> (Compilation, AtomPipeline) {
        let c = domino_compiler::normalize(src).unwrap();
        let p = domino_compiler::lower(&c, &Target::banzai(AtomKind::Pairs)).unwrap();
        (c, p)
    }

    #[test]
    fn emits_structurally_complete_p4() {
        let a = algorithms::by_name("flowlet").unwrap();
        let (c, p) = compile(a.source);
        let p4 = generate(&c, &p);
        assert!(p4.contains("header packet_t {"), "{p4}");
        assert!(p4.contains("bit<32> next_hop;"), "{p4}");
        assert!(p4.contains("register<bit<32>>(8000) last_time;"), "{p4}");
        assert!(p4.contains("register<bit<32>>(8000) saved_hop;"), "{p4}");
        assert!(p4.contains("control ingress {"), "{p4}");
        assert!(p4.contains("HashAlgorithm.hash2"), "{p4}");
        // One table per atom.
        assert_eq!(p4.matches("table ").count(), p.atom_count());
        assert_eq!(p4.matches(".apply();").count(), p.atom_count());
    }

    #[test]
    fn p4_loc_exceeds_domino_loc_substantially() {
        // Table 4's point: P4 is several times more verbose.
        for a in algorithms::TABLE4
            .iter()
            .filter(|a| a.paper.least_atom.is_some())
        {
            let (c, p) = compile(a.source);
            let p4 = generate(&c, &p);
            let p4_loc = loc(&p4);
            let domino_loc = a.domino_loc();
            assert!(
                p4_loc > 2 * domino_loc,
                "{}: P4 {} vs Domino {}",
                a.name,
                p4_loc,
                domino_loc
            );
        }
    }

    #[test]
    fn flowlet_p4_loc_near_paper() {
        // Paper: 107 lines of auto-generated P4 for flowlet.
        let a = algorithms::by_name("flowlet").unwrap();
        let (c, p) = compile(a.source);
        let n = loc(&generate(&c, &p));
        assert!((70..=170).contains(&n), "flowlet P4 LOC = {n}");
    }

    #[test]
    fn scalar_registers_read_index_zero() {
        let (c, p) =
            compile("struct P { int x; };\nint c = 0;\nvoid f(struct P pkt) { c = c + pkt.x; }");
        let p4 = generate(&c, &p);
        assert!(p4.contains("register<bit<32>>(1) c;"), "{p4}");
        assert!(p4.contains("c.read("), "{p4}");
        assert!(p4.contains("c.write(0,"), "{p4}");
    }

    #[test]
    fn ternary_and_relational_render() {
        let (c, p) = compile(
            "struct P { int a; int b; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.a > pkt.b ? pkt.a : pkt.b; }",
        );
        let p4 = generate(&c, &p);
        assert!(p4.contains("? 32w1 : 32w0"), "{p4}");
        assert!(p4.contains("hdr.pkt.r"), "{p4}");
    }

    #[test]
    fn deparser_copies_final_versions() {
        let (c, p) = compile(
            "struct P { int a; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.a; pkt.r = pkt.r + 1; }",
        );
        let p4 = generate(&c, &p);
        assert!(p4.contains("hdr.pkt.r = meta.r1;"), "{p4}");
    }
}
