//! The whole-switch view of Figure 1: packets traverse an **ingress
//! pipeline**, are queued, and then traverse an **egress pipeline** before
//! transmission.
//!
//! Table 4 assigns each algorithm to one of the two pipelines (flowlet
//! routing decisions happen at ingress; RCP/HULL/CoDel queue measurements
//! at egress, where sojourn times are known). Both pipelines are ordinary
//! Banzai machines; the queue between them is modeled as a bounded FIFO
//! whose occupancy and sojourn timestamps are exposed to egress programs
//! as packet metadata — exactly the metadata real switch schedulers
//! provide.
//!
//! The switch is generic over its [`PipelineEngine`]: the map-based
//! reference [`Machine`] (the default) or the slot-compiled
//! [`SlotMachine`] fast path — the two are observably identical, which the
//! differential throughput harness asserts.

use crate::error::{Accounting, FaultReport, ShardSalvage, SourceFault, SwitchError};
use crate::machine::{AtomPipeline, Machine};
use crate::pifo::{SchedKey, SchedQueue, SchedSpec, Scheduler};
use crate::slot::SlotMachine;
use crate::stream::{
    FrameSource, IntoFrameSource, IntoPacketSource, PacketSource, RunStats, SourceError,
};
use crate::wire::{self, ParseVerdict, WireConfig, WireLayout};
use domino_ir::{Packet, StateStore};
use std::collections::VecDeque;
use std::fmt;

/// An execution engine a [`Switch`] can drive a pipeline with.
///
/// Implemented by the map-based reference [`Machine`] and by the
/// slot-compiled [`SlotMachine`]; both process one packet per clock and
/// expose their persistent state for inspection. `build` and
/// `import_state` are the hooks the sharded switch (`crate::shard`) uses
/// to instantiate one independent engine per partition and warm-start it
/// from a serial checkpoint.
pub trait PipelineEngine {
    /// Instantiates an engine (with fresh state) for a compiled pipeline.
    fn build(pipeline: &AtomPipeline) -> Result<Self, SwitchError>
    where
        Self: Sized;

    /// Runs one packet through every stage (transactional view).
    fn process(&mut self, pkt: Packet) -> Packet;

    /// Snapshot of the engine's persistent state, in map form.
    fn export_state(&self) -> StateStore;

    /// Overwrites the engine's persistent state from a snapshot (the
    /// inverse of [`PipelineEngine::export_state`]; shapes must match).
    fn import_state(&mut self, snapshot: &StateStore);
}

impl PipelineEngine for Machine {
    fn build(pipeline: &AtomPipeline) -> Result<Machine, SwitchError> {
        Ok(Machine::new(pipeline.clone()))
    }

    fn process(&mut self, pkt: Packet) -> Packet {
        Machine::process(self, pkt)
    }

    fn export_state(&self) -> StateStore {
        self.state().clone()
    }

    fn import_state(&mut self, snapshot: &StateStore) {
        Machine::import_state(self, snapshot)
    }
}

impl PipelineEngine for SlotMachine {
    fn build(pipeline: &AtomPipeline) -> Result<SlotMachine, SwitchError> {
        SlotMachine::compile(pipeline).map_err(SwitchError::build)
    }

    fn process(&mut self, pkt: Packet) -> Packet {
        SlotMachine::process(self, pkt)
    }

    fn export_state(&self) -> StateStore {
        SlotMachine::export_state(self)
    }

    fn import_state(&mut self, snapshot: &StateStore) {
        SlotMachine::import_state(self, snapshot)
    }
}

/// Why a switch dropped a packet — the observability split between
/// congestion losses and malformed traffic.
///
/// A real switch's counters distinguish tail drops from parser discards;
/// conflating them (as a single `drops` total once did) makes a burst of
/// garbage frames indistinguishable from congestion. Every drop anywhere
/// in the switch is exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The packet parsed (or arrived parsed) but the FIFO was at
    /// capacity — a congestion loss.
    QueueFull,
    /// The frame failed the wire parse graph with this verdict — a
    /// malformed-traffic discard, before ingress ever ran.
    Parse(ParseVerdict),
    /// The packet was shed at the sharded switch's dispatcher because the
    /// target shard's batch ring was full and the overload policy is
    /// [`Backpressure::Shed`](crate::shard::Backpressure::Shed) — an
    /// overload loss upstream of any per-shard queue.
    Backpressure,
    /// The packet parsed and cleared ingress, but the **programmed
    /// scheduler** ([`crate::pifo`]: PIFO, shaping, or hierarchy — any
    /// non-FIFO [`SchedSpec`]) was at capacity — a congestion loss on a
    /// rank-ordered queue, split from [`DropReason::QueueFull`] so a
    /// drowning scheduler is distinguishable from a drowning drop-tail
    /// FIFO.
    SchedFull,
}

impl DropReason {
    /// Number of distinct reasons (queue-full, one per parse verdict,
    /// backpressure, sched-full).
    pub const COUNT: usize = 3 + ParseVerdict::COUNT;

    /// Dense index of this reason (0 is queue-full; parse verdicts follow
    /// in [`ParseVerdict::ALL`] order; then backpressure, then
    /// sched-full).
    ///
    /// New reasons are **appended**, never inserted: the dense index is
    /// part of exported diagnostics (`BENCH_throughput.json`, merged
    /// counters), so existing indices must stay stable —
    /// `tests/drop_reasons.rs` golden-pins the full assignment.
    pub fn index(self) -> usize {
        match self {
            DropReason::QueueFull => 0,
            DropReason::Parse(v) => 1 + v.index(),
            DropReason::Backpressure => 1 + ParseVerdict::COUNT,
            DropReason::SchedFull => 2 + ParseVerdict::COUNT,
        }
    }

    /// Every reason, in dense-index order.
    pub fn all() -> impl Iterator<Item = DropReason> {
        std::iter::once(DropReason::QueueFull)
            .chain(ParseVerdict::ALL.into_iter().map(DropReason::Parse))
            .chain([DropReason::Backpressure, DropReason::SchedFull])
    }

    /// Stable snake_case label (counter name in logs and bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::Parse(v) => v.label(),
            DropReason::Backpressure => "backpressure",
            DropReason::SchedFull => "sched_full",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-reason drop counters: one saturating-free `u64` per
/// [`DropReason`], cheap enough to bump on the per-packet path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropCounters {
    counts: [u64; DropReason::COUNT],
}

impl Default for DropCounters {
    fn default() -> Self {
        DropCounters {
            counts: [0; DropReason::COUNT],
        }
    }
}

impl DropCounters {
    /// All-zero counters.
    pub fn new() -> DropCounters {
        DropCounters::default()
    }

    pub(crate) fn bump(&mut self, reason: DropReason) {
        self.counts[reason.index()] += 1;
    }

    pub(crate) fn bump_by(&mut self, reason: DropReason, n: u64) {
        self.counts[reason.index()] += n;
    }

    /// Drops recorded for one reason.
    pub fn get(&self, reason: DropReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total drops across every reason (what `Switch::drops` reports).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Congestion losses (the queue-full reason alone).
    pub fn queue_full(&self) -> u64 {
        self.counts[DropReason::QueueFull.index()]
    }

    /// Overload sheds at the sharded dispatcher (the backpressure reason
    /// alone; always 0 on a serial [`Switch`]).
    pub fn backpressure(&self) -> u64 {
        self.counts[DropReason::Backpressure.index()]
    }

    /// Congestion losses on a programmed (non-FIFO) scheduler (the
    /// sched-full reason alone; always 0 under the default FIFO policy).
    pub fn sched_full(&self) -> u64 {
        self.counts[DropReason::SchedFull.index()]
    }

    /// Malformed-traffic discards (every parse verdict summed).
    pub fn parse_total(&self) -> u64 {
        self.total() - self.queue_full() - self.backpressure() - self.sched_full()
    }

    /// Adds another set of counters into this one (shard merging).
    pub fn merge(&mut self, other: &DropCounters) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The per-reason difference since an earlier snapshot — what one
    /// run contributed to cumulative counters.
    pub(crate) fn since(&self, earlier: &DropCounters) -> DropCounters {
        let mut diff = DropCounters::new();
        for (i, (now, then)) in self.counts.iter().zip(&earlier.counts).enumerate() {
            diff.counts[i] = now - then;
        }
        diff
    }

    /// Iterates `(reason, count)` in dense-index order.
    pub fn iter(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::all().map(|r| (r, self.counts[r.index()]))
    }
}

/// One transmitted packet of a scheduling run
/// ([`Switch::run_sched_trace`]): the packet after egress, plus the
/// scheduling observables the invariant suites assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedDeparture {
    /// The packet's arrival cycle (0-based within the run).
    pub arrival: i64,
    /// The key the scheduler ordered it by.
    pub key: SchedKey,
    /// The cycle it left the switch (drain starts at `trace.len()`).
    pub departure: i64,
    /// The packet, after the egress pipeline.
    pub pkt: Packet,
}

/// The metadata fields the queue stamps on every packet handed to the
/// egress pipeline, under their default names: enqueue timestamp, dequeue
/// time, and queue depth. [`Switch::with_metadata_fields`] can rename the
/// first and last; sharding's flow-key analysis treats this set as
/// ingress-written (see `crate::shard`), so renamed metadata is outside
/// the shard planner's model.
pub const QUEUE_METADATA_FIELDS: [&str; 3] = ["enq_ts", "now", "qdepth"];

/// A switch: ingress pipeline, a bounded FIFO queue, egress pipeline.
///
/// # Panic freedom
///
/// The run entry points ([`Switch::run`], [`Switch::run_frames`], and
/// the deprecated slice adapters over them) never panic on any input
/// trace: malformed frames become typed [`DropReason::Parse`] counters,
/// overfull queues become [`DropReason::QueueFull`] counters, and
/// unsupported configurations are rejected up front as typed
/// [`SwitchError`]s. A
/// panic can only originate inside a custom [`PipelineEngine`] (e.g. a
/// deliberately faulty one — see [`crate::fault`]); the sharded switch
/// supervises even those (see [`crate::shard`]).
#[derive(Debug, Clone)]
pub struct Switch<E: PipelineEngine = Machine> {
    ingress: E,
    egress: E,
    /// `(enqueue_cycle, packet)` queue between the pipelines, running the
    /// discipline `sched` selected (drop-tail FIFO by default). Byte-born
    /// packets ([`Switch::run_wire_trace`]) ride a run-local FIFO that
    /// additionally carries each packet's [`WireLayout`]; both queues
    /// share `capacity` and the drop accounting.
    queue: SchedQueue<(i64, Packet)>,
    /// The scheduling policy `queue` was built from (see
    /// [`Switch::with_scheduler`]).
    sched: SchedSpec,
    capacity: usize,
    /// Cycles taken to transmit one packet from the queue (≥1): values
    /// above 1 create standing queues under load, which is what egress
    /// AQM algorithms exist to observe.
    drain_period: u64,
    now: i64,
    drops: DropCounters,
    transmitted: u64,
    /// Metadata field names written for egress programs.
    enqueue_ts_field: String,
    depth_field: String,
}

impl Switch<Machine> {
    /// Builds a switch from two compiled pipelines and a queue capacity,
    /// running both on the map-based reference engine.
    pub fn new(ingress: AtomPipeline, egress: AtomPipeline, capacity: usize) -> Switch {
        Switch::from_engines(Machine::new(ingress), Machine::new(egress), capacity)
    }

    /// The ingress machine's state (for inspection).
    pub fn ingress_state(&self) -> &domino_ir::StateStore {
        self.ingress.state()
    }

    /// The egress machine's state (for inspection).
    pub fn egress_state(&self) -> &domino_ir::StateStore {
        self.egress.state()
    }
}

impl Switch<SlotMachine> {
    /// Builds a switch running both pipelines on the slot-compiled fast
    /// path (bit-identical to [`Switch::new`], without per-packet string
    /// hashing inside the pipelines).
    pub fn new_slot(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        capacity: usize,
    ) -> Result<Switch<SlotMachine>, SwitchError> {
        Ok(Switch::from_engines(
            SlotMachine::compile(ingress).map_err(SwitchError::build)?,
            SlotMachine::compile(egress).map_err(SwitchError::build)?,
            capacity,
        ))
    }
}

impl<E: PipelineEngine> Switch<E> {
    /// Builds a switch from two already-instantiated engines.
    pub fn from_engines(ingress: E, egress: E, capacity: usize) -> Switch<E> {
        Switch {
            ingress,
            egress,
            queue: SchedSpec::Fifo.build_queue(capacity),
            sched: SchedSpec::Fifo,
            capacity,
            drain_period: 1,
            now: 0,
            drops: DropCounters::new(),
            transmitted: 0,
            enqueue_ts_field: QUEUE_METADATA_FIELDS[0].to_string(),
            depth_field: QUEUE_METADATA_FIELDS[2].to_string(),
        }
    }

    /// Sets how many cycles the output link needs per packet (default 1;
    /// larger values model an oversubscribed egress link).
    pub fn with_drain_period(mut self, cycles: u64) -> Switch<E> {
        self.drain_period = cycles.max(1);
        self
    }

    /// Replaces the queue's discipline (default: drop-tail FIFO) with the
    /// given [`SchedSpec`] — a PIFO, shaper, or strict-priority hierarchy
    /// whose rank fields an ingress Domino program writes. Call before
    /// running traffic; any queued packets are discarded.
    ///
    /// ```
    /// use banzai::pifo::SchedSpec;
    /// use banzai::{AtomPipeline, Switch};
    /// use domino_ir::Packet;
    ///
    /// // A PIFO ranked by the packets' own `start` field: a burst
    /// // admitted back-to-back departs in rank order, not arrival order.
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     64,
    /// )
    /// .with_scheduler(SchedSpec::Pifo { rank: "start".into() });
    /// let trace: Vec<Packet> = [30, 10, 20]
    ///     .iter()
    ///     .map(|&r| Packet::new().with("start", r))
    ///     .collect();
    /// let deps = sw.run(&trace).scheduled().collect().unwrap();
    /// let order: Vec<i64> = deps.iter().map(|d| d.key.rank).collect();
    /// assert_eq!(order, [10, 20, 30]);
    /// ```
    pub fn with_scheduler(mut self, spec: SchedSpec) -> Switch<E> {
        self.set_scheduler(spec);
        self
    }

    /// The in-place form of [`Switch::with_scheduler`] (the [`Run::sched`]
    /// builder step uses it): replaces the queue's discipline, discarding
    /// any queued packets.
    pub fn set_scheduler(&mut self, spec: SchedSpec) {
        self.queue = spec.build_queue(self.capacity);
        self.sched = spec;
    }

    /// The scheduling policy the queue runs.
    pub fn scheduler(&self) -> &SchedSpec {
        &self.sched
    }

    /// Renames the metadata fields exposed to egress programs.
    pub fn with_metadata_fields(mut self, enqueue_ts: &str, depth: &str) -> Switch<E> {
        self.enqueue_ts_field = enqueue_ts.to_string();
        self.depth_field = depth.to_string();
        self
    }

    /// Total packets dropped so far, for any reason (the sum over
    /// [`Switch::drop_counters`]).
    ///
    /// ```
    /// use banzai::{AtomPipeline, Switch};
    /// use domino_ir::Packet;
    ///
    /// // Capacity 2 with a link needing 4 cycles/packet: arrivals outrun
    /// // the drain and the tail drops.
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     2,
    /// )
    /// .with_drain_period(4);
    /// let out = sw.run(&vec![Packet::new(); 10]).collect().unwrap();
    /// assert!(sw.drops() > 0);
    /// // Conservation: every admitted packet is eventually transmitted.
    /// assert_eq!(out.len() as u64, sw.transmitted());
    /// assert_eq!(sw.transmitted() + sw.drops(), 10);
    /// ```
    pub fn drops(&self) -> u64 {
        self.drops.total()
    }

    /// The per-reason drop counters: congestion (queue-full) losses split
    /// from every malformed-traffic parse verdict.
    ///
    /// ```
    /// use banzai::wire::{encode, FrameSpec, ParseVerdict, WireConfig};
    /// use banzai::{AtomPipeline, DropReason, Switch};
    /// use domino_ir::Packet;
    ///
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     64,
    /// );
    /// let cfg = WireConfig::new();
    /// let good = encode(&Packet::new(), &cfg, &FrameSpec::default());
    /// let runt = good[..9].to_vec(); // cut inside the Ethernet header
    /// let frames = vec![good, runt];
    /// let out = sw.run_frames(&frames, &cfg).collect().unwrap();
    ///
    /// // One frame made it through; the runt was counted by reason.
    /// assert_eq!(out.len(), 1);
    /// let counters = sw.drop_counters();
    /// assert_eq!(
    ///     counters.get(DropReason::Parse(ParseVerdict::TruncatedEthernet)),
    ///     1,
    /// );
    /// assert_eq!(counters.parse_total(), 1);
    /// assert_eq!(counters.queue_full(), 0); // not a congestion loss
    /// assert_eq!(sw.drops(), 1);            // total still sees it
    /// ```
    pub fn drop_counters(&self) -> &DropCounters {
        &self.drops
    }

    /// Number of packets transmitted (fully processed by egress) so far.
    ///
    /// ```
    /// use banzai::{AtomPipeline, Switch};
    /// use domino_ir::Packet;
    ///
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     64,
    /// );
    /// sw.run(&vec![Packet::new(); 5]).collect().unwrap();
    /// assert_eq!(sw.transmitted(), 5);
    /// assert_eq!(sw.drops(), 0);
    /// ```
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Current queue occupancy.
    ///
    /// ```
    /// use banzai::{AtomPipeline, Switch};
    /// use domino_ir::Packet;
    ///
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     64,
    /// );
    /// assert_eq!(sw.queue_depth(), 0); // empty between full traces
    /// sw.run(&vec![Packet::new(); 8]).collect().unwrap();
    /// assert_eq!(sw.queue_depth(), 0); // a full run drains the queue
    /// assert_eq!(sw.capacity(), 64);
    /// ```
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The queue's capacity (packets beyond this are dropped at enqueue).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the ingress engine's persistent state.
    pub fn export_ingress_state(&self) -> StateStore {
        self.ingress.export_state()
    }

    /// Snapshot of the egress engine's persistent state.
    pub fn export_egress_state(&self) -> StateStore {
        self.egress.export_state()
    }

    /// Overwrites the ingress engine's state from a snapshot (the
    /// per-partition import hook; shapes must match the pipeline's
    /// declarations).
    pub fn import_ingress_state(&mut self, snapshot: &StateStore) {
        self.ingress.import_state(snapshot);
    }

    /// Overwrites the egress engine's state from a snapshot.
    pub fn import_egress_state(&mut self, snapshot: &StateStore) {
        self.egress.import_state(snapshot);
    }

    /// Runs a batch of `(arrival_cycle, packet)` pairs through the whole
    /// switch at line rate — the sharded entry point.
    ///
    /// Semantically this is [`Switch::run_trace`] with the packet clock
    /// supplied by the caller instead of counted locally: a shard of a
    /// partitioned switch sees only *its* packets, but must stamp the
    /// `enq_ts`/`now` metadata with the **global** arrival cycle so its
    /// outputs are bit-identical to the serial switch's. Arrival cycles
    /// must be strictly increasing.
    ///
    /// Only the line-rate configuration is supported: with
    /// `drain_period == 1` the queue never holds more than one packet, so
    /// every packet admitted at cycle `t` leaves at `t + 1` with queue
    /// depth 0 — independent of what other shards carry, which is exactly
    /// why the per-shard runs compose back into the serial behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`SwitchError::Unsupported`] if `drain_period != 1` (an
    /// oversubscribed egress link couples shards through the shared queue
    /// and cannot be partitioned). Never panics.
    #[deprecated(
        since = "0.2.0",
        note = "stamped batches are an internal sharding detail; drive the switch \
                through the unified `Switch::run` builder instead"
    )]
    pub fn run_stamped<P: std::borrow::Borrow<Packet>>(
        &mut self,
        batch: &[(i64, P)],
    ) -> Result<Vec<Packet>, SwitchError> {
        self.run_stamped_batch(batch)
    }

    /// The stamped-batch core behind the sharded workers (see
    /// [`Switch::run_stamped`] for the semantics and the line-rate
    /// restriction).
    pub(crate) fn run_stamped_batch<P: std::borrow::Borrow<Packet>>(
        &mut self,
        batch: &[(i64, P)],
    ) -> Result<Vec<Packet>, SwitchError> {
        if self.drain_period != 1 {
            return Err(SwitchError::Unsupported(format!(
                "stamped (sharded) execution requires a line-rate egress link \
                 (drain_period 1, got {}); a standing queue couples shards",
                self.drain_period
            )));
        }
        let mut out = Vec::with_capacity(batch.len());
        let mut last_t: Option<i64> = None;
        for (t, pkt) in batch {
            debug_assert!(
                last_t.is_none_or(|prev| *t > prev),
                "stamped arrival cycles must be strictly increasing (got {t} after {last_t:?})"
            );
            last_t = Some(*t);
            let processed = self.ingress.process(pkt.borrow().clone());
            let key = self.sched.key_of(&processed);
            if self.queue.push(key, (*t, processed)).is_err() {
                self.drops.bump(self.sched.full_drop_reason());
                continue;
            }
            // At line rate the packet just pushed drains immediately (the
            // if-let always matches; no unwrap on the hot path). With at
            // most one occupant any discipline pops it, so stamped runs
            // stay shard-composable under every [`SchedSpec`].
            if let Some((_, (enq_ts, mut p))) = self.queue.pop() {
                p.set(&self.enqueue_ts_field, enq_ts as i32);
                p.set("now", (*t + 1) as i32);
                p.set(&self.depth_field, self.queue.len() as i32);
                out.push(self.egress.process(p));
                self.transmitted += 1;
                self.now = *t + 1;
            }
        }
        Ok(out)
    }

    /// Runs a trace through the whole switch: each input packet is
    /// processed by ingress and enqueued (or dropped if the queue is
    /// full); the queue drains one packet every `drain_period` cycles
    /// through egress. Returns transmitted packets in order.
    ///
    /// One input packet arrives per cycle (the line-rate assumption);
    /// `enq_ts`/`qdepth` metadata (or the configured names) are stamped at
    /// enqueue, and `now` is refreshed at dequeue so egress programs can
    /// compute sojourn times.
    #[deprecated(
        since = "0.2.0",
        note = "use the unified run builder: `switch.run(trace).collect()`"
    )]
    pub fn run_trace(&mut self, trace: &[Packet]) -> Vec<Packet> {
        self.run(trace)
            .collect()
            .expect("slice-backed sources cannot fail mid-stream")
    }

    /// The streaming line-rate core: pulls packets from `source` one per
    /// cycle, drains through egress on the configured period, and hands
    /// each transmitted packet to `emit` the cycle it departs — memory
    /// stays O(queue capacity) regardless of trace length. Bit-identical
    /// to the historical slice loop: admission order, drain gating, and
    /// metadata stamps are unchanged; only where the next packet comes
    /// from differs.
    ///
    /// On a mid-stream source error the switch stops admitting, drains
    /// everything already queued (so the books close with
    /// `lost_in_fault == 0`), and returns a [`FaultReport`] whose
    /// `merged`/salvage output the caller fills in from its sink.
    pub(crate) fn run_source_core<S: PacketSource>(
        &mut self,
        source: &mut S,
        emit: &mut dyn FnMut(Packet),
    ) -> Result<RunStats, Box<FaultReport>> {
        let drops_before = self.drops.clone();
        let mut offered: u64 = 0;
        let mut transmitted: u64 = 0;
        let mut ended = false;
        let mut src_err: Option<SourceError> = None;
        loop {
            // Dequeue + egress on drain cycles: whatever packet the
            // configured discipline says departs next (arrival order on
            // the default FIFO; rank order on a PIFO). A shaper
            // additionally gates the head until the cycle its rank names.
            if (self.now as u64).is_multiple_of(self.drain_period) {
                let gated = self.sched.is_shaping()
                    && self.queue.peek_key().is_some_and(|k| k.rank > self.now);
                if !gated {
                    if let Some((_, (enq_ts, mut pkt))) = self.queue.pop() {
                        pkt.set(&self.enqueue_ts_field, enq_ts as i32);
                        pkt.set("now", self.now as i32);
                        pkt.set(&self.depth_field, self.queue.len() as i32);
                        emit(self.egress.process(pkt));
                        self.transmitted += 1;
                        transmitted += 1;
                    }
                }
            }
            // Admit one packet per cycle, until the source ends (or
            // fails — a failed source is never pulled again).
            if !ended {
                match source.next_packet() {
                    Ok(Some(p)) => {
                        offered += 1;
                        let processed = self.ingress.process(p);
                        let key = self.sched.key_of(&processed);
                        if self.queue.push(key, (self.now, processed)).is_err() {
                            self.drops.bump(self.sched.full_drop_reason());
                        }
                    }
                    Ok(None) => ended = true,
                    Err(e) => {
                        ended = true;
                        src_err = Some(e);
                    }
                }
            }
            if ended && self.queue.is_empty() {
                break;
            }
            self.now += 1;
        }
        match src_err {
            None => Ok(RunStats {
                offered,
                transmitted,
            }),
            Some(error) => Err(self.source_fault_report(
                offered,
                transmitted,
                self.drops.since(&drops_before),
                error,
            )),
        }
    }

    /// Assembles the [`FaultReport`] for a run cut short by its source:
    /// one salvage entry (this switch is "shard 0" of itself), closed
    /// books, and the caller's collected output patched in afterwards.
    fn source_fault_report(
        &self,
        offered: u64,
        transmitted: u64,
        drops: DropCounters,
        error: SourceError,
    ) -> Box<FaultReport> {
        let dropped = drops.total();
        Box::new(FaultReport {
            failures: Vec::new(),
            source: Some(SourceFault { at: offered, error }),
            salvage: vec![ShardSalvage {
                shard: 0,
                failed: false,
                offered,
                output: Vec::new(),
                drops,
                state: Some((self.ingress.export_state(), self.egress.export_state())),
            }],
            merged: Vec::new(),
            accounting: Accounting {
                offered,
                transmitted,
                dropped,
                lost_in_fault: offered.saturating_sub(transmitted + dropped),
            },
        })
    }

    /// Runs a **scheduling experiment**: the whole trace arrives as a
    /// back-to-back burst (one packet per cycle, cycles `0..n`), then the
    /// queue drains at one packet per cycle from cycle `n` in whatever
    /// order the configured [`SchedSpec`] dictates. Returns one
    /// [`SchedDeparture`] per transmitted packet, in departure order.
    ///
    /// This is the regime where a scheduler is observable at all: under
    /// [`Switch::run_trace`]'s line-rate admission the queue never holds
    /// more than one packet, so every discipline degenerates to FIFO. The
    /// burst builds a standing queue of up to `capacity` packets
    /// (arrivals beyond that drop under the policy's reason —
    /// [`DropReason::SchedFull`] for rank schedulers), and the drain
    /// exposes the discipline's order. `drain_period` is ignored: the
    /// drain *is* the one-packet-per-cycle output link.
    ///
    /// Under a [`SchedSpec::Shaping`] policy a packet's rank is its
    /// earliest-departure cycle: the link idles until the head's rank, so
    /// departure times (not just order) are programmed.
    ///
    /// Egress metadata is stamped per departure (`enq_ts` = arrival
    /// cycle, `now` = departure cycle, `qdepth` = packets still queued),
    /// so sojourn-aware egress programs (CoDel) observe the scheduler's
    /// actual queueing delays. The arrival clock is run-local (restarts
    /// at 0 each call); engine state and the drop/transmit counters
    /// accumulate across calls as usual.
    #[deprecated(
        since = "0.2.0",
        note = "use the unified run builder: `switch.run(trace).scheduled().collect()` \
                (or `.sched(spec)` to set the discipline in the same chain)"
    )]
    pub fn run_sched_trace(&mut self, trace: &[Packet]) -> Vec<SchedDeparture> {
        self.run(trace)
            .scheduled()
            .collect()
            .expect("slice-backed sources cannot fail mid-stream")
    }

    /// The scheduling-experiment core behind
    /// [`SchedRun`](crate::switch::SchedRun): burst arrival from a
    /// source, then a rank-ordered drain (see [`Switch::run_sched_trace`]
    /// for the regime's semantics). A mid-stream source error ends the
    /// arrival phase early; the drain still runs, so everything admitted
    /// departs and the books close.
    pub(crate) fn run_sched_source_core<S: PacketSource>(
        &mut self,
        source: &mut S,
    ) -> Result<Vec<SchedDeparture>, Box<FaultReport>> {
        let drops_before = self.drops.clone();
        let mut src_err: Option<SourceError> = None;
        // Arrival phase: ingress + admission, one packet per cycle. No
        // pops happen here, so occupancy is monotone and admission is
        // by-occupancy exactly as in the line-rate core.
        let mut arrivals: i64 = 0;
        loop {
            match source.next_packet() {
                Ok(Some(p)) => {
                    let processed = self.ingress.process(p);
                    let key = self.sched.key_of(&processed);
                    if self.queue.push(key, (arrivals, processed)).is_err() {
                        self.drops.bump(self.sched.full_drop_reason());
                    }
                    arrivals += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    src_err = Some(e);
                    break;
                }
            }
        }
        // Drain phase: one departure per cycle, rank-gated under shaping.
        let mut next_free = arrivals;
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(head) = self.queue.peek_key() {
            let departure = if self.sched.is_shaping() {
                next_free.max(head.rank)
            } else {
                next_free
            };
            let (key, (arrival, mut pkt)) = self
                .queue
                .pop()
                .expect("peek_key said the queue is non-empty");
            pkt.set(&self.enqueue_ts_field, arrival as i32);
            pkt.set("now", departure as i32);
            pkt.set(&self.depth_field, self.queue.len() as i32);
            let egressed = self.egress.process(pkt);
            self.transmitted += 1;
            out.push(SchedDeparture {
                arrival,
                key,
                departure,
                pkt: egressed,
            });
            next_free = departure + 1;
        }
        self.now = next_free;
        match src_err {
            None => Ok(out),
            Some(error) => {
                let mut report = self.source_fault_report(
                    arrivals as u64,
                    out.len() as u64,
                    self.drops.since(&drops_before),
                    error,
                );
                report.merged = out.iter().map(|d| d.pkt.clone()).collect();
                report.salvage[0].output = report.merged.clone();
                Err(report)
            }
        }
    }

    /// Runs one packet through the ingress pipeline alone — the sharded
    /// scheduling path's per-worker step (rank computation happens at
    /// ingress; the PIFO and the egress pass live outside the worker).
    pub(crate) fn ingress_process(&mut self, pkt: Packet) -> Packet {
        self.ingress.process(pkt)
    }

    /// Bumps a drop counter directly (sharded scheduling admission).
    pub(crate) fn record_drop(&mut self, reason: DropReason) {
        self.drops.bump(reason);
    }

    /// Runs a trace of **raw byte frames** through the whole switch:
    /// parse → ingress → queue → egress → deparse, returning the
    /// transmitted frames as bytes.
    ///
    /// This is [`Switch::run_trace`] with the wire front-end
    /// ([`crate::wire`]) bolted onto both ends. Each arrival cycle admits
    /// one frame; a frame that fails to parse is dropped on its arrival
    /// cycle under the matching [`DropReason::Parse`] counter (malformed
    /// traffic still consumes arrival slots, as on a real wire — it just
    /// never reaches ingress). Accepted frames carry their
    /// [`WireLayout`] through the queue, so egress re-serializes every
    /// pipeline-modified field back into its wire position and all
    /// unparsed bytes (options, payloads) survive verbatim.
    #[deprecated(
        since = "0.2.0",
        note = "use the unified run builder: `switch.run_frames(frames, &cfg).collect()`"
    )]
    pub fn run_wire_trace<F: AsRef<[u8]>>(
        &mut self,
        frames: &[F],
        cfg: &WireConfig,
    ) -> Vec<Vec<u8>> {
        self.run_frames(frames, cfg)
            .collect()
            .expect("slice-backed sources cannot fail mid-stream")
    }

    /// The streaming byte-frame core behind
    /// [`FrameRun`](crate::switch::FrameRun): pull a frame per cycle from
    /// the source, parse → ingress → queue → egress → deparse, hand each
    /// transmitted frame to `emit`. Malformed frames become
    /// [`DropReason::Parse`] counters on their arrival cycle exactly as
    /// in the slice path; a mid-stream source error (e.g. a capture file
    /// torn mid-record) stops admission, drains the queue, and closes
    /// the books in a [`FaultReport`].
    pub(crate) fn run_wire_source_core<S: FrameSource>(
        &mut self,
        source: &mut S,
        cfg: &WireConfig,
        emit: &mut dyn FnMut(Vec<u8>),
    ) -> Result<RunStats, Box<FaultReport>> {
        // Byte-born packets carry their wire layout alongside the FIFO
        // entry so egress can deparse; the queue is run-local (the shared
        // map-packet FIFO is always drained between runs) but shares
        // `capacity` and the drop/transmit accounting.
        let drops_before = self.drops.clone();
        let mut queue: VecDeque<(i64, Packet, WireLayout)> = VecDeque::new();
        let mut offered: u64 = 0;
        let mut transmitted: u64 = 0;
        let mut ended = false;
        let mut src_err: Option<SourceError> = None;
        loop {
            if (self.now as u64).is_multiple_of(self.drain_period) {
                if let Some((enq_ts, mut pkt, layout)) = queue.pop_front() {
                    pkt.set(&self.enqueue_ts_field, enq_ts as i32);
                    pkt.set("now", self.now as i32);
                    pkt.set(&self.depth_field, queue.len() as i32);
                    let egressed = self.egress.process(pkt);
                    emit(wire::deparse(&egressed, &layout));
                    self.transmitted += 1;
                    transmitted += 1;
                }
            }
            if !ended {
                // The borrowed frame is parsed to owned form before the
                // match arm ends, so the source can be pulled again next
                // cycle.
                let parsed = match source.next_frame() {
                    Ok(Some(frame)) => {
                        offered += 1;
                        Some(wire::parse(frame, cfg))
                    }
                    Ok(None) => {
                        ended = true;
                        None
                    }
                    Err(e) => {
                        ended = true;
                        src_err = Some(e);
                        None
                    }
                };
                match parsed {
                    Some(Ok(wp)) => {
                        let processed = self.ingress.process(wp.pkt);
                        if queue.len() >= self.capacity {
                            self.drops.bump(DropReason::QueueFull);
                        } else {
                            queue.push_back((self.now, processed, wp.layout));
                        }
                    }
                    Some(Err(verdict)) => self.drops.bump(DropReason::Parse(verdict)),
                    None => {}
                }
            }
            if ended && queue.is_empty() {
                break;
            }
            self.now += 1;
        }
        match src_err {
            None => Ok(RunStats {
                offered,
                transmitted,
            }),
            Some(error) => Err(self.source_fault_report(
                offered,
                transmitted,
                self.drops.since(&drops_before),
                error,
            )),
        }
    }

    /// Opens a streaming run session: anything convertible to a
    /// [`PacketSource`] (a `&[Packet]` slice, a `&Vec<Packet>`, a
    /// generator, a pcap-backed source) drives the switch through the
    /// returned [`Run`] builder. This is the single entry point the old
    /// `run_trace`/`run_sched_trace` family collapsed into.
    ///
    /// ```
    /// use banzai::stream::GenSource;
    /// use banzai::{AtomPipeline, Switch};
    /// use domino_ir::Packet;
    ///
    /// let mut sw = Switch::new(
    ///     AtomPipeline::passthrough("in"),
    ///     AtomPipeline::passthrough("out"),
    ///     64,
    /// );
    /// // Slices are sources…
    /// let out = sw.run(&vec![Packet::new(); 3]).collect().unwrap();
    /// assert_eq!(out.len(), 3);
    /// // …and so is a bounded generator that never materializes the
    /// // trace: outputs stream to the sink, memory stays O(queue).
    /// let stats = sw
    ///     .run(GenSource::with_len(1000, |i| {
    ///         Some(Packet::new().with("seq", i as i32))
    ///     }))
    ///     .for_each(|_pkt| {})
    ///     .unwrap();
    /// assert_eq!(stats.offered, 1000);
    /// assert_eq!(stats.transmitted, 1000);
    /// ```
    pub fn run<S: IntoPacketSource>(&mut self, source: S) -> Run<'_, E, S::Source> {
        Run {
            switch: self,
            source: source.into_packet_source(),
        }
    }

    /// Opens a streaming **byte-frame** run session: anything convertible
    /// to a [`FrameSource`] (a slice of frames, a pcap reader) drives the
    /// parse → pipeline → deparse path through the returned [`FrameRun`]
    /// builder.
    pub fn run_frames<'c, S: IntoFrameSource>(
        &mut self,
        source: S,
        cfg: &'c WireConfig,
    ) -> FrameRun<'_, 'c, E, S::Source> {
        FrameRun {
            switch: self,
            source: source.into_frame_source(),
            cfg,
        }
    }
}

/// A configured line-rate run session on a serial [`Switch`] — the
/// builder [`Switch::run`] returns. Terminal methods consume it:
/// [`Run::collect`] materializes the transmitted packets,
/// [`Run::for_each`] streams them to a sink (O(queue) memory), and
/// [`Run::sched`]/[`Run::scheduled`] switch to the burst-then-drain
/// scheduling regime first.
#[must_use = "a run session does nothing until a terminal method (`collect`, `for_each`) runs it"]
pub struct Run<'s, E: PipelineEngine, S: PacketSource> {
    switch: &'s mut Switch<E>,
    source: S,
}

impl<'s, E: PipelineEngine, S: PacketSource> Run<'s, E, S> {
    /// Installs `spec` as the queue's discipline (discarding anything
    /// queued, like [`Switch::with_scheduler`]) and switches this session
    /// to the scheduling regime — burst arrival, then a rank-ordered
    /// drain that makes the discipline observable.
    pub fn sched(self, spec: SchedSpec) -> SchedRun<'s, E, S> {
        self.switch.set_scheduler(spec);
        SchedRun {
            switch: self.switch,
            source: self.source,
        }
    }

    /// Switches this session to the scheduling regime under the queue's
    /// **already-configured** discipline (see [`Switch::with_scheduler`]).
    pub fn scheduled(self) -> SchedRun<'s, E, S> {
        SchedRun {
            switch: self.switch,
            source: self.source,
        }
    }

    /// Runs the session and collects every transmitted packet, in order —
    /// bit-identical to streaming them through [`Run::for_each`].
    ///
    /// # Errors
    ///
    /// [`SwitchError::Fault`] if the source fails mid-stream; the report
    /// carries everything transmitted before (and drained after) the
    /// failure, with closed books.
    pub fn collect(mut self) -> Result<Vec<Packet>, SwitchError> {
        let (lo, hi) = self.source.size_hint();
        let mut out = Vec::with_capacity(hi.unwrap_or(lo).min(1 << 20));
        match self
            .switch
            .run_source_core(&mut self.source, &mut |p| out.push(p))
        {
            Ok(_) => Ok(out),
            Err(mut report) => {
                report.merged.clone_from(&out);
                report.salvage[0].output = out;
                Err(SwitchError::Fault(report))
            }
        }
    }

    /// Runs the session, streaming each transmitted packet to `sink` the
    /// cycle it departs — the bounded-memory terminal for arbitrarily
    /// long sources. Returns offered/transmitted totals for this run.
    ///
    /// # Errors
    ///
    /// [`SwitchError::Fault`] if the source fails mid-stream (packets
    /// already handed to `sink` are not replayed in the report's salvage;
    /// the sink saw them the moment they departed).
    pub fn for_each<F: FnMut(Packet)>(mut self, mut sink: F) -> Result<RunStats, SwitchError> {
        self.switch
            .run_source_core(&mut self.source, &mut sink)
            .map_err(SwitchError::Fault)
    }
}

/// A run session in the scheduling regime (see
/// [`Switch::run_sched_trace`]'s historical docs for the burst-then-drain
/// semantics) — built by [`Run::sched`] or [`Run::scheduled`].
#[must_use = "a run session does nothing until `collect` runs it"]
pub struct SchedRun<'s, E: PipelineEngine, S: PacketSource> {
    switch: &'s mut Switch<E>,
    source: S,
}

impl<E: PipelineEngine, S: PacketSource> SchedRun<'_, E, S> {
    /// Runs the burst + drain and returns one [`SchedDeparture`] per
    /// transmitted packet, in departure order.
    ///
    /// # Errors
    ///
    /// [`SwitchError::Fault`] if the source fails mid-burst; everything
    /// admitted still drains and is reported, with closed books.
    pub fn collect(mut self) -> Result<Vec<SchedDeparture>, SwitchError> {
        self.switch
            .run_sched_source_core(&mut self.source)
            .map_err(SwitchError::Fault)
    }
}

/// A streaming byte-frame run session (parse → pipeline → deparse) — the
/// builder [`Switch::run_frames`] returns.
#[must_use = "a run session does nothing until a terminal method (`collect`, `for_each`) runs it"]
pub struct FrameRun<'s, 'c, E: PipelineEngine, S: FrameSource> {
    switch: &'s mut Switch<E>,
    source: S,
    cfg: &'c WireConfig,
}

impl<E: PipelineEngine, S: FrameSource> FrameRun<'_, '_, E, S> {
    /// Runs the session and collects every transmitted frame, in order.
    ///
    /// # Errors
    ///
    /// [`SwitchError::Fault`] if the source fails mid-stream (a torn
    /// capture file); frames transmitted before the failure are in the
    /// report's accounting, and malformed-but-complete frames are *not*
    /// errors — they are [`DropReason::Parse`] drops as always.
    pub fn collect(mut self) -> Result<Vec<Vec<u8>>, SwitchError> {
        let mut out = Vec::new();
        match self
            .switch
            .run_wire_source_core(&mut self.source, self.cfg, &mut |f| out.push(f))
        {
            Ok(_) => Ok(out),
            Err(report) => Err(SwitchError::Fault(report)),
        }
    }

    /// Runs the session, streaming each transmitted frame to `sink` —
    /// the bounded-memory terminal. Returns offered/transmitted totals.
    ///
    /// # Errors
    ///
    /// [`SwitchError::Fault`] if the source fails mid-stream.
    pub fn for_each<F: FnMut(Vec<u8>)>(mut self, mut sink: F) -> Result<RunStats, SwitchError> {
        self.switch
            .run_wire_source_core(&mut self.source, self.cfg, &mut sink)
            .map_err(SwitchError::Fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The compiler lives upstream of this crate, so unit tests here cover
    // queue mechanics with pass-through pipelines; real-algorithm switch
    // tests live in the workspace integration suite.
    fn passthrough(name: &str) -> AtomPipeline {
        AtomPipeline::passthrough(name)
    }

    #[test]
    fn queue_preserves_order_and_count() {
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64);
        let trace: Vec<Packet> = (0..40).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run(&trace).collect().unwrap();
        assert_eq!(out.len(), 40);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.get("seq"), Some(i as i32));
        }
        assert_eq!(sw.drops(), 0);
        assert_eq!(sw.transmitted(), 40);
    }

    #[test]
    fn oversubscribed_link_builds_queue_and_drops() {
        // Drain every 2 cycles with capacity 8: arrivals outpace the link.
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let trace: Vec<Packet> = (0..100).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run(&trace).collect().unwrap();
        assert!(sw.drops() > 0, "expected drops, got none");
        assert_eq!(out.len() as u64 + sw.drops(), 100);
        assert_eq!(sw.transmitted(), out.len() as u64);
    }

    #[test]
    fn egress_sees_sojourn_metadata() {
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64).with_drain_period(3);
        let trace: Vec<Packet> = (0..30).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run(&trace).collect().unwrap();
        // Sojourn = now - enq_ts grows as the queue builds.
        let sojourns: Vec<i32> = out
            .iter()
            .map(|p| p.get("now").unwrap() - p.get("enq_ts").unwrap())
            .collect();
        assert!(*sojourns.last().unwrap() > sojourns[0], "{sojourns:?}");
        assert!(out.iter().all(|p| p.get("qdepth").is_some()));
    }

    #[test]
    fn stamped_run_equals_serial_run_at_line_rate() {
        let trace: Vec<Packet> = (0..20).map(|i| Packet::new().with("seq", i)).collect();
        let mut serial = Switch::new(passthrough("in"), passthrough("out"), 8);
        let serial_out = serial.run(&trace).collect().unwrap();
        let mut stamped = Switch::new(passthrough("in"), passthrough("out"), 8);
        let batch: Vec<(i64, Packet)> = trace
            .iter()
            .enumerate()
            .map(|(i, p)| (i as i64, p.clone()))
            .collect();
        let stamped_out = stamped.run_stamped_batch(&batch).unwrap();
        assert_eq!(serial_out, stamped_out);
        assert_eq!(serial.transmitted(), stamped.transmitted());
        assert_eq!(serial.drops(), stamped.drops());
    }

    #[test]
    fn stamped_subsequences_compose_into_the_serial_run() {
        // Even/odd arrivals on two separate switches (as two shards would
        // see them) reproduce the serial outputs at those positions —
        // the global stamps carry the shared clock.
        let trace: Vec<Packet> = (0..30).map(|i| Packet::new().with("seq", i)).collect();
        let mut serial = Switch::new(passthrough("in"), passthrough("out"), 8);
        let serial_out = serial.run(&trace).collect().unwrap();
        for parity in 0..2usize {
            let mut shard = Switch::new(passthrough("in"), passthrough("out"), 8);
            let batch: Vec<(i64, Packet)> = trace
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == parity)
                .map(|(i, p)| (i as i64, p.clone()))
                .collect();
            let out = shard.run_stamped_batch(&batch).unwrap();
            let expected: Vec<Packet> = serial_out
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == parity)
                .map(|(_, p)| p.clone())
                .collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn stamped_rejects_oversubscribed_links() {
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let err = sw.run_stamped_batch::<Packet>(&[]).unwrap_err();
        assert!(
            matches!(&err, SwitchError::Unsupported(msg) if msg.contains("line-rate egress link")),
            "{err}"
        );
    }

    #[test]
    fn state_import_hooks_roundtrip() {
        let mut a = Switch::new_slot(&passthrough("in"), &passthrough("out"), 8).unwrap();
        let snap_in = a.export_ingress_state();
        let snap_eg = a.export_egress_state();
        a.import_ingress_state(&snap_in);
        a.import_egress_state(&snap_eg);
        assert_eq!(a.export_ingress_state(), snap_in);
        assert_eq!(a.export_egress_state(), snap_eg);
    }

    #[test]
    fn wire_trace_roundtrips_frames_through_the_switch() {
        use crate::wire::{encode, parse, FrameSpec, WireConfig};

        let cfg = WireConfig::new();
        let frames: Vec<Vec<u8>> = (0..10)
            .map(|i| {
                let spec = FrameSpec {
                    sport: 1000 + i,
                    ..FrameSpec::default()
                };
                encode(&Packet::new(), &cfg, &spec)
            })
            .collect();
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64);
        let out = sw.run_frames(&frames, &cfg).collect().unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(sw.transmitted(), 10);
        assert_eq!(sw.drops(), 0);
        // Passthrough pipelines leave every header byte intact, but the
        // queue metadata is not a wire field, so frames come back
        // byte-identical in order.
        for (i, (frame, orig)) in out.iter().zip(&frames).enumerate() {
            assert_eq!(frame, orig, "frame {i}");
            assert_eq!(
                parse(frame, &cfg).unwrap().pkt.get("sport"),
                Some(1000 + i as i32)
            );
        }
    }

    #[test]
    fn wire_trace_splits_congestion_from_parse_drops() {
        use crate::wire::{encode, FrameSpec, ParseVerdict, WireConfig};

        let cfg = WireConfig::new();
        let good = encode(&Packet::new(), &cfg, &FrameSpec::default());
        let mut frames: Vec<Vec<u8>> = vec![good.clone(); 20];
        frames.push(good[..13].to_vec()); // runt Ethernet
        frames.push(good[..20].to_vec()); // cut inside IPv4
                                          // Capacity 2, slow link: some good frames tail-drop too.
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 2).with_drain_period(4);
        let out = sw.run_frames(&frames, &cfg).collect().unwrap();
        let c = sw.drop_counters();
        assert_eq!(c.get(DropReason::Parse(ParseVerdict::TruncatedEthernet)), 1);
        assert_eq!(c.get(DropReason::Parse(ParseVerdict::TruncatedIpv4)), 1);
        assert_eq!(c.parse_total(), 2);
        assert!(c.queue_full() > 0, "expected congestion drops");
        assert_eq!(c.total(), sw.drops());
        assert_eq!(out.len() as u64 + c.total(), frames.len() as u64);
    }

    #[test]
    fn drop_reason_indices_are_dense() {
        let all: Vec<DropReason> = DropReason::all().collect();
        assert_eq!(all.len(), DropReason::COUNT);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(DropReason::QueueFull.to_string(), "queue_full");
    }

    #[test]
    fn drop_counters_merge_is_elementwise() {
        use crate::wire::ParseVerdict;

        let mut a = DropCounters::new();
        a.bump(DropReason::QueueFull);
        a.bump(DropReason::Parse(ParseVerdict::BadIhl));
        let mut b = DropCounters::new();
        b.bump(DropReason::QueueFull);
        b.bump(DropReason::Parse(ParseVerdict::TruncatedTcp));
        a.merge(&b);
        assert_eq!(a.queue_full(), 2);
        assert_eq!(a.get(DropReason::Parse(ParseVerdict::BadIhl)), 1);
        assert_eq!(a.get(DropReason::Parse(ParseVerdict::TruncatedTcp)), 1);
        assert_eq!(a.total(), 4);
        assert_eq!(a.iter().map(|(_, n)| n).sum::<u64>(), 4);
    }

    #[test]
    fn sched_trace_under_fifo_departs_in_arrival_order() {
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64);
        let trace: Vec<Packet> = (0..10).map(|i| Packet::new().with("seq", 9 - i)).collect();
        let deps = sw.run(&trace).scheduled().collect().unwrap();
        assert_eq!(deps.len(), 10);
        for (i, d) in deps.iter().enumerate() {
            assert_eq!(d.arrival, i as i64, "FIFO keeps arrival order");
            // Burst of 10, drain starts at cycle 10.
            assert_eq!(d.departure, 10 + i as i64);
            assert_eq!(d.pkt.get("enq_ts"), Some(i as i32));
            assert_eq!(d.pkt.get("now"), Some(d.departure as i32));
        }
        assert_eq!(sw.transmitted(), 10);
    }

    #[test]
    fn sched_trace_pifo_orders_by_rank_and_drops_sched_full() {
        use crate::pifo::SchedSpec;

        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 4)
            .with_scheduler(SchedSpec::Pifo { rank: "r".into() });
        // 6 packets into capacity 4: the last two drop as SchedFull.
        let ranks = [40, 10, 30, 20, 99, 98];
        let trace: Vec<Packet> = ranks.iter().map(|&r| Packet::new().with("r", r)).collect();
        let deps = sw.run(&trace).scheduled().collect().unwrap();
        let got: Vec<i64> = deps.iter().map(|d| d.key.rank).collect();
        assert_eq!(got, [10, 20, 30, 40]);
        assert_eq!(sw.drop_counters().sched_full(), 2);
        assert_eq!(sw.drop_counters().queue_full(), 0);
        assert_eq!(sw.transmitted() + sw.drops(), 6);
    }

    #[test]
    fn sched_trace_shaping_delays_departures_to_their_ranks() {
        use crate::pifo::SchedSpec;

        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64)
            .with_scheduler(SchedSpec::Shaping { rank: "edt".into() });
        // Earliest-departure times well past the burst end (cycle 3).
        let trace: Vec<Packet> = [20, 10, 40]
            .iter()
            .map(|&t| Packet::new().with("edt", t))
            .collect();
        let deps = sw.run(&trace).scheduled().collect().unwrap();
        let times: Vec<i64> = deps.iter().map(|d| d.departure).collect();
        assert_eq!(times, [10, 20, 40], "the link idles until each EDT");
    }

    #[test]
    fn slot_engine_switch_matches_reference_switch() {
        let mk_map = || Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let mk_slot = || {
            Switch::new_slot(&passthrough("in"), &passthrough("out"), 8)
                .unwrap()
                .with_drain_period(2)
        };
        let trace: Vec<Packet> = (0..100).map(|i| Packet::new().with("seq", i)).collect();
        let (mut a, mut b) = (mk_map(), mk_slot());
        assert_eq!(
            a.run(&trace).collect().unwrap(),
            b.run(&trace).collect().unwrap()
        );
        assert_eq!(a.drops(), b.drops());
        assert_eq!(a.transmitted(), b.transmitted());
    }

    #[test]
    fn for_each_streams_bit_identical_to_collect() {
        let trace: Vec<Packet> = (0..50).map(|i| Packet::new().with("seq", i)).collect();
        let mut collected =
            Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let out = collected.run(&trace).collect().unwrap();
        let mut streamed =
            Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let mut sunk = Vec::new();
        let stats = streamed.run(&trace).for_each(|p| sunk.push(p)).unwrap();
        assert_eq!(out, sunk);
        assert_eq!(stats.offered, 50);
        assert_eq!(stats.transmitted, out.len() as u64);
        assert_eq!(collected.drops(), streamed.drops());
        assert_eq!(collected.transmitted(), streamed.transmitted());
    }

    #[test]
    fn generated_source_matches_materialized_slice() {
        use crate::stream::GenSource;

        let mk = |i: u64| Packet::new().with("seq", i as i32);
        let trace: Vec<Packet> = (0..200).map(mk).collect();
        let mut a = Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(3);
        let mut b = Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(3);
        let from_slice = a.run(&trace).collect().unwrap();
        let from_gen = b
            .run(GenSource::with_len(200, |i| Some(mk(i))))
            .collect()
            .unwrap();
        assert_eq!(from_slice, from_gen);
        assert_eq!(a.drops(), b.drops());
    }

    #[test]
    fn source_error_mid_stream_closes_the_books() {
        use crate::stream::{FailAfter, GenSource};

        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 4).with_drain_period(3);
        let source = FailAfter::new(
            GenSource::new(|i| Some(Packet::new().with("seq", i as i32))),
            25,
            "disk torn mid-record",
        );
        let err = sw.run(source).collect().unwrap_err();
        let report = err.fault().expect("source failures are faults");
        let src = report.source.as_ref().expect("a SourceFault is attached");
        assert_eq!(src.at, 25);
        assert!(src.error.to_string().contains("disk torn"), "{src}");
        assert!(report.failures.is_empty(), "no worker faulted");
        // Everything pulled before the failure was processed and drained:
        // the books close with nothing lost to the fault.
        let acc = report.accounting;
        assert!(acc.conserved(), "{acc}");
        assert_eq!(acc.offered, 25);
        assert_eq!(acc.lost_in_fault, 0);
        assert_eq!(report.merged.len() as u64, acc.transmitted);
        assert_eq!(acc.transmitted + acc.dropped, 25);
        assert!(acc.dropped > 0, "capacity 4 at drain 3 must tail-drop");
        assert!(err.to_string().contains("source failed after 25"), "{err}");
    }

    #[test]
    fn sched_run_source_error_still_drains_admitted_burst() {
        use crate::pifo::SchedSpec;
        use crate::stream::{FailAfter, GenSource};

        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64);
        let source = FailAfter::new(
            GenSource::new(|i| Some(Packet::new().with("r", 100 - i as i32))),
            10,
            "burst cut short",
        );
        let err = sw
            .run(source)
            .sched(SchedSpec::Pifo { rank: "r".into() })
            .collect()
            .unwrap_err();
        let report = err.fault().unwrap();
        assert_eq!(report.accounting.offered, 10);
        assert_eq!(report.accounting.transmitted, 10, "admitted burst drains");
        assert!(report.accounting.conserved());
        assert_eq!(report.merged.len(), 10);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_adapters_match_the_builder() {
        use crate::pifo::SchedSpec;
        use crate::wire::{encode, FrameSpec, WireConfig};

        let trace: Vec<Packet> = (0..30).map(|i| Packet::new().with("seq", i)).collect();
        let mut old = Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let mut new = Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        assert_eq!(old.run_trace(&trace), new.run(&trace).collect().unwrap());

        let mut old = Switch::new(passthrough("in"), passthrough("out"), 8)
            .with_scheduler(SchedSpec::Pifo { rank: "seq".into() });
        let mut new = Switch::new(passthrough("in"), passthrough("out"), 8)
            .with_scheduler(SchedSpec::Pifo { rank: "seq".into() });
        assert_eq!(
            old.run_sched_trace(&trace),
            new.run(&trace).scheduled().collect().unwrap()
        );

        let cfg = WireConfig::new();
        let frames: Vec<Vec<u8>> = (0..5)
            .map(|_| encode(&Packet::new(), &cfg, &FrameSpec::default()))
            .collect();
        let mut old = Switch::new(passthrough("in"), passthrough("out"), 8);
        let mut new = Switch::new(passthrough("in"), passthrough("out"), 8);
        assert_eq!(
            old.run_wire_trace(&frames, &cfg),
            new.run_frames(&frames, &cfg).collect().unwrap()
        );
    }
}
