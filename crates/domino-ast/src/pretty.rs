//! Pretty-printing of (checked) Domino programs and statement lists.
//!
//! Used by golden tests for the compiler passes (the Figures 5–8
//! transformations print as readable Domino-like code) and by `domc` for
//! `--emit normalized`.

use crate::ast::{Expr, LValue, Stmt};
use crate::sema::{CheckedProgram, StateKind};
use std::fmt::Write;

/// Renders a statement list as indented Domino-like source.
pub fn stmts_to_string(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    for s in stmts {
        write_stmt(&mut out, s, 0);
    }
    out
}

/// Renders a full checked program (declarations plus body).
pub fn program_to_string(p: &CheckedProgram) -> String {
    let mut out = String::new();
    writeln!(out, "struct Packet {{").unwrap();
    for f in &p.packet_fields {
        writeln!(out, "  int {f};").unwrap();
    }
    writeln!(out, "}};").unwrap();
    for sv in &p.state {
        match sv.kind {
            StateKind::Scalar => writeln!(out, "int {} = {};", sv.name, sv.init).unwrap(),
            StateKind::Array { size } => {
                writeln!(out, "int {}[{size}] = {{{}}};", sv.name, sv.init).unwrap()
            }
        }
    }
    writeln!(out, "void {}(struct Packet {}) {{", p.name, p.param).unwrap();
    for s in &p.body {
        write_stmt(&mut out, s, 1);
    }
    writeln!(out, "}}").unwrap();
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    match stmt {
        Stmt::Assign { lhs, rhs, .. } => {
            indent(out, depth);
            writeln!(out, "{} = {rhs};", lvalue_to_string(lhs)).unwrap();
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(out, depth);
            writeln!(out, "if ({cond}) {{").unwrap();
            for s in then_branch {
                write_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            if else_branch.is_empty() {
                writeln!(out, "}}").unwrap();
            } else {
                writeln!(out, "}} else {{").unwrap();
                for s in else_branch {
                    write_stmt(out, s, depth + 1);
                }
                indent(out, depth);
                writeln!(out, "}}").unwrap();
            }
        }
    }
}

/// Renders an lvalue.
pub fn lvalue_to_string(lv: &LValue) -> String {
    match lv {
        LValue::Field(b, f, _) => format!("{b}.{f}"),
        LValue::Scalar(n, _) => n.clone(),
        LValue::Array(n, i, _) => format!("{n}[{i}]"),
    }
}

/// Renders an expression (delegates to its `Display`).
pub fn expr_to_string(e: &Expr) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sema::parse_and_check;

    #[test]
    fn prints_program_round_trippable() {
        let src = "struct P { int a; int r; };\nint c[8] = {1};\n\
                   void f(struct P pkt) { if (pkt.a > 2) { c[pkt.a] = 0; } pkt.r = c[pkt.a]; }";
        let checked = parse_and_check(src).unwrap();
        let printed = program_to_string(&checked);
        assert!(printed.contains("int c[8] = {1};"), "{printed}");
        assert!(printed.contains("if ((pkt.a > 2)) {"), "{printed}");
        // The printed program must parse and check again (round trip).
        let reparsed = parse_and_check(&printed).unwrap();
        assert_eq!(reparsed.state, checked.state);
        assert_eq!(reparsed.packet_fields, checked.packet_fields);
    }

    #[test]
    fn prints_else_branch() {
        let src = "struct P { int a; };\nint x = 0;\n\
                   void f(struct P pkt) { if (pkt.a) { x = 1; } else { x = 2; } }";
        let checked = parse_and_check(src).unwrap();
        let printed = stmts_to_string(&checked.body);
        assert!(printed.contains("} else {"), "{printed}");
    }
}
