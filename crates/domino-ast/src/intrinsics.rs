//! Intrinsic functions.
//!
//! Intrinsics model hardware accelerators available beside the pipeline
//! (§3.1: "The function may invoke intrinsics such as `hash2` to use
//! hardware accelerators such as hash generators"). The compiler uses only
//! the *signature* to infer dependencies; the simulator supplies the canned
//! implementation defined here.
//!
//! `isqrt` is deliberately included in the *language* but not provided by
//! any baseline Banzai target: this reproduces why CoDel "doesn't map" in
//! Table 4 (it needs a square root, §5.3). The LUT-extended target (X1)
//! provides it.

/// Signature of an intrinsic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intrinsic {
    /// Function name as written in Domino source.
    pub name: &'static str,
    /// Number of arguments.
    pub arity: usize,
}

const INTRINSICS: &[Intrinsic] = &[
    Intrinsic {
        name: "hash2",
        arity: 2,
    },
    Intrinsic {
        name: "hash3",
        arity: 3,
    },
    Intrinsic {
        name: "isqrt",
        arity: 1,
    },
    // CoDel's control law `interval / sqrt(count)` as a single look-up
    // table function (§5.3 future work / extension X1). No baseline target
    // provides it.
    Intrinsic {
        name: "codel_gap",
        arity: 2,
    },
];

/// Looks up an intrinsic by name.
pub fn lookup(name: &str) -> Option<Intrinsic> {
    INTRINSICS.iter().copied().find(|i| i.name == name)
}

/// Names of all intrinsics, for diagnostics.
pub fn names() -> Vec<&'static str> {
    INTRINSICS.iter().map(|i| i.name).collect()
}

/// Evaluates an intrinsic on concrete arguments.
///
/// The hash functions are deterministic mixers (a SplitMix64-style finalizer
/// over the packed arguments): deterministic so simulations are
/// reproducible, well-mixed so hash-based algorithms (Bloom filters,
/// count-min sketches, flowlet hashing) behave statistically as intended.
///
/// # Panics
///
/// Panics if `name` is unknown or the arity is wrong; callers run after
/// semantic analysis, which guarantees both.
pub fn eval(name: &str, args: &[i32]) -> i32 {
    match (name, args) {
        ("hash2", [a, b]) => hash2(*a, *b),
        ("hash3", [a, b, c]) => hash3(*a, *b, *c),
        ("isqrt", [a]) => isqrt(*a),
        ("codel_gap", [count, interval]) => codel_gap(*count, *interval),
        _ => panic!("unknown intrinsic or bad arity: {name}/{}", args.len()),
    }
}

/// The `hash2` accelerator (named entry point, so execution engines can
/// pre-resolve the intrinsic instead of string-dispatching per packet).
pub fn hash2(a: i32, b: i32) -> i32 {
    mix2(a, b, 0x9e37_79b9)
}

/// The `hash3` accelerator (see [`hash2`]).
pub fn hash3(a: i32, b: i32, c: i32) -> i32 {
    let h = mix2(a, b, 0x85eb_ca6b);
    mix2(h, c, 0xc2b2_ae35)
}

/// The LUT unit's `codel_gap(count, interval)` = `interval / max(1, √count)`.
pub fn codel_gap(count: i32, interval: i32) -> i32 {
    let s = isqrt(count).max(1);
    interval.wrapping_div(s)
}

/// SplitMix-style 2-input mixer producing a non-negative i32.
fn mix2(a: i32, b: i32, salt: u32) -> i32 {
    let mut z = ((a as u32 as u64) << 32 | (b as u32 as u64)).wrapping_add(salt as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Mask the sign bit so `% N` in Domino programs yields a valid index.
    (z as u32 & 0x7fff_ffff) as i32
}

/// Integer square root (floor), 0 for negative inputs.
pub fn isqrt(v: i32) -> i32 {
    if v <= 0 {
        return 0;
    }
    let mut x = v as u32;
    let mut res: u32 = 0;
    let mut bit: u32 = 1 << 30;
    while bit > x {
        bit >>= 2;
    }
    while bit != 0 {
        if x >= res + bit {
            x -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    res as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_and_unknown() {
        assert_eq!(lookup("hash2").unwrap().arity, 2);
        assert_eq!(lookup("hash3").unwrap().arity, 3);
        assert_eq!(lookup("isqrt").unwrap().arity, 1);
        assert!(lookup("md5").is_none());
    }

    #[test]
    fn hashes_are_deterministic() {
        assert_eq!(eval("hash2", &[1, 2]), eval("hash2", &[1, 2]));
        assert_eq!(eval("hash3", &[1, 2, 3]), eval("hash3", &[1, 2, 3]));
    }

    #[test]
    fn hashes_are_nonnegative() {
        for a in [-100, -1, 0, 1, 7, i32::MAX, i32::MIN] {
            for b in [-5, 0, 3, 1_000_000] {
                assert!(eval("hash2", &[a, b]) >= 0, "hash2({a},{b})");
            }
        }
    }

    #[test]
    fn hashes_depend_on_all_args() {
        assert_ne!(eval("hash2", &[1, 2]), eval("hash2", &[2, 1]));
        assert_ne!(eval("hash3", &[1, 2, 3]), eval("hash3", &[1, 2, 4]));
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        // 10k inputs into 16 buckets: every bucket should see its share
        // within a generous tolerance.
        let mut buckets = [0u32; 16];
        for i in 0..10_000 {
            buckets[(eval("hash2", &[i, i * 7 + 1]) % 16) as usize] += 1;
        }
        for (i, b) in buckets.iter().enumerate() {
            assert!((400..900).contains(b), "bucket {i} has {b}");
        }
    }

    #[test]
    fn isqrt_exact_values() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(3), 1);
        assert_eq!(isqrt(4), 2);
        assert_eq!(isqrt(99), 9);
        assert_eq!(isqrt(100), 10);
        assert_eq!(isqrt(i32::MAX), 46340);
        assert_eq!(isqrt(-7), 0);
    }

    #[test]
    fn isqrt_is_floor_sqrt_for_all_small_values() {
        for v in 0..10_000i32 {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
    }
}
