//! Property-based testing of the codelet→atom synthesizer.
//!
//! *Completeness*: any codelet that **is** expressible as an atom
//! predication tree (random guards over fields/state/constants, random
//! single-ALU leaf updates, depth ≤ 2) must be accepted by
//! [`atom_synth::synthesize`], and the synthesized configuration must
//! agree with the codelet on random inputs. This complements the
//! all-or-nothing *soundness* direction (rejections) covered by unit
//! tests: together they pin the "if there is any way to map the codelet
//! to an atom, SKETCH will find it" claim of §4.3.

use atom_synth::synthesize;
use banzai::atom::{Guard, GuardOperand, RelOp, Tree, Update};
use banzai::AtomKind;
use domino_ir::{Codelet, Operand, Packet, StateRef, StateStore, TacRhs, TacStmt};
use proptest::prelude::*;

const FIELDS: [&str; 3] = ["fa", "fb", "fc"];

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0..FIELDS.len()).prop_map(|i| Operand::Field(FIELDS[i].into())),
        (-15i32..16).prop_map(Operand::Const),
    ]
}

fn guard_operand_strategy() -> impl Strategy<Value = GuardOperand> {
    prop_oneof![
        (0..FIELDS.len()).prop_map(|i| GuardOperand::Field(FIELDS[i].into())),
        (-15i32..16).prop_map(GuardOperand::Const),
        Just(GuardOperand::State(0)),
    ]
}

fn relop_strategy() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Lt),
        Just(RelOp::Gt),
        Just(RelOp::Le),
        Just(RelOp::Ge),
        Just(RelOp::Eq),
        Just(RelOp::Ne),
    ]
}

fn guard_strategy() -> impl Strategy<Value = Guard> {
    (
        relop_strategy(),
        guard_operand_strategy(),
        guard_operand_strategy(),
    )
        .prop_map(|(op, lhs, rhs)| Guard { op, lhs, rhs })
        .prop_filter("guard must compare two distinct things", |g| g.lhs != g.rhs)
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        Just(Update::Keep),
        operand_strategy().prop_map(Update::Write),
        operand_strategy().prop_map(Update::Add),
        operand_strategy().prop_map(Update::Sub),
    ]
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = update_strategy().prop_map(Tree::Leaf);
    leaf.prop_recursive(2, 8, 2, |inner| {
        (guard_strategy(), inner.clone(), inner).prop_map(|(guard, t, e)| Tree::Branch {
            guard,
            then: Box::new(t),
            els: Box::new(e),
        })
    })
}

/// Renders a predication tree as the TAC codelet the compiler would have
/// produced: read flank, nested conditional value computation (guards
/// lowered to relational temps), write flank.
fn tree_to_codelet(tree: &Tree) -> Codelet {
    let mut stmts = vec![TacStmt::ReadState {
        dst: "old".into(),
        state: StateRef::Scalar("x".into()),
    }];
    let mut n = 0usize;
    let result = lower_tree(tree, &mut stmts, &mut n);
    stmts.push(TacStmt::WriteState {
        state: StateRef::Scalar("x".into()),
        src: result,
    });
    Codelet::new(stmts)
}

fn lower_tree(tree: &Tree, stmts: &mut Vec<TacStmt>, n: &mut usize) -> Operand {
    match tree {
        Tree::Leaf(u) => {
            let (rhs, needs_temp) = match u {
                Update::Keep => (TacRhs::Copy(Operand::Field("old".into())), false),
                Update::Write(o) => (TacRhs::Copy(o.clone()), false),
                Update::Add(o) => (
                    TacRhs::Binary(
                        domino_ast::BinOp::Add,
                        Operand::Field("old".into()),
                        o.clone(),
                    ),
                    true,
                ),
                Update::Sub(o) => (
                    TacRhs::Binary(
                        domino_ast::BinOp::Sub,
                        Operand::Field("old".into()),
                        o.clone(),
                    ),
                    true,
                ),
            };
            if needs_temp {
                let t = fresh(n);
                stmts.push(TacStmt::Assign {
                    dst: t.clone(),
                    rhs,
                });
                Operand::Field(t)
            } else {
                match rhs {
                    TacRhs::Copy(o) => o,
                    _ => unreachable!(),
                }
            }
        }
        Tree::Branch { guard, then, els } => {
            let cond = fresh(n);
            let g2op = |g: &GuardOperand| match g {
                GuardOperand::Field(f) => Operand::Field(f.clone()),
                GuardOperand::Const(c) => Operand::Const(*c),
                GuardOperand::State(_) => Operand::Field("old".into()),
            };
            let relop = match guard.op {
                RelOp::Lt => domino_ast::BinOp::Lt,
                RelOp::Gt => domino_ast::BinOp::Gt,
                RelOp::Le => domino_ast::BinOp::Le,
                RelOp::Ge => domino_ast::BinOp::Ge,
                RelOp::Eq => domino_ast::BinOp::Eq,
                RelOp::Ne => domino_ast::BinOp::Ne,
            };
            stmts.push(TacStmt::Assign {
                dst: cond.clone(),
                rhs: TacRhs::Binary(relop, g2op(&guard.lhs), g2op(&guard.rhs)),
            });
            let tval = lower_tree(then, stmts, n);
            let eval = lower_tree(els, stmts, n);
            let out = fresh(n);
            stmts.push(TacStmt::Assign {
                dst: out.clone(),
                rhs: TacRhs::Ternary(Operand::Field(cond), tval, eval),
            });
            Operand::Field(out)
        }
    }
}

fn fresh(n: &mut usize) -> String {
    let s = format!("tmp{n}");
    *n += 1;
    s
}

/// Executes the original tree directly (the "hardware" semantics).
fn run_tree(tree: &Tree, old: i32, pkt: &Packet) -> i32 {
    tree.eval(0, &[old], pkt)
}

/// Executes the codelet body sequentially.
fn run_codelet(codelet: &Codelet, old: i32, pkt: &Packet) -> i32 {
    let mut state = StateStore::new();
    state.insert_scalar("x", old);
    let mut p = pkt.clone();
    for s in &codelet.stmts {
        domino_ir::interp::exec_tac_stmt(s, &mut state, &mut p);
    }
    state.read_scalar("x")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Completeness: every tree-expressible codelet synthesizes, and the
    /// synthesized atom computes the same state update as the codelet.
    #[test]
    fn tree_expressible_codelets_always_synthesize(
        tree in tree_strategy(),
        vectors in proptest::collection::vec(
            (any::<i32>(), any::<i32>(), any::<i32>(), any::<i32>()), 24),
    ) {
        let codelet = tree_to_codelet(&tree);
        let synth = synthesize(&codelet).unwrap_or_else(|e| {
            panic!("expressible codelet rejected: {e}\ntree:\n{tree}\ncodelet:\n{codelet}")
        });

        // The tree we generated bounds the required kind.
        let shape_kind = banzai::atom::StatefulConfig {
            state_refs: vec![StateRef::Scalar("x".into())],
            trees: vec![tree.clone()],
            outputs: vec![],
        }
        .minimal_kind()
        .expect("generated tree fits some atom");
        prop_assert!(
            synth.minimal_kind <= shape_kind,
            "synthesis found {:?}, worse than the generating shape {:?}",
            synth.minimal_kind,
            shape_kind
        );

        // Semantic agreement on random vectors.
        for (old, a, b, c) in vectors {
            let pkt = Packet::new().with("fa", a).with("fb", b).with("fc", c);
            let direct = run_tree(&tree, old, &pkt);
            let via_codelet = run_codelet(&codelet, old, &pkt);
            prop_assert_eq!(direct, via_codelet, "codelet rendering diverged");
            let via_config = synth.config.trees[0].eval(0, &[old], &pkt);
            prop_assert_eq!(
                direct, via_config,
                "synthesized config diverged\ntree:\n{}\nconfig:\n{}", &tree, &synth.config
            );
        }
    }

    /// Monotonicity: if a codelet maps to kind K it maps to every kind
    /// above K (containment hierarchy, §5.2).
    #[test]
    fn map_to_kind_is_monotone(tree in tree_strategy()) {
        let codelet = tree_to_codelet(&tree);
        let mut accepted = false;
        for kind in AtomKind::ALL {
            let ok = atom_synth::map_to_kind(&codelet, kind).is_ok();
            if accepted {
                prop_assert!(ok, "hierarchy violated at {:?} for tree:\n{}", kind, tree);
            }
            accepted |= ok;
        }
        prop_assert!(accepted, "tree-expressible codelet mapped nowhere:\n{}", tree);
    }
}
