//! E9/E10 — the differential throughput harness: map-based reference
//! engine vs the slot-compiled fast path (E9), plus the shard-scaling
//! sweep of the flow-steered multi-core switch (E10). Bit-identical
//! outputs asserted throughout; results emitted as
//! `BENCH_throughput.json`; optionally gates against a committed baseline
//! (the CI perf-regression check).
//!
//! ```text
//! throughput [--smoke] [--wire] [--chaos] [--sched] [--stream] [--packets <n>]
//!            [--out <path>] [--shards <csv>] [--check <baseline.json>]
//!            [--tolerance <f>] [--scaling-tolerance <f>]
//!            [--sched-tolerance <f>] [--stream-packets <n>] [--rss-limit-kb <n>]
//!
//!   --smoke            small traces (CI: exercises both engines, the
//!                      sharded switch, and the JSON emission quickly)
//!   --wire             add the E11 byte-level roundtrip workloads
//!                      (parse → pipeline → deparse on both engines) and
//!                      the malformed-traffic parser-stress differential;
//!                      wire rows land in the JSON and are gated by --check
//!   --chaos            add the E12 fault-injection suite against the
//!                      supervised sharded switch (kill / stall / shed /
//!                      bit-flip); every row asserts the failure-model
//!                      invariants before it is recorded
//!   --sched            add the E13 programmable-scheduling workloads
//!                      (WFQ fairness, strict priority, token-bucket
//!                      shaping through the PIFO on both engines, each
//!                      re-run 4-way sharded and held to its scheduling
//!                      invariant); sched rows land in the JSON and are
//!                      gated by --check
//!   --stream           add the E14 bounded-memory streaming run: a
//!                      generator-born flowlet stream pulled through
//!                      `run(source).for_each(sink)` with **no trace and no
//!                      output vector ever materialized**, gated by a hard
//!                      peak-RSS (VmHWM) growth assertion. Runs before the
//!                      trace-materializing sections so the high-water mark
//!                      is honest; CI drives it as its own invocation
//!   --stream-packets <n>
//!                      packets for the E14 stream (default 10000000;
//!                      1000000 under --smoke)
//!   --rss-limit-kb <n> peak-RSS growth ceiling for the E14 run in KiB
//!                      (default 262144 = 256 MiB — an order of magnitude
//!                      under what materializing the default stream would
//!                      take); exceeded = exit nonzero
//!   --packets <n>      packets for the headline flowlet trace (default 1000000)
//!   --out <path>       where to write the JSON (default BENCH_throughput.json)
//!   --shards <csv>     shard counts for the E10 sweep (default 1,2,4,8)
//!   --check <path>     compare fresh slot speedups AND E10 shard-scaling
//!                      rows (effective shard count exactly, modeled
//!                      speedup within tolerance) AND E13 sched rows
//!                      against a committed baseline; exit nonzero on
//!                      regression — a sketch workload regressing to a
//!                      1-shard fallback fails
//!   --tolerance <f>    regression floor for the engine-speedup rows, as
//!                      a fraction of the committed speedup (default 0.5).
//!                      Engine speedups divide a map time by a slot time
//!                      measured seconds apart, so they carry the most
//!                      host noise of anything in the JSON
//!   --scaling-tolerance <f>
//!                      regression floor for the E10 modeled-scaling rows
//!                      (default: the --tolerance value). These ratios
//!                      come from one instrumented run (interleaved
//!                      lanes, min-of-reps), so they are far more stable
//!                      than engine speedups and can hold a tighter floor
//!   --sched-tolerance <f>
//!                      regression floor for the E13 sched rows (default:
//!                      the --tolerance value). Sched speedups are engine
//!                      ratios like the E9 rows, but the timed region
//!                      includes the shared PIFO on both sides, so the
//!                      ratio is compressed toward 1 and steadier
//! ```

use bench::throughput::{
    chaos_suite, check_regressions, check_scaling_regressions, check_sched_regressions,
    machine_workload, parse_baseline, parse_scaling_baseline, parse_sched_baseline, render_json,
    scaling_speedup, sched_workload, shard_sweep, stream_workload, switch_workload, wire_stress,
    wire_workload, ChaosOutcome, Measurement, SchedMeasurement, ShardMeasurement,
    StreamMeasurement, SCHED_DISCIPLINES,
};
use std::process::ExitCode;

const SEED: u64 = 0x000D_0771_2016;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut smoke = false;
    let mut with_wire = false;
    let mut with_chaos = false;
    let mut with_sched = false;
    let mut with_stream = false;
    let mut stream_n: Option<usize> = None;
    let mut rss_limit_kb = 262_144u64;
    let mut flowlet_n: Option<usize> = None;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut check: Option<String> = None;
    let mut tolerance = 0.5f64;
    let mut scaling_tolerance: Option<f64> = None;
    let mut sched_tolerance: Option<f64> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--wire" => with_wire = true,
            "--chaos" => with_chaos = true,
            "--sched" => with_sched = true,
            "--stream" => with_stream = true,
            "--stream-packets" => {
                i += 1;
                let v = args.get(i).ok_or("--stream-packets needs a value")?;
                stream_n = Some(
                    v.parse()
                        .map_err(|_| format!("bad --stream-packets `{v}`"))?,
                );
            }
            "--rss-limit-kb" => {
                i += 1;
                let v = args.get(i).ok_or("--rss-limit-kb needs a value")?;
                rss_limit_kb = v.parse().map_err(|_| format!("bad --rss-limit-kb `{v}`"))?;
            }
            "--packets" => {
                i += 1;
                let v = args.get(i).ok_or("--packets needs a value")?;
                flowlet_n = Some(v.parse().map_err(|_| format!("bad --packets `{v}`"))?);
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).ok_or("--out needs a value")?.clone();
            }
            "--shards" => {
                i += 1;
                let v = args.get(i).ok_or("--shards needs a value")?;
                shard_counts = v
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad --shards `{v}`")))
                    .collect::<Result<_, _>>()?;
                if shard_counts.is_empty() {
                    return Err("--shards needs at least one count".into());
                }
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).ok_or("--check needs a value")?.clone());
            }
            "--tolerance" => {
                i += 1;
                let v = args.get(i).ok_or("--tolerance needs a value")?;
                tolerance = v.parse().map_err(|_| format!("bad --tolerance `{v}`"))?;
            }
            "--scaling-tolerance" => {
                i += 1;
                let v = args.get(i).ok_or("--scaling-tolerance needs a value")?;
                scaling_tolerance = Some(
                    v.parse()
                        .map_err(|_| format!("bad --scaling-tolerance `{v}`"))?,
                );
            }
            "--sched-tolerance" => {
                i += 1;
                let v = args.get(i).ok_or("--sched-tolerance needs a value")?;
                sched_tolerance = Some(
                    v.parse()
                        .map_err(|_| format!("bad --sched-tolerance `{v}`"))?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "throughput [--smoke] [--wire] [--chaos] [--sched] [--stream] [--packets <n>] \
                     [--out <path>] [--shards <csv>] [--check <baseline.json>] \
                     [--tolerance <f>] [--scaling-tolerance <f>] [--sched-tolerance <f>] \
                     [--stream-packets <n>] [--rss-limit-kb <n>]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }

    let (flowlet, hh, codel, switch, sweep_n) = if smoke {
        (20_000, 10_000, 10_000, 5_000, 20_000)
    } else {
        (1_000_000, 300_000, 300_000, 200_000, 1_000_000)
    };
    let flowlet = flowlet_n.unwrap_or(flowlet);

    // E14 runs first: every later section materializes million-packet
    // traces, which would push the process high-water mark far above
    // anything the streamed run adds — measuring it on a fresh process
    // keeps the RSS-growth gate honest.
    let mut stream: Vec<StreamMeasurement> = Vec::new();
    if with_stream {
        let n = stream_n.unwrap_or(if smoke { 1_000_000 } else { 10_000_000 });
        println!(
            "E14 — bounded-memory streaming ingestion: {n} generator-born packets \
             through run(source).for_each(sink), no trace and no output vector \
             ever materialized\n"
        );
        let m = stream_workload(n, SEED);
        let growth = m.rss_growth_kb();
        println!(
            "  offered {}  transmitted {}  dropped {}  {:.0} pkts/s  \
             peak-RSS growth {} (limit {rss_limit_kb} KiB)\n",
            m.packets,
            m.transmitted,
            m.dropped,
            m.pps(),
            growth
                .map(|k| format!("{k} KiB"))
                .unwrap_or_else(|| "unreadable".into()),
        );
        if let Some(growth) = growth {
            if growth > rss_limit_kb {
                return Err(format!(
                    "E14: streamed run grew peak RSS by {growth} KiB, over the \
                     {rss_limit_kb} KiB limit — the run API is buffering somewhere"
                ));
            }
        }
        stream.push(m);
    }

    println!("E9 — execution-engine throughput (every row is a verified differential run)\n");
    let mut measurements = vec![
        machine_workload("flowlet", flowlet, SEED),
        machine_workload("heavy_hitters", hh, SEED),
        machine_workload("codel_lut", codel, SEED),
        switch_workload(switch, SEED),
    ];

    if with_wire {
        // E11 — same traces, born as bytes: the timed region includes
        // parse and deparse on both engines (see bench::throughput).
        measurements.push(wire_workload("flowlet", flowlet.min(200_000), SEED));
        measurements.push(wire_workload("heavy_hitters", hh, SEED));
        measurements.push(wire_workload("codel_lut", codel, SEED));
    }

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m: &Measurement| {
            vec![
                m.name.clone(),
                m.packets.to_string(),
                format!("{:.0}", m.map_pps()),
                format!("{:.0}", m.slot_pps()),
                format!("{:.1}x", m.speedup()),
                "yes".to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        bench::render_table(
            &[
                "workload",
                "packets",
                "map pkts/s",
                "slot pkts/s",
                "speedup",
                "identical"
            ],
            &rows
        )
    );

    if with_wire {
        let stress_n = if smoke { 5_000 } else { 100_000 };
        let r = wire_stress(stress_n, SEED, 0.15);
        println!(
            "parser stress — {} frames at 15% malformation through the wire switch \
             (map and slot engines byte-identical, counters oracle-checked):",
            r.frames
        );
        println!(
            "  transmitted {}  queue_full {}  parse drops: {}\n",
            r.transmitted,
            r.queue_full,
            r.parse_drops
                .iter()
                .map(|(label, c)| format!("{label}={c}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "E10 — shard scaling, flow-steered sharded switch \
         (host has {host_cores} core(s); `modeled` is the per-shard \
         critical path, `wall` is this host's threaded clock)\n"
    );
    let mut scaling: Vec<ShardMeasurement> = Vec::new();
    for workload in ["flowlet", "heavy_hitters", "bloom_filter"] {
        scaling.extend(shard_sweep(workload, sweep_n, SEED, &shard_counts));
    }
    let scaling_rows: Vec<Vec<String>> = scaling
        .iter()
        .map(|s| {
            let speedup = scaling_speedup(&scaling, s)
                .map(|v| format!("{v:.2}x"))
                .unwrap_or_else(|| "-".to_string());
            vec![
                s.workload.clone(),
                s.packets.to_string(),
                format!("{}->{}", s.requested, s.effective),
                s.tier.to_string(),
                format!("{:.0}", s.modeled_pps()),
                format!("{:.0}", s.wall_pps()),
                speedup,
                "yes".to_string(),
                s.fallback
                    .as_deref()
                    .map(|why| {
                        let mut short = why.split(';').next().unwrap_or(why).to_string();
                        if short.len() > 48 {
                            short.truncate(45);
                            short.push_str("...");
                        }
                        short
                    })
                    .unwrap_or_default(),
            ]
        })
        .collect();
    println!(
        "{}",
        bench::render_table(
            &[
                "workload",
                "packets",
                "shards",
                "tier",
                "modeled pkts/s",
                "wall pkts/s",
                "vs 1 shard",
                "identical",
                "fallback"
            ],
            &scaling_rows
        )
    );

    let mut chaos: Vec<ChaosOutcome> = Vec::new();
    if with_chaos {
        let chaos_n = if smoke { 4_000 } else { 50_000 };
        println!(
            "E12 — chaos/overload suite, supervised sharded switch \
             (each row asserts no-hang, typed errors, salvage-equals-serial, \
             and packet conservation before it is recorded)\n"
        );
        // The kill scenario panics a worker on purpose; silence the
        // default panic-hook backtrace so the table stays readable. This
        // binary is single-purpose, so the process-global swap is safe.
        // Chaos workloads must actually fan out (the suite supervises a
        // real multi-worker run) *and* be exactly partitioned, because the
        // suite's salvage oracle is per-shard bit-identity: flowlet plus
        // another per-flow-keyed algorithm. Replicable sketches shard too,
        // but their salvage story is the statistical merge covered by
        // tests/chaos.rs; scalar-state programs (rcp, …) collapse to one
        // shard and are rejected by the suite's precondition.
        chaos = banzai::fault::with_quiet_panics(|| {
            ["flowlet", "sampled_netflow"]
                .iter()
                .flat_map(|w| chaos_suite(w, chaos_n, SEED))
                .collect()
        });
        let chaos_rows: Vec<Vec<String>> = chaos
            .iter()
            .map(|c| {
                vec![
                    c.scenario.clone(),
                    c.workload.clone(),
                    c.packets.to_string(),
                    c.outcome.clone(),
                    c.faulted_shard
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "-".to_string()),
                    c.transmitted.to_string(),
                    c.dropped.to_string(),
                    c.lost_in_fault.to_string(),
                    format!("{}/{}", c.survivors, c.shards),
                    format!("{:.1}", c.wall_ns as f64 / 1e6),
                    "yes".to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            bench::render_table(
                &[
                    "scenario",
                    "workload",
                    "packets",
                    "outcome",
                    "shard",
                    "transmitted",
                    "dropped",
                    "lost",
                    "survivors",
                    "wall ms",
                    "conserved"
                ],
                &chaos_rows
            )
        );
    }

    let mut sched: Vec<SchedMeasurement> = Vec::new();
    if with_sched {
        let sched_n = if smoke { 20_000 } else { 1_000_000 };
        println!(
            "E13 — programmable scheduling, rank transactions driving the PIFO \
             (each row is a verified map-vs-slot differential on the scheduling \
             run, re-run 4-way sharded bit-identically, and held to its \
             discipline's invariant — fairness bound, priority exactness, or \
             pacing — before it is recorded)\n"
        );
        sched = SCHED_DISCIPLINES
            .iter()
            .map(|d| sched_workload(d, sched_n, SEED))
            .collect();
        let sched_rows: Vec<Vec<String>> = sched
            .iter()
            .map(|m| {
                vec![
                    m.sched.clone(),
                    m.packets.to_string(),
                    format!("{:.0}", m.map_pps()),
                    format!("{:.0}", m.slot_pps()),
                    format!("{:.1}x", m.speedup()),
                    "yes".to_string(),
                    "yes".to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            bench::render_table(
                &[
                    "discipline",
                    "packets",
                    "map pkts/s",
                    "slot pkts/s",
                    "speedup",
                    "identical",
                    "invariant"
                ],
                &sched_rows
            )
        );
    }

    let doc = render_json(&measurements, &scaling, &chaos, &sched, &stream, host_cores);
    std::fs::write(&out_path, &doc).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    println!("wrote {out_path}");

    if let Some(baseline_path) = check {
        let baseline_doc = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
        let baseline = parse_baseline(&baseline_doc);
        if baseline.is_empty() {
            return Err(format!(
                "baseline `{baseline_path}` has no workload rows — wrong file?"
            ));
        }
        let scaling_tolerance = scaling_tolerance.unwrap_or(tolerance);
        let sched_tolerance = sched_tolerance.unwrap_or(tolerance);
        let mut failures = check_regressions(&measurements, &baseline, tolerance);
        let scaling_baseline = parse_scaling_baseline(&baseline_doc);
        failures.extend(check_scaling_regressions(
            &scaling,
            &scaling_baseline,
            scaling_tolerance,
        ));
        // Committed sched rows gate even when --sched was forgotten: a
        // fresh run without them trips the missing-row check, same as
        // dropping a workload from the other sections.
        let sched_baseline = parse_sched_baseline(&baseline_doc);
        failures.extend(check_sched_regressions(
            &sched,
            &sched_baseline,
            sched_tolerance,
        ));
        println!(
            "\nperf-regression gate vs {baseline_path} (tolerance {tolerance}, scaling \
             {scaling_tolerance}, sched {sched_tolerance}): {}",
            if failures.is_empty() { "PASS" } else { "FAIL" }
        );
        for m in &measurements {
            if let Some(b) = baseline.iter().find(|b| b.name == m.name) {
                println!(
                    "  {:<16} fresh {:>6.2}x  committed {:>6.2}x  floor {:>6.2}x",
                    m.name,
                    m.speedup(),
                    b.speedup,
                    b.speedup * tolerance
                );
            }
        }
        for s in &scaling {
            if let Some(b) = scaling_baseline
                .iter()
                .find(|b| b.workload == s.workload && b.shards == s.requested)
            {
                let fresh = scaling_speedup(&scaling, s);
                println!(
                    "  {:<16} @{} {:<10} shards {}->{} (committed {})  speedup fresh {}  \
                     committed {}",
                    s.workload,
                    s.requested,
                    s.tier,
                    s.requested,
                    s.effective,
                    b.effective,
                    fresh.map(|v| format!("{v:.2}x")).unwrap_or("-".into()),
                    b.speedup.map(|v| format!("{v:.2}x")).unwrap_or("-".into()),
                );
            }
        }
        for m in &sched {
            if let Some(b) = sched_baseline.iter().find(|b| b.sched == m.sched) {
                println!(
                    "  sched/{:<10} fresh {:>6.2}x  committed {:>6.2}x  floor {:>6.2}x",
                    m.sched,
                    m.speedup(),
                    b.speedup,
                    b.speedup * sched_tolerance
                );
            }
        }
        if !failures.is_empty() {
            return Err(format!(
                "perf regression detected:\n  {}",
                failures.join("\n  ")
            ));
        }
    }
    Ok(())
}
