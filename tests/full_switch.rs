//! The Figure 1 architecture end to end: a switch running **flowlet
//! switching at ingress** and **CoDel (LUT variant) at egress**, with a
//! real queue between the pipelines — exactly the placement Table 4
//! prescribes for the two algorithms.

use banzai::{AtomKind, Switch, Target};
use domino_ir::Packet;

fn build_switch(capacity: usize, drain_period: u64) -> Switch {
    let flowlet = algorithms::by_name("flowlet").unwrap();
    let ingress =
        domino_compiler::compile(flowlet.source, &Target::banzai(AtomKind::Praw)).unwrap();
    let codel = algorithms::by_name("codel_lut").unwrap();
    let egress =
        domino_compiler::compile(codel.source, &Target::banzai_with_lut(AtomKind::Nested)).unwrap();
    Switch::new(ingress, egress, capacity).with_drain_period(drain_period)
}

fn trace(n: usize) -> Vec<Packet> {
    // Flowlet inputs; CoDel's inputs (now/enq_ts) are stamped by the
    // queue itself.
    algorithms::by_name("flowlet").unwrap().trace(n, 0xF00D)
}

#[test]
fn uncongested_switch_forwards_without_drops_or_codel_drops() {
    let mut sw = build_switch(256, 1);
    let out = sw
        .run(&trace(2000))
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    assert_eq!(out.len(), 2000);
    assert_eq!(sw.drops(), 0);
    // Line-rate drain ⇒ no standing queue ⇒ CoDel never enters dropping.
    let marked = out.iter().filter(|p| p.get("drop") == Some(1)).count();
    assert_eq!(marked, 0, "CoDel marked packets without congestion");
    // Ingress still did its job: every packet got a next hop.
    assert!(out
        .iter()
        .all(|p| (0..10).contains(&p.get("next_hop").unwrap())));
}

#[test]
fn congested_switch_builds_queue_and_codel_reacts() {
    // Egress link at 1/3 line rate: a standing queue must form and CoDel
    // must start signalling.
    let mut sw = build_switch(512, 3);
    let out = sw
        .run(&trace(3000))
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    assert!(out.len() > 500);
    let max_sojourn = out
        .iter()
        .map(|p| p.get("now").unwrap() - p.get("enq_ts").unwrap())
        .max()
        .unwrap();
    assert!(
        max_sojourn > 5,
        "no standing queue formed (max sojourn {max_sojourn})"
    );
    let marked = out.iter().filter(|p| p.get("drop") == Some(1)).count();
    assert!(marked > 0, "CoDel never reacted to a standing queue");
    // And it must not be marking everything — the control law paces drops.
    assert!(
        marked < out.len() / 2,
        "CoDel marked {marked}/{} — control law not pacing",
        out.len()
    );
}

#[test]
fn ingress_flowlet_state_and_egress_codel_state_both_live() {
    let mut sw = build_switch(128, 2);
    sw.run(&trace(1500))
        .for_each(|_| {})
        .expect("slice-backed sources cannot fail mid-stream");
    // Ingress owns the flowlet tables...
    assert!(sw.ingress_state().get("saved_hop").is_some());
    assert!(sw.ingress_state().get("last_time").is_some());
    // ...egress owns the CoDel control state; they are disjoint machines.
    assert!(sw.egress_state().get("first_above_time").is_some());
    assert!(sw.ingress_state().get("first_above_time").is_none());
    assert!(sw.egress_state().get("saved_hop").is_none());
}
