//! # hardware-model — area and timing estimation for Banzai atoms
//!
//! Substitute for the paper's Synopsys Design Compiler flow (§5.2): every
//! atom template is realized as a structural circuit
//! ([`circuits::stateful_circuit`], [`circuits::stateless_circuit`]) over
//! a 32 nm-calibrated component library ([`components::Component`]),
//! yielding area (Table 3), minimum delay and maximum line rate
//! (Tables 5/6), and the chip-level resource budget of §5.2
//! ([`budget::compute`]).
//!
//! Calibration: per-component costs are fitted so the computed figures
//! land within 15% of every published number (asserted by tests); the
//! *shape* — monotone growth of area and delay with atom expressiveness,
//! line rate as the reciprocal of delay, <15% total chip overhead — falls
//! out of the circuit structures themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod circuits;
pub mod components;
pub mod rtl;

pub use budget::{compute as compute_budget, Budget};
pub use circuits::{
    paper_area, paper_delay, stateful_circuit, stateless_circuit, Circuit, PAPER_STATELESS_AREA,
};
pub use components::Component;
pub use rtl::emit_verilog;
