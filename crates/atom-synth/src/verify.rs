//! Equivalence verification between a codelet specification and a
//! synthesized atom configuration.
//!
//! SKETCH proves candidate configurations equivalent to the specification
//! over all inputs of a bounded bit-width. We use the testing analogue:
//! a deterministic suite of *corner-case* vectors (zeros, ±1, extreme
//! values, every constant appearing in either side ± 1 — the values where
//! wrapping/boundary bugs live) plus a large batch of seeded random
//! vectors. A configuration produced by an *unsound* rewrite is caught
//! here, keeping the all-or-nothing guarantee honest.

use crate::sym::CodeletSpec;
use banzai::atom::{GuardOperand, StatefulConfig, Tree, Update};
use domino_ir::{Operand, Packet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Number of random vectors checked in addition to the corner-case grid.
const RANDOM_VECTORS: usize = 512;

/// A failed verification: the input vector and the two disagreeing values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// State variable index that disagreed.
    pub var: usize,
    /// Pre-update state values used.
    pub olds: Vec<i32>,
    /// Packet fields used.
    pub packet: Packet,
    /// Value computed by the specification (the codelet).
    pub expected: i32,
    /// Value computed by the configuration (the atom).
    pub got: i32,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "configuration diverges from codelet on state[{}]: \
             olds={:?}, packet={}, codelet says {}, atom says {}",
            self.var, self.olds, self.packet, self.expected, self.got
        )
    }
}

/// Verifies that `config` computes the same state updates as `spec` on the
/// corner-case grid and `RANDOM_VECTORS` seeded random vectors.
pub fn verify(spec: &CodeletSpec, config: &StatefulConfig) -> Result<(), Counterexample> {
    let fields = collect_fields(spec, config);
    let interesting = interesting_values(spec, config);

    // Corner grid: for small field counts, exercise combinations of
    // interesting values; otherwise sample the grid diagonally.
    let mut rng = StdRng::seed_from_u64(0x5eed_ca11);
    let n_vars = spec.num_vars();

    let check = |olds: &[i32], pkt: &Packet| -> Result<(), Counterexample> {
        for (i, update) in spec.updates.iter().enumerate() {
            let expected = update.eval(olds, pkt);
            let got = config.trees[i].eval(i, olds, pkt);
            if expected != got {
                return Err(Counterexample {
                    var: i,
                    olds: olds.to_vec(),
                    packet: pkt.clone(),
                    expected,
                    got,
                });
            }
        }
        Ok(())
    };

    // Diagonal corner sweep: every interesting value in every slot while
    // others cycle through the list too (bounded work, hits boundaries).
    for (k, &v) in interesting.iter().enumerate() {
        for slot in 0..(n_vars + fields.len()) {
            let mut olds: Vec<i32> = (0..n_vars)
                .map(|i| interesting[(k + i) % interesting.len()])
                .collect();
            let mut pkt = Packet::new();
            for (j, f) in fields.iter().enumerate() {
                pkt.set(f, interesting[(k + n_vars + j) % interesting.len()]);
            }
            if slot < n_vars {
                olds[slot] = v;
            } else {
                pkt.set(&fields[slot - n_vars], v);
            }
            check(&olds, &pkt)?;
        }
    }

    // Correlated corners: guards and updates often misbehave only when
    // *several* operands take boundary values together (e.g. two guard
    // fields both zero), which no per-slot sweep hits. Enumerate the full
    // cartesian grid over the small-magnitude corner values when feasible,
    // otherwise sample corner combinations.
    let slots = n_vars + fields.len();
    let mut small: Vec<i32> = interesting.clone();
    small.sort_by_key(|v| v.unsigned_abs());
    small.truncate(8);
    let grid_size = (small.len() as u64).checked_pow(slots as u32);
    if let Some(size) = grid_size.filter(|&s| s <= 65_536) {
        for mut idx in 0..size {
            let mut vals = Vec::with_capacity(slots);
            for _ in 0..slots {
                vals.push(small[(idx % small.len() as u64) as usize]);
                idx /= small.len() as u64;
            }
            let olds = vals[..n_vars].to_vec();
            let mut pkt = Packet::new();
            for (f, v) in fields.iter().zip(&vals[n_vars..]) {
                pkt.set(f, *v);
            }
            check(&olds, &pkt)?;
        }
    } else {
        for _ in 0..4096 {
            let olds: Vec<i32> = (0..n_vars)
                .map(|_| small[rng.gen_range(0..small.len())])
                .collect();
            let mut pkt = Packet::new();
            for f in &fields {
                pkt.set(f, small[rng.gen_range(0..small.len())]);
            }
            check(&olds, &pkt)?;
        }
    }

    // Random vectors.
    for _ in 0..RANDOM_VECTORS {
        let olds: Vec<i32> = (0..n_vars).map(|_| rng.gen()).collect();
        let mut pkt = Packet::new();
        for f in &fields {
            pkt.set(f, rng.gen());
        }
        check(&olds, &pkt)?;
        // Also small-magnitude vectors, where most algorithm behaviour
        // (thresholds, counters) lives.
        let olds: Vec<i32> = (0..n_vars).map(|_| rng.gen_range(-64..64)).collect();
        let mut pkt = Packet::new();
        for f in &fields {
            pkt.set(f, rng.gen_range(-64..64));
        }
        check(&olds, &pkt)?;
    }

    Ok(())
}

fn collect_fields(spec: &CodeletSpec, config: &StatefulConfig) -> Vec<String> {
    let mut fields: BTreeSet<String> = BTreeSet::new();
    for u in &spec.updates {
        for f in u.fields() {
            fields.insert(f.to_string());
        }
    }
    for tree in &config.trees {
        collect_tree_fields(tree, &mut fields);
    }
    fields.into_iter().collect()
}

fn collect_tree_fields(tree: &Tree, out: &mut BTreeSet<String>) {
    match tree {
        Tree::Leaf(u) => {
            if let Update::Write(Operand::Field(f))
            | Update::Add(Operand::Field(f))
            | Update::Sub(Operand::Field(f)) = u
            {
                out.insert(f.clone());
            }
        }
        Tree::Branch { guard, then, els } => {
            for o in [&guard.lhs, &guard.rhs] {
                if let GuardOperand::Field(f) = o {
                    out.insert(f.clone());
                }
            }
            collect_tree_fields(then, out);
            collect_tree_fields(els, out);
        }
    }
}

fn interesting_values(spec: &CodeletSpec, config: &StatefulConfig) -> Vec<i32> {
    let mut vals: BTreeSet<i32> = [
        0,
        1,
        -1,
        2,
        -2,
        i32::MAX,
        i32::MIN,
        i32::MAX - 1,
        i32::MIN + 1,
    ]
    .into_iter()
    .collect();
    let mut add_const = |c: i32| {
        vals.insert(c);
        vals.insert(c.wrapping_add(1));
        vals.insert(c.wrapping_sub(1));
        vals.insert(c.wrapping_neg());
    };
    for u in &spec.updates {
        for c in u.constants() {
            add_const(c);
        }
    }
    for tree in &config.trees {
        for g in tree.guards() {
            for o in [&g.lhs, &g.rhs] {
                if let GuardOperand::Const(c) = o {
                    add_const(*c);
                }
            }
        }
        for u in tree.leaves() {
            if let Update::Write(Operand::Const(c))
            | Update::Add(Operand::Const(c))
            | Update::Sub(Operand::Const(c)) = u
            {
                add_const(*c);
            }
        }
    }
    vals.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sym;
    use banzai::atom::{Guard, RelOp};
    use domino_ast::BinOp;
    use domino_ir::StateRef;

    fn simple_spec(update: Sym) -> CodeletSpec {
        CodeletSpec {
            state_refs: vec![StateRef::Scalar("x".into())],
            updates: vec![update],
            outputs: vec![],
        }
    }

    fn config_with_tree(tree: Tree) -> StatefulConfig {
        StatefulConfig {
            state_refs: vec![StateRef::Scalar("x".into())],
            trees: vec![tree],
            outputs: vec![],
        }
    }

    #[test]
    fn correct_increment_verifies() {
        let spec = simple_spec(Sym::Binary(
            BinOp::Add,
            Box::new(Sym::StateOld(0)),
            Box::new(Sym::Const(1)),
        ));
        let config = config_with_tree(Tree::Leaf(Update::Add(Operand::Const(1))));
        verify(&spec, &config).unwrap();
    }

    #[test]
    fn wrong_constant_is_caught() {
        let spec = simple_spec(Sym::Binary(
            BinOp::Add,
            Box::new(Sym::StateOld(0)),
            Box::new(Sym::Const(1)),
        ));
        let config = config_with_tree(Tree::Leaf(Update::Add(Operand::Const(2))));
        let cex = verify(&spec, &config).unwrap_err();
        assert_eq!(cex.expected, cex.got - 1);
    }

    #[test]
    fn unsound_ordered_rewrite_is_caught_at_boundary() {
        // Spec: (old + 1 > 30) ? 0 : old   — wrapping makes old = i32::MAX
        // take the FALSE branch (old+1 wraps to MIN).
        // Bogus config: old > 29 ? 0 : keep — takes TRUE at old = MAX.
        let spec = simple_spec(Sym::Ternary(
            Box::new(Sym::Binary(
                BinOp::Gt,
                Box::new(Sym::Binary(
                    BinOp::Add,
                    Box::new(Sym::StateOld(0)),
                    Box::new(Sym::Const(1)),
                )),
                Box::new(Sym::Const(30)),
            )),
            Box::new(Sym::Const(0)),
            Box::new(Sym::StateOld(0)),
        ));
        let config = config_with_tree(Tree::Branch {
            guard: Guard {
                op: RelOp::Gt,
                lhs: GuardOperand::State(0),
                rhs: GuardOperand::Const(29),
            },
            then: Box::new(Tree::Leaf(Update::Write(Operand::Const(0)))),
            els: Box::new(Tree::Leaf(Update::Keep)),
        });
        let cex = verify(&spec, &config).unwrap_err();
        // The counterexample must be at the wrap boundary.
        assert_eq!(cex.olds[0], i32::MAX);
    }

    #[test]
    fn guard_field_mismatch_caught() {
        // Spec guards on pkt.a, config guards on pkt.b.
        let spec = simple_spec(Sym::Ternary(
            Box::new(Sym::Field("a".into())),
            Box::new(Sym::Const(1)),
            Box::new(Sym::StateOld(0)),
        ));
        let config = config_with_tree(Tree::Branch {
            guard: Guard {
                op: RelOp::Ne,
                lhs: GuardOperand::Field("b".into()),
                rhs: GuardOperand::Const(0),
            },
            then: Box::new(Tree::Leaf(Update::Write(Operand::Const(1)))),
            els: Box::new(Tree::Leaf(Update::Keep)),
        });
        assert!(verify(&spec, &config).is_err());
    }

    #[test]
    fn counterexample_display_is_informative() {
        let cex = Counterexample {
            var: 0,
            olds: vec![5],
            packet: Packet::new().with("a", 1),
            expected: 6,
            got: 7,
        };
        let text = cex.to_string();
        assert!(text.contains("codelet says 6"), "{text}");
        assert!(text.contains("atom says 7"), "{text}");
    }
}
