//! Enumerative parameter search — the SKETCH analogue.
//!
//! The paper maps codelets to atoms by asking SKETCH to *search* the atom
//! template's parameter space (mux selectors, opcode choices, constants) for
//! a configuration functionally identical to the codelet (§4.3, Figure 2).
//! This module implements that search directly: enumerate candidate guards
//! and updates drawn from an operand universe, filter against a growing
//! example set (cheap), and verify survivors with the full suite
//! ([`crate::verify`]).
//!
//! The structural normalizer ([`crate::normalize`]) is the fast path; this
//! search is both a fallback (it can discover parameterizations the
//! normalizer's rewrites miss) and an independent oracle used by tests to
//! cross-check the normalizer. Unlike SKETCH we do not enumerate raw
//! constant bit-patterns: candidate constants are harvested from the
//! codelet text (±1), which is why the paper's 5-bit search bound does not
//! apply here.

use crate::sym::CodeletSpec;
use crate::verify;
use banzai::atom::{Guard, GuardOperand, RelOp, StatefulConfig, Tree, Update};
use banzai::kind::AtomKind;
use domino_ir::{Operand, Packet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Hard cap on candidate configurations tried per state variable; beyond
/// this the search reports failure (the codelet is rejected, matching the
/// all-or-nothing model).
const MAX_CANDIDATES: usize = 2_000_000;

/// Searches for a configuration of `kind`'s template implementing `spec`.
///
/// Only single-variable, depth ≤ 1 templates (Write .. Sub) are searched —
/// the spaces for Nested/Pairs are combinatorial and served by the
/// normalizer. Returns `None` if no configuration in the space matches.
pub fn enumerate(spec: &CodeletSpec, kind: AtomKind) -> Option<StatefulConfig> {
    if spec.num_vars() != 1 {
        return None;
    }
    let caps = kind.caps();
    if caps.max_tree_depth > 1 {
        // Nested/Pairs: fall back to the IfElseRAW-shaped space, which is
        // contained in them (hierarchy).
    }

    let universe = operand_universe(spec);
    let guards = guard_candidates(spec, &universe);
    let updates = update_candidates(&universe, caps.allow_add, caps.allow_sub);

    // Example vectors for fast filtering.
    let examples = example_vectors(spec);
    let expected: Vec<i32> = examples
        .iter()
        .map(|(olds, pkt)| spec.updates[0].eval(olds, pkt))
        .collect();

    let mut tried = 0usize;

    // Depth 0: a single unconditional update.
    for u in &updates {
        tried += 1;
        if matches_examples_leaf(u, &examples, &expected) {
            let config = make_config(spec, Tree::Leaf(u.clone()));
            if verify::verify(spec, &config).is_ok() {
                return Some(config);
            }
        }
    }

    if caps.max_tree_depth == 0 {
        return None;
    }

    // Depth 1: guard + two updates (else constrained to Keep for PRAW).
    let else_updates: Vec<Update> = if caps.else_may_update {
        updates.clone()
    } else {
        vec![Update::Keep]
    };
    for g in &guards {
        // Pre-evaluate the guard on all examples.
        let taken: Vec<bool> = examples
            .iter()
            .map(|(olds, pkt)| g.eval(olds, pkt))
            .collect();
        for then_u in &updates {
            // The then-branch must match every example where the guard held.
            if !branch_matches(then_u, &examples, &expected, &taken, true) {
                continue;
            }
            for else_u in &else_updates {
                tried += 1;
                if tried > MAX_CANDIDATES {
                    return None;
                }
                if !branch_matches(else_u, &examples, &expected, &taken, false) {
                    continue;
                }
                let tree = Tree::Branch {
                    guard: g.clone(),
                    then: Box::new(Tree::Leaf(then_u.clone())),
                    els: Box::new(Tree::Leaf(else_u.clone())),
                };
                let config = make_config(spec, tree);
                if verify::verify(spec, &config).is_ok() {
                    return Some(config);
                }
            }
        }
    }
    None
}

fn make_config(spec: &CodeletSpec, tree: Tree) -> StatefulConfig {
    StatefulConfig {
        state_refs: spec.state_refs.clone(),
        trees: vec![tree],
        outputs: spec.outputs.clone(),
    }
}

fn matches_examples_leaf(u: &Update, examples: &[(Vec<i32>, Packet)], expected: &[i32]) -> bool {
    examples
        .iter()
        .zip(expected)
        .all(|((olds, pkt), want)| u.apply(olds[0], pkt) == *want)
}

fn branch_matches(
    u: &Update,
    examples: &[(Vec<i32>, Packet)],
    expected: &[i32],
    taken: &[bool],
    when: bool,
) -> bool {
    examples
        .iter()
        .zip(expected)
        .zip(taken)
        .filter(|(_, t)| **t == when)
        .all(|(((olds, pkt), want), _)| u.apply(olds[0], pkt) == *want)
}

/// Candidate update/guard operands: fields and constants from the codelet,
/// plus 0, 1, and each constant ± 1.
fn operand_universe(spec: &CodeletSpec) -> (Vec<String>, Vec<i32>) {
    let mut fields: BTreeSet<String> = BTreeSet::new();
    let mut consts: BTreeSet<i32> = [0, 1].into_iter().collect();
    for u in &spec.updates {
        for f in u.fields() {
            fields.insert(f.to_string());
        }
        for c in u.constants() {
            consts.insert(c);
            consts.insert(c.wrapping_add(1));
            consts.insert(c.wrapping_sub(1));
        }
    }
    (fields.into_iter().collect(), consts.into_iter().collect())
}

fn guard_candidates(spec: &CodeletSpec, universe: &(Vec<String>, Vec<i32>)) -> Vec<Guard> {
    let (fields, consts) = universe;
    let mut operands: Vec<GuardOperand> = Vec::new();
    for i in 0..spec.num_vars() {
        operands.push(GuardOperand::State(i));
    }
    for f in fields {
        operands.push(GuardOperand::Field(f.clone()));
    }
    for c in consts {
        operands.push(GuardOperand::Const(*c));
    }
    let relops = [
        RelOp::Lt,
        RelOp::Gt,
        RelOp::Le,
        RelOp::Ge,
        RelOp::Eq,
        RelOp::Ne,
    ];
    let mut out = Vec::new();
    for op in relops {
        for l in &operands {
            for r in &operands {
                // Skip vacuous const-const guards.
                if matches!(l, GuardOperand::Const(_)) && matches!(r, GuardOperand::Const(_)) {
                    continue;
                }
                out.push(Guard {
                    op,
                    lhs: l.clone(),
                    rhs: r.clone(),
                });
            }
        }
    }
    out
}

fn update_candidates(
    universe: &(Vec<String>, Vec<i32>),
    allow_add: bool,
    allow_sub: bool,
) -> Vec<Update> {
    let (fields, consts) = universe;
    let mut operands: Vec<Operand> = Vec::new();
    for f in fields {
        operands.push(Operand::Field(f.clone()));
    }
    for c in consts {
        operands.push(Operand::Const(*c));
    }
    let mut out = vec![Update::Keep];
    for o in &operands {
        out.push(Update::Write(o.clone()));
        if allow_add {
            out.push(Update::Add(o.clone()));
        }
        if allow_sub {
            out.push(Update::Sub(o.clone()));
        }
    }
    out
}

/// A deterministic mixed suite of example vectors for candidate filtering.
fn example_vectors(spec: &CodeletSpec) -> Vec<(Vec<i32>, Packet)> {
    let mut fields: BTreeSet<String> = BTreeSet::new();
    for u in &spec.updates {
        for f in u.fields() {
            fields.insert(f.to_string());
        }
    }
    let fields: Vec<String> = fields.into_iter().collect();
    let mut rng = StdRng::seed_from_u64(0xD0_0D1E5);
    let mut out = Vec::new();
    let mut consts: Vec<i32> = vec![0, 1, -1, 30, i32::MAX, i32::MIN];
    for u in &spec.updates {
        for c in u.constants() {
            consts.extend([c, c.wrapping_add(1), c.wrapping_sub(1)]);
        }
    }
    for k in 0..24 {
        let olds: Vec<i32> = (0..spec.num_vars())
            .map(|i| {
                if k < consts.len() {
                    consts[(k + i) % consts.len()]
                } else if k % 2 == 0 {
                    rng.gen_range(-64..64)
                } else {
                    rng.gen()
                }
            })
            .collect();
        let mut pkt = Packet::new();
        for f in &fields {
            let v = if k % 2 == 0 {
                rng.gen_range(-64..64)
            } else {
                rng.gen()
            };
            pkt.set(f, v);
        }
        out.push((olds, pkt));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Sym;
    use domino_ast::BinOp;
    use domino_ir::StateRef;

    fn spec_of(update: Sym) -> CodeletSpec {
        CodeletSpec {
            state_refs: vec![StateRef::Scalar("x".into())],
            updates: vec![update],
            outputs: vec![],
        }
    }

    fn old() -> Sym {
        Sym::StateOld(0)
    }
    fn cst(v: i32) -> Sym {
        Sym::Const(v)
    }
    fn bin(op: BinOp, a: Sym, b: Sym) -> Sym {
        Sym::Binary(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn finds_increment_like_sketch_figure2() {
        // The paper's worked example: map x = x + 1 onto the add/sub
        // template; SKETCH finds choice=0, constant=1. Our search finds
        // Update::Add(1).
        let spec = spec_of(bin(BinOp::Add, old(), cst(1)));
        let config = enumerate(&spec, AtomKind::Raw).expect("x=x+1 must map to RAW");
        assert_eq!(config.trees[0], Tree::Leaf(Update::Add(Operand::Const(1))));
    }

    #[test]
    fn rejects_square_like_sketch_figure2() {
        // x = x * x has no parameterization: SKETCH "returns an error as no
        // parameters exist".
        let spec = spec_of(bin(BinOp::Mul, old(), old()));
        assert!(enumerate(&spec, AtomKind::Pairs).is_none());
    }

    #[test]
    fn write_atom_cannot_increment() {
        let spec = spec_of(bin(BinOp::Add, old(), cst(1)));
        assert!(enumerate(&spec, AtomKind::Write).is_none());
    }

    #[test]
    fn finds_wraparound_counter_on_ifelse_raw() {
        // (old < 99) ? old + 1 : 0
        let spec = spec_of(Sym::Ternary(
            Box::new(bin(BinOp::Lt, old(), cst(99))),
            Box::new(bin(BinOp::Add, old(), cst(1))),
            Box::new(cst(0)),
        ));
        let config = enumerate(&spec, AtomKind::IfElseRaw).expect("must map");
        assert_eq!(config.trees[0].depth(), 1);
        // And PRAW must NOT suffice (else branch writes 0).
        assert!(enumerate(&spec, AtomKind::Praw).is_none());
    }

    #[test]
    fn search_discovers_equality_offset_reparameterization() {
        // (old + 1 == 30) ? 0 : old + 1 — searchable as old == 29.
        let spec = spec_of(Sym::Ternary(
            Box::new(bin(BinOp::Eq, bin(BinOp::Add, old(), cst(1)), cst(30))),
            Box::new(cst(0)),
            Box::new(bin(BinOp::Add, old(), cst(1))),
        ));
        let config = enumerate(&spec, AtomKind::IfElseRaw).expect("must map");
        let Tree::Branch { guard, .. } = &config.trees[0] else {
            panic!()
        };
        // The discovered guard must be semantically old==29 or its mirror.
        let g = guard.to_string();
        assert!(
            g == "state[0] == 29" || g == "29 == state[0]" || g == "state[0] != 29", // with swapped branches — verify
            // would have caught wrong semantics
            "unexpected guard {g}"
        );
    }

    #[test]
    fn subtraction_needs_sub_atom() {
        let spec = spec_of(bin(BinOp::Sub, old(), Sym::Field("dec".into())));
        assert!(enumerate(&spec, AtomKind::IfElseRaw).is_none());
        let config = enumerate(&spec, AtomKind::Sub).expect("must map on Sub");
        assert_eq!(
            config.trees[0],
            Tree::Leaf(Update::Sub(Operand::Field("dec".into())))
        );
    }

    #[test]
    fn guarded_accumulate_fits_praw() {
        // RCP-style: (pkt.ok) ? old + pkt.rtt : old
        let spec = spec_of(Sym::Ternary(
            Box::new(Sym::Field("ok".into())),
            Box::new(bin(BinOp::Add, old(), Sym::Field("rtt".into()))),
            Box::new(old()),
        ));
        let config = enumerate(&spec, AtomKind::Praw).expect("must map on PRAW");
        let Tree::Branch { els, .. } = &config.trees[0] else {
            panic!()
        };
        assert_eq!(**els, Tree::Leaf(Update::Keep));
    }

    #[test]
    fn two_variable_specs_are_not_searched() {
        let spec = CodeletSpec {
            state_refs: vec![StateRef::Scalar("a".into()), StateRef::Scalar("b".into())],
            updates: vec![Sym::StateOld(0), Sym::StateOld(1)],
            outputs: vec![],
        };
        assert!(enumerate(&spec, AtomKind::Pairs).is_none());
    }
}
