//! The **fifth leg** of the differential harness: the wire roundtrip.
//!
//! `tests/differential.rs` pins four implementations against each other
//! (map engine, slot engine, AST interpreter, Rust reference) on
//! *map-born* packets. This suite adds the byte-born path: every Table 4
//! algorithm's seeded trace is encoded as raw wire frames
//! (`bench::wiregen`), driven through parse → pipeline → deparse on
//! **both** engines, and must agree with the map-born run field-for-field
//! and state-for-state — plus byte-for-byte between the engines.
//!
//! The second half is the malformed-traffic golden suite: a canonical
//! frame truncated at *every* byte boundary must produce the pinned
//! [`ParseVerdict`] for that region and bump exactly the matching
//! per-reason drop counter on the switch.

use banzai::wire::{self, BoundParser, FrameSpec, ParseVerdict, WireConfig};
use banzai::{AtomPipeline, DropReason, Machine, SlotMachine, Switch, Target};
use bench::wiregen::{self, GenOptions};
use domino_ir::Packet;

const TRACE_LEN: usize = 600;
const SEED: u64 = 0x000D_0771_2016;

/// Compiles an algorithm on its least-expressive paper target (mirrors
/// `tests/differential.rs`).
fn pipeline_for(a: &algorithms::Algorithm) -> AtomPipeline {
    let kind = a.paper.least_atom.expect("algorithm must map");
    let target = if a.name == "codel_lut" {
        Target::banzai_with_lut(kind)
    } else {
        Target::banzai(kind)
    };
    domino_compiler::compile(a.source, &target).unwrap_or_else(|e| panic!("{}: {e}", a.name))
}

/// The wire-roundtrip differential for one algorithm:
///
/// 1. the **map-born** baseline (`Machine::run_trace` on the raw trace);
/// 2. the **byte-born map path**: `wire::parse` → `Machine::process` →
///    `wire::deparse` per frame;
/// 3. the **byte-born slot path**: `BoundParser::parse_flat` →
///    `SlotMachine::process_flat` → `BoundParser::deparse_flat`.
///
/// Checks: (a) byte-born ≡ map-born on every declared packet field,
/// (b) all three final states bit-identical, (c) both byte paths emit
/// identical frames, (d) re-parsing an emitted frame recovers the
/// pipeline's output fields.
fn wire_differential(a: &algorithms::Algorithm) {
    let trace = a.trace(TRACE_LEN, SEED);
    // Output fields get trailer slots so pipeline-written results survive
    // deparsing (check d) — the INT idiom of carrying results in-band.
    let opts = GenOptions {
        extra_meta: a.output_fields.iter().map(|f| f.to_string()).collect(),
        ..GenOptions::default()
    };
    let wt = wiregen::wire_trace(&trace, SEED, &opts);
    let checked = domino_ast::parse_and_check(a.source).unwrap();
    let pipeline = pipeline_for(a);

    // 1. Map-born baseline.
    let mut born = Machine::new(pipeline.clone());
    let born_out = born.run_trace(&trace);

    // 2. Byte-born, map engine.
    let mut wire_machine = Machine::new(pipeline.clone());
    let mut wire_pkts = Vec::with_capacity(trace.len());
    let mut wire_bytes = Vec::with_capacity(trace.len());
    for frame in &wt.frames {
        let wp = wire::parse(frame, &wt.cfg)
            .unwrap_or_else(|v| panic!("{}: well-formed frame rejected: {v}", a.name));
        let processed = wire_machine.process(wp.pkt);
        wire_bytes.push(wire::deparse(&processed, &wp.layout));
        wire_pkts.push(processed);
    }

    // 3. Byte-born, slot engine.
    let mut slot = SlotMachine::compile(&pipeline)
        .unwrap_or_else(|e| panic!("{}: slot lowering failed: {e}", a.name));
    let parser = BoundParser::bind(wt.cfg.clone(), slot.field_table().clone());
    let slot_bytes: Vec<Vec<u8>> = wt
        .frames
        .iter()
        .map(|frame| {
            let (mut flat, layout) = parser
                .parse_flat(frame)
                .expect("same frames, same verdicts");
            slot.process_flat(&mut flat);
            parser.deparse_flat(&flat, &layout)
        })
        .collect();

    // (a) Byte-born ≡ map-born on every field the program declares —
    // parsing through real headers must be invisible to the algorithm.
    let fields = checked.packet_fields.clone();
    for (i, (w, b)) in wire_pkts.iter().zip(&born_out).enumerate() {
        assert_eq!(
            w.project(&fields),
            b.project(&fields),
            "{}: wire path diverges from map-born path at packet {i}",
            a.name
        );
    }

    // (b) Bit-identical state across all three runs.
    assert_eq!(
        born.state(),
        wire_machine.state(),
        "{}: wire ingestion changed pipeline state",
        a.name
    );
    assert_eq!(
        *born.state(),
        slot.export_state(),
        "{}: slot wire path state diverged",
        a.name
    );

    // (c) Both engines emit the same bytes.
    for (i, (m, s)) in wire_bytes.iter().zip(&slot_bytes).enumerate() {
        assert_eq!(
            m, s,
            "{}: engines deparsed different bytes at frame {i}",
            a.name
        );
    }

    // (d) Emitted frames re-parse to the pipeline's outputs (the trailer
    // and headers carry every declared field at full fidelity).
    for (i, (bytes, pkt)) in wire_bytes.iter().zip(&wire_pkts).enumerate() {
        let reparsed = wire::parse(bytes, &wt.cfg)
            .unwrap_or_else(|v| panic!("{}: deparsed frame rejected: {v}", a.name));
        for f in a.output_fields {
            assert_eq!(
                reparsed.pkt.get_or_zero(f),
                pkt.get_or_zero(f),
                "{}: output `{f}` lost in deparse at frame {i}",
                a.name
            );
        }
    }
}

macro_rules! wire_differential_test {
    ($name:ident) => {
        #[test]
        fn $name() {
            wire_differential(&algorithms::by_name(stringify!($name)).unwrap());
        }
    };
}

wire_differential_test!(bloom_filter);
wire_differential_test!(heavy_hitters);
wire_differential_test!(flowlet);
wire_differential_test!(rcp);
wire_differential_test!(sampled_netflow);
wire_differential_test!(hull);
wire_differential_test!(avq);
wire_differential_test!(stfq);
wire_differential_test!(dns_ttl_change);
wire_differential_test!(conga);
wire_differential_test!(codel_lut);

// ---------------------------------------------------------------------------
// Malformed-frame goldens: truncation at every boundary
// ---------------------------------------------------------------------------

/// The pinned verdict for a canonical **untagged TCP** frame (IHL 5,
/// data offset 5, `meta_words` trailer words) truncated to `len` bytes.
fn expected_tcp_verdict(len: usize, meta_words: usize) -> Option<ParseVerdict> {
    let meta_end = 54 + 4 * meta_words; // 14 eth + 20 ip + 20 tcp + trailer
    match len {
        0..=13 => Some(ParseVerdict::TruncatedEthernet),
        14..=33 => Some(ParseVerdict::TruncatedIpv4),
        34..=53 => Some(ParseVerdict::TruncatedTcp),
        n if n < meta_end => Some(ParseVerdict::TruncatedMetadata),
        _ => None,
    }
}

#[test]
fn truncation_at_every_boundary_pins_the_verdict() {
    let cfg = WireConfig::with_meta_fields(["arrival", "next_hop"]).unwrap();
    let pkt = Packet::new().with("sport", 7).with("arrival", 3);
    let frame = wire::encode(&pkt, &cfg, &FrameSpec::default());
    assert_eq!(frame.len(), 54 + 8, "canonical frame layout changed");
    for len in 0..=frame.len() {
        let got = wire::parse(&frame[..len], &cfg).err();
        assert_eq!(
            got,
            expected_tcp_verdict(len, 2),
            "wrong verdict for a {len}-byte truncation"
        );
    }
}

#[test]
fn truncation_goldens_for_vlan_and_udp_frames() {
    // Tagged frame: bytes 14..18 are the VLAN tag; cutting inside it is
    // its own verdict, distinct from a short Ethernet header.
    let cfg = WireConfig::new();
    let tagged = wire::encode(
        &Packet::new(),
        &cfg,
        &FrameSpec {
            vlan_tci: Some(5),
            ..FrameSpec::default()
        },
    );
    for len in 14..18 {
        assert_eq!(
            wire::parse(&tagged[..len], &cfg).unwrap_err(),
            ParseVerdict::TruncatedVlan,
            "tagged frame cut at {len}"
        );
    }
    // UDP: its 8-byte header has one truncation region (18..26 on an
    // untagged frame is 14 + 20 = 34 .. 42).
    let udp = wire::encode(
        &Packet::new(),
        &cfg,
        &FrameSpec {
            ip_proto: wire::IPPROTO_UDP,
            ..FrameSpec::default()
        },
    );
    for len in 34..42 {
        assert_eq!(
            wire::parse(&udp[..len], &cfg).unwrap_err(),
            ParseVerdict::TruncatedUdp,
            "udp frame cut at {len}"
        );
    }
    assert!(wire::parse(&udp, &cfg).is_ok());
}

#[test]
fn every_truncation_increments_exactly_its_drop_counter() {
    let cfg = WireConfig::with_meta_fields(["arrival", "next_hop"]).unwrap();
    let frame = wire::encode(
        &Packet::new().with("sport", 7).with("arrival", 3),
        &cfg,
        &FrameSpec::default(),
    );

    // Offer every strict truncation of the canonical frame to one switch.
    let cuts: Vec<Vec<u8>> = (0..frame.len()).map(|len| frame[..len].to_vec()).collect();
    let mut sw = Switch::new(
        AtomPipeline::passthrough("in"),
        AtomPipeline::passthrough("out"),
        256,
    );
    let out = sw
        .run_frames(&cuts, &cfg)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    assert!(out.is_empty(), "no truncated frame may be transmitted");

    // The counters must match the per-length goldens exactly.
    let counters = sw.drop_counters();
    for v in ParseVerdict::ALL {
        let expected = (0..frame.len())
            .filter(|&len| expected_tcp_verdict(len, 2) == Some(v))
            .count() as u64;
        assert_eq!(
            counters.get(DropReason::Parse(v)),
            expected,
            "counter for `{v}`"
        );
    }
    assert_eq!(counters.queue_full(), 0);
    assert_eq!(counters.total(), frame.len() as u64);
    assert_eq!(sw.drops(), frame.len() as u64);
}

#[test]
fn garbage_ethertype_bad_ihl_and_bad_offset_goldens() {
    let cfg = WireConfig::new();
    let good = wire::encode(&Packet::new(), &cfg, &FrameSpec::default());

    let mut ipv6 = good.clone();
    ipv6[12] = 0x86;
    ipv6[13] = 0xdd;
    let mut bad_version = good.clone();
    bad_version[14] = 0x65; // version 6, IHL 5
    let mut bad_ihl = good.clone();
    bad_ihl[14] = 0x42;
    let mut bad_doff = good.clone();
    bad_doff[14 + 20 + 12] = 0x30;
    let mut gre = good.clone();
    gre[14 + 9] = 47;

    let frames = [
        (ipv6, ParseVerdict::UnsupportedEthertype),
        (bad_version, ParseVerdict::BadIpVersion),
        (bad_ihl, ParseVerdict::BadIhl),
        (bad_doff, ParseVerdict::BadTcpOffset),
        (gre, ParseVerdict::UnsupportedIpProto),
    ];
    let mut sw = Switch::new(
        AtomPipeline::passthrough("in"),
        AtomPipeline::passthrough("out"),
        256,
    );
    let all: Vec<Vec<u8>> = frames.iter().map(|(f, _)| f.clone()).collect();
    let out = sw
        .run_frames(&all, &cfg)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    assert!(out.is_empty());
    for (frame, verdict) in &frames {
        assert_eq!(wire::parse(frame, &cfg).unwrap_err(), *verdict);
        assert_eq!(
            sw.drop_counters().get(DropReason::Parse(*verdict)),
            1,
            "counter for `{verdict}`"
        );
    }
}

/// A wire switch driven by the map engine and one driven by the slot
/// engine must agree on transmitted bytes *and* per-reason counters under
/// heavily malformed traffic — the parser-stress scenario the bench
/// harness also runs at scale.
#[test]
fn stressed_wire_switches_agree_across_engines() {
    let ingress = pipeline_for(&algorithms::by_name("flowlet").unwrap());
    let egress = AtomPipeline::passthrough("egress");
    let wt = wiregen::wire_trace_for(
        "flowlet",
        2_000,
        SEED,
        &GenOptions {
            malform_rate: 0.25,
            ..GenOptions::default()
        },
    );

    let mut map_sw = Switch::new(ingress.clone(), egress.clone(), 128).with_drain_period(2);
    let map_out = map_sw
        .run_frames(&wt.frames, &wt.cfg)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    let mut slot_sw = Switch::new_slot(&ingress, &egress, 128)
        .unwrap()
        .with_drain_period(2);
    let slot_out = slot_sw
        .run_frames(&wt.frames, &wt.cfg)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");

    assert_eq!(map_out, slot_out, "transmitted bytes diverged");
    assert_eq!(map_sw.drop_counters(), slot_sw.drop_counters());
    assert_eq!(map_sw.transmitted(), slot_sw.transmitted());

    // And the counters agree with the frame-level oracle.
    let (accepted, expected) = wiregen::expected_verdicts(&wt.frames, &wt.cfg);
    for v in ParseVerdict::ALL {
        assert_eq!(
            map_sw.drop_counters().get(DropReason::Parse(v)),
            expected[v.index()]
        );
    }
    assert_eq!(
        map_sw.transmitted() + map_sw.drop_counters().queue_full(),
        accepted
    );
}
