//! E9 — the differential throughput harness: map-based reference engine
//! vs the slot-compiled fast path on large seeded traces, bit-identical
//! outputs asserted, results emitted as `BENCH_throughput.json`.
//!
//! ```text
//! throughput [--smoke] [--packets <n>] [--out <path>]
//!
//!   --smoke        small traces (CI: exercises both engines and the JSON
//!                  emission in a few hundred milliseconds)
//!   --packets <n>  packets for the headline flowlet trace (default 1000000)
//!   --out <path>   where to write the JSON (default BENCH_throughput.json)
//! ```

use bench::throughput::{machine_workload, render_json, switch_workload, Measurement};
use std::process::ExitCode;

const SEED: u64 = 0xD0771_2016;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut smoke = false;
    let mut flowlet_n: Option<usize> = None;
    let mut out_path = "BENCH_throughput.json".to_string();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--packets" => {
                i += 1;
                let v = args.get(i).ok_or("--packets needs a value")?;
                flowlet_n = Some(v.parse().map_err(|_| format!("bad --packets `{v}`"))?);
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).ok_or("--out needs a value")?.clone();
            }
            "--help" | "-h" => {
                println!("throughput [--smoke] [--packets <n>] [--out <path>]");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
        i += 1;
    }

    let (flowlet, hh, codel, switch) = if smoke {
        (20_000, 10_000, 10_000, 5_000)
    } else {
        (1_000_000, 300_000, 300_000, 200_000)
    };
    let flowlet = flowlet_n.unwrap_or(flowlet);

    println!("E9 — execution-engine throughput (every row is a verified differential run)\n");
    let measurements = vec![
        machine_workload("flowlet", flowlet, SEED),
        machine_workload("heavy_hitters", hh, SEED),
        machine_workload("codel_lut", codel, SEED),
        switch_workload(switch, SEED),
    ];

    let rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m: &Measurement| {
            vec![
                m.name.clone(),
                m.packets.to_string(),
                format!("{:.0}", m.map_pps()),
                format!("{:.0}", m.slot_pps()),
                format!("{:.1}x", m.speedup()),
                "yes".to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        bench::render_table(
            &[
                "workload",
                "packets",
                "map pkts/s",
                "slot pkts/s",
                "speedup",
                "identical"
            ],
            &rows
        )
    );

    let doc = render_json(&measurements);
    std::fs::write(&out_path, &doc).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}
