//! # domino-ast — front end of the Domino language
//!
//! Domino (Sivaraman et al., *Packet Transactions: High-Level Programming
//! for Line-Rate Switches*, SIGCOMM 2016) is a C-like DSL for data-plane
//! algorithms. A Domino program declares packet fields, persistent switch
//! state, and exactly one **packet transaction** — a sequential code block
//! with atomic, isolated semantics across packets.
//!
//! This crate provides:
//!
//! * [`lexer`] / [`parser`] — tokenization and recursive-descent parsing,
//!   with targeted diagnostics for the C constructs Domino bans (Table 1),
//! * [`ast`] — the tree shared by the parser and all compiler passes,
//! * [`sema`] — semantic analysis producing a [`sema::CheckedProgram`],
//! * [`intrinsics`] — the hardware-accelerator intrinsic table (`hash2`,
//!   `hash3`, `isqrt`) and their reference implementations,
//! * [`pretty`] — printing programs/statements back to Domino-like source,
//! * [`loc`] — comment-stripping line counting for the paper's Table 4.
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     struct Packet { int sport; int dport; int id; };
//!     int counter = 0;
//!     void count(struct Packet pkt) {
//!         counter = counter + 1;
//!         pkt.id = hash2(pkt.sport, pkt.dport) % 1024;
//!     }
//! "#;
//! let checked = domino_ast::sema::parse_and_check(src).expect("valid program");
//! assert_eq!(checked.name, "count");
//! assert_eq!(checked.state[0].name, "counter");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod intrinsics;
pub mod lexer;
pub mod loc;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::{BinOp, Expr, LValue, Program, Stmt, UnOp};
pub use diag::{Diagnostic, Stage};
pub use parser::{parse, parse_expr};
pub use sema::{check, parse_and_check, CheckedProgram, StateKind, StateVar};
pub use span::Span;
