//! Normalization of update expressions into atom predication trees.
//!
//! The synthesizer's fast path: rewrite each state variable's update
//! expression ([`Sym`]) into the guarded-update normal form that atom
//! templates implement —
//!
//! ```text
//! if (a RELOP b)        // guard: one relational unit, mux-selected operands
//!     x = x ⊕ v         // leaf: one ALU op (write / add / sub / keep)
//! else ...
//! ```
//!
//! The rewrites performed here are exactly the re-parameterizations SKETCH
//! discovers by search in the paper (§4.3): lifting conditionals to the
//! top (mux restructuring), negation elimination via relational inverses,
//! and moving constants across equality guards (`old + 1 == N` ⇒
//! `old == N − 1`). Anything beyond these does not fit the circuits of
//! Table 6 and is rejected — which is the correct all-or-nothing answer,
//! not a limitation of the search.

use crate::sym::{CodeletSpec, Sym};
use banzai::atom::{Guard, GuardOperand, RelOp, StatefulConfig, Tree, Update};
use domino_ast::{BinOp, UnOp};
use domino_ir::Operand;
use std::fmt;

/// Why an update expression does not fit the guarded-update normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalizeError {
    /// Human-readable reason, suitable for the compiler's rejection
    /// diagnostic.
    pub message: String,
}

impl NormalizeError {
    fn new(msg: impl Into<String>) -> Self {
        NormalizeError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for NormalizeError {}

/// Guard against pathological conditional distribution blow-up.
const MAX_NODES: usize = 4096;

/// Normalizes a whole codelet specification into an atom configuration.
pub fn normalize_spec(spec: &CodeletSpec) -> Result<StatefulConfig, NormalizeError> {
    let trees = spec
        .updates
        .iter()
        .enumerate()
        .map(|(i, u)| normalize_update(u, i))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StatefulConfig {
        state_refs: spec.state_refs.clone(),
        trees,
        outputs: spec.outputs.clone(),
    })
}

/// Normalizes one state variable's update expression into a predication
/// tree.
pub fn normalize_update(update: &Sym, var_idx: usize) -> Result<Tree, NormalizeError> {
    let lifted = lift(update.clone(), &mut 0)?;
    to_tree(&lifted, var_idx, &mut Vec::new())
}

fn node_count(s: &Sym) -> usize {
    match s {
        Sym::Field(_) | Sym::Const(_) | Sym::StateOld(_) => 1,
        Sym::Unary(_, e) => 1 + node_count(e),
        Sym::Binary(_, a, b) => 1 + node_count(a) + node_count(b),
        Sym::Ternary(c, t, e) => 1 + node_count(c) + node_count(t) + node_count(e),
    }
}

/// Lifts conditionals to the top of the expression by distributing
/// operators over them: `(c ? t : e) + b  ⇒  c ? (t + b) : (e + b)`.
fn lift(s: Sym, budget: &mut usize) -> Result<Sym, NormalizeError> {
    *budget += node_count(&s);
    if *budget > MAX_NODES {
        return Err(NormalizeError::new(
            "update expression explodes during conditional distribution; \
             it cannot fit a bounded-depth atom",
        ));
    }
    Ok(match s {
        Sym::Field(_) | Sym::Const(_) | Sym::StateOld(_) => s,
        Sym::Unary(op, e) => {
            let e = lift(*e, budget)?;
            if let Sym::Ternary(c, t, els) = e {
                Sym::Ternary(
                    c,
                    Box::new(lift(Sym::Unary(op, t), budget)?),
                    Box::new(lift(Sym::Unary(op, els), budget)?),
                )
            } else {
                Sym::Unary(op, Box::new(e))
            }
        }
        Sym::Binary(op, a, b) => {
            let a = lift(*a, budget)?;
            let b = lift(*b, budget)?;
            if let Sym::Ternary(c, t, e) = a {
                let then = Sym::Binary(op, t, Box::new(b.clone()));
                let els = Sym::Binary(op, e, Box::new(b));
                Sym::Ternary(
                    c,
                    Box::new(lift(then, budget)?),
                    Box::new(lift(els, budget)?),
                )
            } else if let Sym::Ternary(c, t, e) = b {
                let then = Sym::Binary(op, Box::new(a.clone()), t);
                let els = Sym::Binary(op, Box::new(a), e);
                Sym::Ternary(
                    c,
                    Box::new(lift(then, budget)?),
                    Box::new(lift(els, budget)?),
                )
            } else {
                Sym::Binary(op, Box::new(a), Box::new(b))
            }
        }
        Sym::Ternary(c, t, e) => {
            // The guard is extracted as a relation, not distributed.
            Sym::Ternary(c, Box::new(lift(*t, budget)?), Box::new(lift(*e, budget)?))
        }
    })
}

/// Converts a conditional-at-top expression into a tree.
///
/// `assumptions` records the truth value of every ancestor guard. Inside a
/// branch, occurrences of an ancestor's condition fold to that value —
/// this is how chained `else if` code (whose hoisted condition temporaries
/// textually embed the earlier conditions) regains its natural decision
/// tree. SKETCH obtains the same effect from purely semantic search; here
/// it is a syntactic rule.
fn to_tree(
    s: &Sym,
    var_idx: usize,
    assumptions: &mut Vec<(Sym, bool)>,
) -> Result<Tree, NormalizeError> {
    let s = simplify_under(s, assumptions);
    match s {
        Sym::Ternary(c, t, e) => {
            // Constant guards fold statically.
            if let Sym::Const(v) = c.as_ref() {
                return to_tree(if *v != 0 { &t } else { &e }, var_idx, assumptions);
            }
            // Identical branches collapse (no predication needed).
            if t == e {
                return to_tree(&t, var_idx, assumptions);
            }
            let guard = guard_of(&c)?;
            assumptions.push(((*c).clone(), true));
            let then = to_tree(&t, var_idx, assumptions);
            assumptions.pop();
            let then = then?;
            assumptions.push(((*c).clone(), false));
            let els = to_tree(&e, var_idx, assumptions);
            assumptions.pop();
            let els = els?;
            Ok(Tree::Branch {
                guard,
                then: Box::new(then),
                els: Box::new(els),
            })
        }
        other => Ok(Tree::Leaf(leaf_of(&other, var_idx)?)),
    }
}

/// Rebuilds `s` bottom-up, replacing any subexpression structurally equal
/// to an assumed ancestor guard with its known truth value, then folding
/// the constants this exposes.
fn simplify_under(s: &Sym, assumptions: &[(Sym, bool)]) -> Sym {
    let rebuilt = match s {
        Sym::Field(_) | Sym::Const(_) | Sym::StateOld(_) => s.clone(),
        Sym::Unary(op, e) => Sym::Unary(*op, Box::new(simplify_under(e, assumptions))),
        Sym::Binary(op, a, b) => Sym::Binary(
            *op,
            Box::new(simplify_under(a, assumptions)),
            Box::new(simplify_under(b, assumptions)),
        ),
        Sym::Ternary(c, t, e) => Sym::Ternary(
            Box::new(simplify_under(c, assumptions)),
            Box::new(simplify_under(t, assumptions)),
            Box::new(simplify_under(e, assumptions)),
        ),
    };
    if let Some((_, v)) = assumptions.iter().find(|(a, _)| *a == rebuilt) {
        return Sym::Const(*v as i32);
    }
    match rebuilt {
        Sym::Unary(op, e) => match *e {
            Sym::Const(v) => Sym::Const(op.eval(v)),
            e => Sym::Unary(op, Box::new(e)),
        },
        Sym::Binary(op, a, b) => match (*a, *b) {
            (Sym::Const(x), Sym::Const(y)) => Sym::Const(op.eval(x, y)),
            (a, b) => Sym::Binary(op, Box::new(a), Box::new(b)),
        },
        Sym::Ternary(c, t, e) => match *c {
            Sym::Const(v) => {
                if v != 0 {
                    *t
                } else {
                    *e
                }
            }
            c => {
                if t == e {
                    *t
                } else {
                    Sym::Ternary(Box::new(c), t, e)
                }
            }
        },
        other => other,
    }
}

/// Extracts a single-relation guard from a condition expression.
fn guard_of(c: &Sym) -> Result<Guard, NormalizeError> {
    match c {
        Sym::Field(f) => Ok(Guard {
            op: RelOp::Ne,
            lhs: GuardOperand::Field(f.clone()),
            rhs: GuardOperand::Const(0),
        }),
        Sym::StateOld(i) => Ok(Guard {
            op: RelOp::Ne,
            lhs: GuardOperand::State(*i),
            rhs: GuardOperand::Const(0),
        }),
        Sym::Unary(UnOp::Not, inner) => {
            let g = guard_of(inner)?;
            Ok(Guard {
                op: g.op.negated(),
                lhs: g.lhs,
                rhs: g.rhs,
            })
        }
        Sym::Binary(op, a, b) if op.is_relational() => {
            let rel = relop_of(*op);
            // Direct case: both operands are leaves.
            if let (Some(l), Some(r)) = (guard_operand(a), guard_operand(b)) {
                return Ok(Guard {
                    op: rel,
                    lhs: l,
                    rhs: r,
                });
            }
            // Equality rewrites: move a constant offset across `==`/`!=`
            // (sound under wrapping arithmetic because x ↦ x + c is a
            // bijection; *not* sound for ordered relations, which we
            // therefore reject — as would SKETCH's exhaustive check).
            if matches!(rel, RelOp::Eq | RelOp::Ne) {
                if let (Some((x, c)), Sym::Const(k)) = (linear_offset(a), b.as_ref()) {
                    return Ok(Guard {
                        op: rel,
                        lhs: x,
                        rhs: GuardOperand::Const(k.wrapping_sub(c)),
                    });
                }
                if let (Sym::Const(k), Some((x, c))) = (a.as_ref(), linear_offset(b)) {
                    return Ok(Guard {
                        op: rel,
                        lhs: GuardOperand::Const(k.wrapping_sub(c)),
                        rhs: x,
                    });
                }
            }
            Err(NormalizeError::new(format!(
                "guard `{c}` is not a single relational operation over packet \
                 fields, constants, and atom state; precompute it into a packet \
                 field in an earlier stage if it is stateless"
            )))
        }
        other => Err(NormalizeError::new(format!(
            "guard `{other}` is not expressible by an atom's relational unit"
        ))),
    }
}

/// `x + c` / `x - c` / `c + x` with `x` a leaf → `(x, c)`.
fn linear_offset(s: &Sym) -> Option<(GuardOperand, i32)> {
    match s {
        Sym::Binary(BinOp::Add, a, b) => match (guard_operand(a), b.as_ref()) {
            (Some(x), Sym::Const(c)) => Some((x, *c)),
            _ => match (a.as_ref(), guard_operand(b)) {
                (Sym::Const(c), Some(x)) => Some((x, *c)),
                _ => None,
            },
        },
        Sym::Binary(BinOp::Sub, a, b) => match (guard_operand(a), b.as_ref()) {
            (Some(x), Sym::Const(c)) => Some((x, c.wrapping_neg())),
            _ => None,
        },
        _ => None,
    }
}

fn relop_of(op: BinOp) -> RelOp {
    match op {
        BinOp::Lt => RelOp::Lt,
        BinOp::Gt => RelOp::Gt,
        BinOp::Le => RelOp::Le,
        BinOp::Ge => RelOp::Ge,
        BinOp::Eq => RelOp::Eq,
        BinOp::Ne => RelOp::Ne,
        _ => unreachable!("caller checked is_relational"),
    }
}

fn guard_operand(s: &Sym) -> Option<GuardOperand> {
    match s {
        Sym::Field(f) => Some(GuardOperand::Field(f.clone())),
        Sym::Const(c) => Some(GuardOperand::Const(*c)),
        Sym::StateOld(i) => Some(GuardOperand::State(*i)),
        _ => None,
    }
}

fn update_operand(s: &Sym) -> Option<Operand> {
    match s {
        Sym::Field(f) => Some(Operand::Field(f.clone())),
        Sym::Const(c) => Some(Operand::Const(*c)),
        _ => None,
    }
}

/// Extracts a single-ALU update from a conditional-free expression.
fn leaf_of(s: &Sym, var_idx: usize) -> Result<Update, NormalizeError> {
    match s {
        Sym::StateOld(i) if *i == var_idx => Ok(Update::Keep),
        Sym::StateOld(_) => Err(NormalizeError::new(
            "cross-variable assignment (x = y) is not supported by any atom; \
             route the value through a packet field in an earlier stage",
        )),
        Sym::Field(_) | Sym::Const(_) => Ok(Update::Write(update_operand(s).unwrap())),
        Sym::Binary(BinOp::Add, a, b) => {
            if matches!(a.as_ref(), Sym::StateOld(i) if *i == var_idx) {
                if let Some(v) = update_operand(b) {
                    return Ok(Update::Add(v));
                }
            }
            if matches!(b.as_ref(), Sym::StateOld(i) if *i == var_idx) {
                if let Some(v) = update_operand(a) {
                    return Ok(Update::Add(v));
                }
            }
            Err(too_complex(s))
        }
        Sym::Binary(BinOp::Sub, a, b) => {
            if matches!(a.as_ref(), Sym::StateOld(i) if *i == var_idx) {
                if let Some(v) = update_operand(b) {
                    return Ok(Update::Sub(v));
                }
            }
            Err(too_complex(s))
        }
        other => Err(too_complex(other)),
    }
}

fn too_complex(s: &Sym) -> NormalizeError {
    NormalizeError::new(format!(
        "update `{s}` does not fit a single-ALU atom update \
         (x = v, x = x + v, or x = x - v with v a packet field or constant); \
         compute stateless subexpressions into packet fields in earlier stages"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fld(n: &str) -> Sym {
        Sym::Field(n.into())
    }
    fn cst(v: i32) -> Sym {
        Sym::Const(v)
    }
    fn old() -> Sym {
        Sym::StateOld(0)
    }
    fn bin(op: BinOp, a: Sym, b: Sym) -> Sym {
        Sym::Binary(op, Box::new(a), Box::new(b))
    }
    fn tern(c: Sym, t: Sym, e: Sym) -> Sym {
        Sym::Ternary(Box::new(c), Box::new(t), Box::new(e))
    }

    #[test]
    fn plain_increment_is_depth_zero_add() {
        let tree = normalize_update(&bin(BinOp::Add, old(), cst(1)), 0).unwrap();
        assert_eq!(tree, Tree::Leaf(Update::Add(Operand::Const(1))));
    }

    #[test]
    fn reversed_operands_still_add() {
        let tree = normalize_update(&bin(BinOp::Add, fld("size"), old()), 0).unwrap();
        assert_eq!(tree, Tree::Leaf(Update::Add(Operand::Field("size".into()))));
    }

    #[test]
    fn write_and_keep_leaves() {
        assert_eq!(
            normalize_update(&cst(0), 0).unwrap(),
            Tree::Leaf(Update::Write(Operand::Const(0)))
        );
        assert_eq!(
            normalize_update(&old(), 0).unwrap(),
            Tree::Leaf(Update::Keep)
        );
    }

    #[test]
    fn guarded_update_becomes_branch() {
        // tmp2 ? new_hop : old   (flowlet saved_hop)
        let tree = normalize_update(&tern(fld("tmp2"), fld("new_hop"), old()), 0).unwrap();
        let Tree::Branch { guard, then, els } = tree else {
            panic!()
        };
        assert_eq!(guard.to_string(), "pkt.tmp2 != 0");
        assert_eq!(
            *then,
            Tree::Leaf(Update::Write(Operand::Field("new_hop".into())))
        );
        assert_eq!(*els, Tree::Leaf(Update::Keep));
    }

    #[test]
    fn wraparound_counter_normalizes() {
        // (old < 99) ? old + 1 : 0
        let tree = normalize_update(
            &tern(
                bin(BinOp::Lt, old(), cst(99)),
                bin(BinOp::Add, old(), cst(1)),
                cst(0),
            ),
            0,
        )
        .unwrap();
        assert_eq!(tree.depth(), 1);
        let Tree::Branch { guard, .. } = &tree else {
            panic!()
        };
        assert_eq!(guard.to_string(), "state[0] < 99");
    }

    #[test]
    fn equality_constant_rewrite() {
        // (old + 1 == 30) ? 0 : old + 1  — sampled-NetFlow shape: SKETCH
        // finds the equivalent parameterization old == 29.
        let update = tern(
            bin(BinOp::Eq, bin(BinOp::Add, old(), cst(1)), cst(30)),
            cst(0),
            bin(BinOp::Add, old(), cst(1)),
        );
        let tree = normalize_update(&update, 0).unwrap();
        let Tree::Branch { guard, .. } = &tree else {
            panic!()
        };
        assert_eq!(guard.to_string(), "state[0] == 29");
    }

    #[test]
    fn subtraction_offset_rewrite() {
        // old - 1 != 5  ⇒  old != 6
        let update = tern(
            bin(BinOp::Ne, bin(BinOp::Sub, old(), cst(1)), cst(5)),
            cst(0),
            old(),
        );
        let tree = normalize_update(&update, 0).unwrap();
        let Tree::Branch { guard, .. } = &tree else {
            panic!()
        };
        assert_eq!(guard.to_string(), "state[0] != 6");
    }

    #[test]
    fn ordered_offset_guard_rejected() {
        // (old + 1 > 30) is NOT rewritten (unsound under wrapping).
        let update = tern(
            bin(BinOp::Gt, bin(BinOp::Add, old(), cst(1)), cst(30)),
            cst(0),
            old(),
        );
        let err = normalize_update(&update, 0).unwrap_err();
        assert!(err.message.contains("not a single relational"), "{err}");
    }

    #[test]
    fn negated_guard_flips_relation() {
        // !(a > 5) ? 1 : old  ⇒  guard a <= 5
        let update = tern(
            Sym::Unary(UnOp::Not, Box::new(bin(BinOp::Gt, fld("a"), cst(5)))),
            cst(1),
            old(),
        );
        let tree = normalize_update(&update, 0).unwrap();
        let Tree::Branch { guard, .. } = &tree else {
            panic!()
        };
        assert_eq!(guard.to_string(), "pkt.a <= 5");
    }

    #[test]
    fn ternary_inside_operand_is_lifted() {
        // old + (cond ? 1 : 2)  ⇒  cond ? old + 1 : old + 2
        let update = bin(BinOp::Add, old(), tern(fld("cond"), cst(1), cst(2)));
        let tree = normalize_update(&update, 0).unwrap();
        assert_eq!(tree.depth(), 1);
        let Tree::Branch { then, els, .. } = &tree else {
            panic!()
        };
        assert_eq!(**then, Tree::Leaf(Update::Add(Operand::Const(1))));
        assert_eq!(**els, Tree::Leaf(Update::Add(Operand::Const(2))));
    }

    #[test]
    fn constant_guard_folds() {
        let update = tern(cst(1), bin(BinOp::Add, old(), cst(4)), cst(0));
        assert_eq!(
            normalize_update(&update, 0).unwrap(),
            Tree::Leaf(Update::Add(Operand::Const(4)))
        );
    }

    #[test]
    fn identical_branches_collapse() {
        let update = tern(fld("c"), old(), old());
        assert_eq!(
            normalize_update(&update, 0).unwrap(),
            Tree::Leaf(Update::Keep)
        );
    }

    #[test]
    fn two_operand_update_rejected() {
        // old + a - b: needs two ALU inputs.
        let update = bin(BinOp::Sub, bin(BinOp::Add, old(), fld("a")), fld("b"));
        let err = normalize_update(&update, 0).unwrap_err();
        assert!(err.message.contains("single-ALU"), "{err}");
    }

    #[test]
    fn const_minus_state_rejected() {
        let update = bin(BinOp::Sub, cst(100), old());
        assert!(normalize_update(&update, 0).is_err());
    }

    #[test]
    fn multiply_on_state_rejected() {
        // x = x * x — the paper's canonical unmappable codelet (§4.3).
        let update = bin(BinOp::Mul, old(), old());
        let err = normalize_update(&update, 0).unwrap_err();
        assert!(err.message.contains("does not fit"), "{err}");
    }

    #[test]
    fn cross_variable_write_rejected() {
        let err = normalize_update(&Sym::StateOld(1), 0).unwrap_err();
        assert!(err.message.contains("cross-variable"), "{err}");
    }

    #[test]
    fn nested_two_level_tree() {
        // p1 ? (p2 ? x+1 : x) : 0
        let update = tern(
            fld("p1"),
            tern(fld("p2"), bin(BinOp::Add, old(), cst(1)), old()),
            cst(0),
        );
        let tree = normalize_update(&update, 0).unwrap();
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn guards_may_reference_other_state_vars() {
        // CONGA: best_path update guarded by best_util comparison.
        let update = tern(
            bin(BinOp::Lt, fld("util"), Sym::StateOld(0)),
            fld("path_id"),
            Sym::StateOld(1),
        );
        let tree = normalize_update(&update, 1).unwrap();
        let Tree::Branch { guard, .. } = &tree else {
            panic!()
        };
        assert!(guard.reads_state());
        assert_eq!(guard.to_string(), "pkt.util < state[0]");
    }
}
