//! Scheduling-invariant golden suite for the programmable scheduler
//! (`banzai::pifo`, experiment E13).
//!
//! A Domino transaction computes each packet's *rank*; the configured
//! [`SchedSpec`] turns ranks into departure order. These goldens pin the
//! observable scheduling behaviour of that split on both the serial
//! [`Switch`] and the multi-core [`ShardedSwitch`] (which must be
//! bit-identical to serial):
//!
//! * **WFQ fairness** — `stfq` ranks drain a backlogged burst
//!   byte-by-byte fair: on a maximally unfair (flow-major) arrival
//!   order, every pair of still-backlogged flows stays within one
//!   maximum packet of each other at every departure;
//! * **strict priority exactness** — under `Priority{class, rank}` no
//!   packet ever departs before a co-resident packet of a lower class;
//! * **shaping departure times** — the token-bucket pacer's
//!   earliest-departure ranks are enforced as actual departure *cycles*,
//!   pinned exactly;
//! * **hierarchical composition** — the priority-over-WFQ PIFO tree
//!   equals the flat `(class, rank, arrival)` stable-sort oracle, with
//!   overflow counted under the pinned `sched_full` reason.
//!
//! Like `tests/drop_reasons.rs`, pinned vectors are append-only: a
//! failure here means the scheduler's exported behaviour moved.

use algorithms::sched;
use banzai::{AtomPipeline, SchedDeparture, SchedSpec, ShardConfig, ShardedSwitch, Switch, Target};
use domino_ir::Packet;

const SEED: u64 = 0x0913_F012_2016;

/// One maximum-size packet (trace lengths are drawn from 64..1500): the
/// fairness slack WFQ is allowed.
const MAX_PKT: i32 = 1500;

fn compile(source: &str, kind: banzai::AtomKind) -> AtomPipeline {
    domino_compiler::compile(source, &Target::banzai(kind)).unwrap()
}

fn stfq_pipeline() -> AtomPipeline {
    let a = algorithms::by_name("stfq").unwrap();
    compile(a.source, a.paper.least_atom.unwrap())
}

fn pacer_pipeline() -> AtomPipeline {
    compile(sched::PACER_SOURCE, banzai::AtomKind::Nested)
}

/// A stateful egress whose outputs depend on the exact departure order
/// and times (prefix sums of sojourn): any scheduling divergence between
/// serial and sharded runs shows up in `sum` and in exported state.
const SOJOURN_EGRESS: &str = "struct P { int enq_ts; int now; int qdepth; int soj; int sum; };\n\
                              int total_sojourn = 0;\n\
                              void sojourn(struct P pkt) {\n\
                                pkt.soj = pkt.now - pkt.enq_ts;\n\
                                total_sojourn = total_sojourn + pkt.soj;\n\
                                pkt.sum = total_sojourn;\n\
                              }";

fn sojourn_egress() -> AtomPipeline {
    compile(SOJOURN_EGRESS, banzai::AtomKind::Raw)
}

/// Runs the same sched trace serial and 4-way sharded, asserts the
/// sharded run is bit-identical (departures, counters, egress state),
/// and returns the serial departures.
fn serial_and_sharded(
    label: &str,
    ingress: &AtomPipeline,
    egress: &AtomPipeline,
    spec: SchedSpec,
    capacity: usize,
    trace: &[Packet],
) -> Vec<SchedDeparture> {
    let mut serial = Switch::new_slot(ingress, egress, capacity)
        .unwrap()
        .with_scheduler(spec.clone());
    let serial_out = serial
        .run(trace)
        .scheduled()
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");

    let cfg = ShardConfig::new(4)
        .with_capacity(capacity)
        .with_scheduler(spec);
    let mut sharded = ShardedSwitch::new_slot(ingress, egress, cfg).unwrap();
    let sharded_out = sharded.run(trace).scheduled().collect().unwrap();

    assert_eq!(
        sharded_out, serial_out,
        "{label}: sharded departures diverged from serial"
    );
    assert_eq!(sharded.transmitted(), serial.transmitted(), "{label}");
    assert_eq!(
        sharded.drop_counters(),
        serial.drop_counters().clone(),
        "{label}: drop counters diverged"
    );
    assert_eq!(
        sharded.export_sched_egress_state().expect("sched ran"),
        serial.export_egress_state(),
        "{label}: egress state diverged"
    );
    serial_out
}

#[test]
fn wfq_fairness_within_one_max_packet_on_adversarial_interleaving() {
    // Flow-major arrival order: all of flow 0's packets, then flow 1's…
    // — the most unfair arrival order there is. All virtual times are 0,
    // so stfq's `start` rank is each flow's cumulative byte count and a
    // rank-ordered drain must interleave the flows byte-fairly.
    const FLOWS: usize = 6;
    const PER_FLOW: usize = 40;
    let trace = sched::backlogged_burst(FLOWS, PER_FLOW, SEED);
    let deps = serial_and_sharded(
        "wfq",
        &stfq_pipeline(),
        &sojourn_egress(),
        SchedSpec::Pifo {
            rank: "start".into(),
        },
        trace.len(),
        &trace,
    );
    assert_eq!(deps.len(), trace.len(), "lossless at full capacity");

    let mut served = [0i64; FLOWS]; // bytes transmitted so far
    let mut remaining = [PER_FLOW; FLOWS];
    for d in &deps {
        let flow = d.pkt.expect("flow") as usize;
        served[flow] += i64::from(d.pkt.expect("length"));
        remaining[flow] -= 1;
        // Every pair of flows that both still have packets queued must
        // be within one maximum packet of each other — the SFQ bound.
        for a in 0..FLOWS {
            for b in (a + 1)..FLOWS {
                if remaining[a] > 0 && remaining[b] > 0 {
                    assert!(
                        (served[a] - served[b]).abs() <= i64::from(MAX_PKT),
                        "after departure of arrival {}: flow {a} served {} vs \
                         flow {b} served {} — more than one max packet apart",
                        d.arrival,
                        served[a],
                        served[b],
                    );
                }
            }
        }
    }
}

#[test]
fn strict_priority_is_exact_and_wfq_within_class() {
    let trace = sched::classed_stfq_trace(300, 3, SEED);
    let deps = serial_and_sharded(
        "priority",
        &stfq_pipeline(),
        &sojourn_egress(),
        SchedSpec::Priority {
            class: "class".into(),
            rank: "start".into(),
        },
        trace.len(),
        &trace,
    );
    assert_eq!(deps.len(), trace.len());

    // All packets are co-resident (one burst), so priority is absolute:
    // classes depart in nondecreasing order, ranks nondecreasing within
    // a class, arrival order breaking rank ties.
    for w in deps.windows(2) {
        assert!(
            (w[0].key, w[0].arrival) < (w[1].key, w[1].arrival),
            "departure order must be strictly increasing in \
             (class, rank, arrival): {:?} then {:?}",
            (w[0].key, w[0].arrival),
            (w[1].key, w[1].arrival),
        );
    }
    // The key the scheduler used is exactly what the transaction wrote.
    for d in &deps {
        assert_eq!(d.key.class, i64::from(d.pkt.expect("class")));
        assert_eq!(d.key.rank, i64::from(d.pkt.expect("start")));
    }
}

#[test]
fn shaping_departure_cycles_are_pinned_to_the_pacer_ranks() {
    // Hand-built burst, GAP = 8 (see pacer.domino). Bucket math:
    //   i  flow  at   next_send before   dl (rank)
    //   0   0    10         0            10
    //   1   0    11        18            18
    //   2   0    12        26            26
    //   3   1    13         0            13
    //   4   1    14        21            21
    //   5   0    15        34            34
    let arrivals: [(i32, i32); 6] = [(0, 10), (0, 11), (0, 12), (1, 13), (1, 14), (0, 15)];
    let trace: Vec<Packet> = arrivals
        .iter()
        .map(|&(flow, at)| {
            Packet::new()
                .with("flow", flow)
                .with("at", at)
                .with("dl", 0)
        })
        .collect();

    let deps = serial_and_sharded(
        "shaping",
        &pacer_pipeline(),
        &sojourn_egress(),
        SchedSpec::Shaping { rank: "dl".into() },
        trace.len(),
        &trace,
    );

    // Pinned: pops in rank order, link idles until each head's rank.
    let order: Vec<i64> = deps.iter().map(|d| d.arrival).collect();
    assert_eq!(order, [0, 3, 1, 4, 2, 5], "rank order of departures");
    let cycles: Vec<i64> = deps.iter().map(|d| d.departure).collect();
    assert_eq!(
        cycles,
        [10, 13, 18, 21, 26, 34],
        "programmed departure cycles"
    );

    // The shaping invariants behind the pin: never before the rank, and
    // per-flow spacing at least GAP.
    let mut last_dep: std::collections::BTreeMap<i32, i64> = Default::default();
    for d in &deps {
        assert!(d.departure >= d.key.rank, "departed before its EDT");
        let flow = d.pkt.expect("flow");
        if let Some(prev) = last_dep.insert(flow, d.departure) {
            assert!(
                d.departure - prev >= i64::from(sched::PACER_GAP),
                "flow {flow} released {prev} then {} — under GAP",
                d.departure
            );
        }
    }
}

#[test]
fn hierarchical_pifo_matches_flat_composite_sort_with_sched_full_overflow() {
    const N: usize = 100;
    const CAPACITY: usize = 64;
    let trace = sched::classed_stfq_trace(N, 3, SEED ^ 0xA5);
    let spec = SchedSpec::Priority {
        class: "class".into(),
        rank: "start".into(),
    };

    let deps = serial_and_sharded(
        "hier-overflow",
        &stfq_pipeline(),
        &sojourn_egress(),
        spec.clone(),
        CAPACITY,
        &trace,
    );

    // Burst admission is by occupancy: exactly the first CAPACITY
    // arrivals enter the PIFO tree; the rest drop under sched_full.
    assert_eq!(deps.len(), CAPACITY);
    let admitted: Vec<i64> = {
        let mut v: Vec<i64> = deps.iter().map(|d| d.arrival).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(admitted, (0..CAPACITY as i64).collect::<Vec<_>>());

    // Oracle: the hierarchical PIFO (root over classes, WFQ leaves)
    // must equal a flat stable sort of the admitted prefix by
    // (class, rank, arrival). Ranks are what the transaction computes,
    // so replay the ingress program over the admitted prefix (state
    // evolution depends only on the arrival-order prefix).
    let mut replay = banzai::Machine::new(stfq_pipeline());
    let mut oracle: Vec<(i64, i64, i64)> = trace[..CAPACITY]
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let key = spec.key_of(&replay.process(p.clone()));
            (key.class, key.rank, i as i64)
        })
        .collect();
    oracle.sort_unstable();
    let got: Vec<(i64, i64, i64)> = deps
        .iter()
        .map(|d| (d.key.class, d.key.rank, d.arrival))
        .collect();
    assert_eq!(got, oracle, "PIFO-of-PIFOs != flat composite-key sort");

    // The overflow is typed: sched_full, not queue_full.
    let mut serial = Switch::new_slot(&stfq_pipeline(), &sojourn_egress(), CAPACITY)
        .unwrap()
        .with_scheduler(spec);
    let out = serial
        .run(&trace)
        .scheduled()
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    assert_eq!(out.len(), CAPACITY);
    assert_eq!(serial.drop_counters().sched_full(), (N - CAPACITY) as u64);
    assert_eq!(serial.drop_counters().queue_full(), 0);
}
