//! Streaming ingestion: pull-based packet and frame sources.
//!
//! Every run entry point used to take a fully materialized `&[Packet]`
//! slice, capping runs at whatever trace fits in memory. This module is
//! the bounded-memory replacement: a [`PacketSource`] is a fallible,
//! pull-based iterator of packets (with a byte-level [`FrameSource`]
//! twin), and the switch entry points ([`Switch::run`],
//! [`ShardedSwitch::run`]) pull from a source through the existing
//! bounded batch machinery instead of indexing a slice — memory stays
//! O(batch × shards) for arbitrarily long runs, with outputs optionally
//! streamed to a sink rather than collected.
//!
//! The layering:
//!
//! * [`PacketSource`] / [`FrameSource`] — the pull traits. `next_*`
//!   returns `Ok(Some(..))` per item, `Ok(None)` at end of stream, and
//!   `Err(SourceError)` when ingestion itself fails (a torn capture
//!   file, a dead NIC ring). A source failure is a first-class fault:
//!   the run drains everything already admitted and returns
//!   [`SwitchError::Fault`](crate::error::SwitchError::Fault) with
//!   closed [`Accounting`](crate::error::Accounting) books.
//! * [`Rewind`] — the multi-rep bench hook: rewindable sources
//!   ([`SliceSource`], [`GenSource`]) restart from the first item so a
//!   benchmark can replay the identical stream without re-materializing
//!   it.
//! * [`IntoPacketSource`] / [`IntoFrameSource`] — conversions so the
//!   run builders accept `&[Packet]` / `&Vec<Packet>` slices (the
//!   migration path for every old call site) as well as any source.
//! * Concrete sources — [`SliceSource`]/[`FrameSliceSource`] (borrowed
//!   slices, rewindable, exact size hints), [`GenSource`]/
//!   [`FrameGenSource`] (closure generators: O(1) memory for
//!   multi-million-packet runs), and [`FailAfter`] (a fault-injection
//!   wrapper that errors mid-stream, for the chaos suite).
//!
//! The pcap/pcapng replay reader in `bench::pcap` implements
//! [`FrameSource`] on top of this layer, so real capture files drive
//! the wire path end-to-end.
//!
//! [`Switch::run`]: crate::switch::Switch::run
//! [`ShardedSwitch::run`]: crate::shard::ShardedSwitch::run

use domino_ir::Packet;
use std::fmt;

/// An ingestion failure: the source could not produce its next item.
///
/// Distinct from [`SwitchError`](crate::error::SwitchError) — a source
/// error happens *upstream* of the switch, and the run machinery
/// converts it into a fault report with exact packet accounting rather
/// than propagating it raw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    msg: String,
}

impl SourceError {
    /// A source error carrying a human-readable cause.
    pub fn new(msg: impl Into<String>) -> SourceError {
        SourceError { msg: msg.into() }
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SourceError {}

/// Statistics of one streamed run: what was pulled and what was
/// delivered. Drop counters live on the switch itself
/// ([`Switch::drop_counters`](crate::switch::Switch::drop_counters)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Packets (or frames) successfully pulled from the source.
    pub offered: u64,
    /// Packets (or frames) delivered to the caller's sink.
    pub transmitted: u64,
}

/// A pull-based source of packets — the streaming replacement for
/// `&[Packet]` traces.
///
/// The contract mirrors a fused iterator, with errors: `next_packet`
/// yields `Ok(Some(..))` per packet in arrival order, `Ok(None)` once at
/// end of stream (the run machinery never calls it again afterwards),
/// and `Err` if ingestion fails mid-stream. Sources are pulled one
/// packet per simulated arrival cycle, so a source *is* the arrival
/// process.
pub trait PacketSource {
    /// Pulls the next packet, `Ok(None)` at end of stream.
    fn next_packet(&mut self) -> Result<Option<Packet>, SourceError>;

    /// `(lower, upper)` bounds on the packets remaining, iterator-style.
    /// Used only for pre-allocation; `(0, None)` is always correct.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// A pull-based source of raw byte frames — the wire-path twin of
/// [`PacketSource`], feeding `parse → pipeline → deparse` runs.
///
/// `next_frame` returns a borrow of the source's internal buffer, so a
/// file reader (the pcap replay in `bench::pcap`) re-uses one buffer for
/// the whole run instead of allocating per frame.
pub trait FrameSource {
    /// Pulls the next frame, `Ok(None)` at end of stream. The returned
    /// slice is valid until the next call.
    fn next_frame(&mut self) -> Result<Option<&[u8]>, SourceError>;

    /// `(lower, upper)` bounds on the frames remaining.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// A source that can restart from its first item — the multi-rep bench
/// hook: criterion-style harnesses replay the identical stream each
/// repetition without re-materializing it.
///
/// Implementations must reproduce the same item sequence after a
/// rewind; for [`GenSource`] that means the generator closure must be a
/// pure function of the index it is handed.
pub trait Rewind {
    /// Restarts the source from its first item.
    fn rewind(&mut self);
}

/// A [`PacketSource`] over a borrowed slice: rewindable, exact size
/// hint, clones one packet per pull (exactly what the slice-based entry
/// points always did).
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    items: &'a [Packet],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice.
    pub fn new(items: &'a [Packet]) -> SliceSource<'a> {
        SliceSource { items, pos: 0 }
    }
}

impl PacketSource for SliceSource<'_> {
    fn next_packet(&mut self) -> Result<Option<Packet>, SourceError> {
        match self.items.get(self.pos) {
            Some(p) => {
                self.pos += 1;
                Ok(Some(p.clone()))
            }
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.items.len() - self.pos;
        (left, Some(left))
    }
}

impl Rewind for SliceSource<'_> {
    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// A [`PacketSource`] generating packets from a closure of the arrival
/// index — O(1) memory however long the run: the 10M-packet streaming
/// workload (EXPERIMENTS.md E14) is a `GenSource`.
///
/// The closure returns `None` to end the stream (or never, for an
/// unbounded source the run bounds by other means). [`Rewind`] resets
/// the index to 0; the replayed stream is identical iff the closure is
/// a pure function of the index.
#[derive(Debug, Clone)]
pub struct GenSource<F> {
    f: F,
    next: u64,
    len: Option<u64>,
}

impl<F: FnMut(u64) -> Option<Packet>> GenSource<F> {
    /// A generator with no length hint (ends when `f` returns `None`).
    pub fn new(f: F) -> GenSource<F> {
        GenSource {
            f,
            next: 0,
            len: None,
        }
    }

    /// A generator that ends after `len` packets (whichever of the cap
    /// and the closure's own `None` comes first), with an exact hint.
    pub fn with_len(len: u64, f: F) -> GenSource<F> {
        GenSource {
            f,
            next: 0,
            len: Some(len),
        }
    }
}

impl<F: FnMut(u64) -> Option<Packet>> PacketSource for GenSource<F> {
    fn next_packet(&mut self) -> Result<Option<Packet>, SourceError> {
        if self.len.is_some_and(|n| self.next >= n) {
            return Ok(None);
        }
        match (self.f)(self.next) {
            Some(p) => {
                self.next += 1;
                Ok(Some(p))
            }
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.len {
            Some(n) => {
                let left = n.saturating_sub(self.next) as usize;
                (left, Some(left))
            }
            None => (0, None),
        }
    }
}

impl<F> Rewind for GenSource<F> {
    fn rewind(&mut self) {
        self.next = 0;
    }
}

/// A [`FrameSource`] over a borrowed slice of frames.
#[derive(Debug, Clone)]
pub struct FrameSliceSource<'a, F: AsRef<[u8]>> {
    items: &'a [F],
    pos: usize,
}

impl<'a, F: AsRef<[u8]>> FrameSliceSource<'a, F> {
    /// Wraps a slice of frames.
    pub fn new(items: &'a [F]) -> FrameSliceSource<'a, F> {
        FrameSliceSource { items, pos: 0 }
    }
}

impl<F: AsRef<[u8]>> FrameSource for FrameSliceSource<'_, F> {
    fn next_frame(&mut self) -> Result<Option<&[u8]>, SourceError> {
        match self.items.get(self.pos) {
            Some(f) => {
                self.pos += 1;
                Ok(Some(f.as_ref()))
            }
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.items.len() - self.pos;
        (left, Some(left))
    }
}

impl<F: AsRef<[u8]>> Rewind for FrameSliceSource<'_, F> {
    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// A [`FrameSource`] generating frames from a closure of the arrival
/// index, buffer-reusing like a capture reader.
#[derive(Debug, Clone)]
pub struct FrameGenSource<F> {
    f: F,
    next: u64,
    buf: Vec<u8>,
}

impl<F: FnMut(u64) -> Option<Vec<u8>>> FrameGenSource<F> {
    /// A frame generator (ends when `f` returns `None`).
    pub fn new(f: F) -> FrameGenSource<F> {
        FrameGenSource {
            f,
            next: 0,
            buf: Vec::new(),
        }
    }
}

impl<F: FnMut(u64) -> Option<Vec<u8>>> FrameSource for FrameGenSource<F> {
    fn next_frame(&mut self) -> Result<Option<&[u8]>, SourceError> {
        match (self.f)(self.next) {
            Some(frame) => {
                self.next += 1;
                self.buf = frame;
                Ok(Some(&self.buf))
            }
            None => Ok(None),
        }
    }
}

impl<F> Rewind for FrameGenSource<F> {
    fn rewind(&mut self) {
        self.next = 0;
    }
}

/// A fault-injection wrapper: yields the inner source's first `fail_at`
/// items, then fails with a [`SourceError`] — the chaos suite's model of
/// an ingestion path that dies mid-stream (torn capture file, dead NIC
/// ring).
///
/// Wraps packet and frame sources alike.
#[derive(Debug, Clone)]
pub struct FailAfter<S> {
    inner: S,
    yielded: u64,
    fail_at: u64,
    msg: String,
}

impl<S> FailAfter<S> {
    /// Fails after `fail_at` successful pulls, with `msg` as the cause.
    pub fn new(inner: S, fail_at: u64, msg: impl Into<String>) -> FailAfter<S> {
        FailAfter {
            inner,
            yielded: 0,
            fail_at,
            msg: msg.into(),
        }
    }
}

impl<S: PacketSource> PacketSource for FailAfter<S> {
    fn next_packet(&mut self) -> Result<Option<Packet>, SourceError> {
        if self.yielded >= self.fail_at {
            return Err(SourceError::new(self.msg.clone()));
        }
        let item = self.inner.next_packet()?;
        if item.is_some() {
            self.yielded += 1;
        }
        Ok(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<S: FrameSource> FrameSource for FailAfter<S> {
    fn next_frame(&mut self) -> Result<Option<&[u8]>, SourceError> {
        if self.yielded >= self.fail_at {
            return Err(SourceError::new(self.msg.clone()));
        }
        let item = self.inner.next_frame()?;
        if item.is_some() {
            self.yielded += 1;
        }
        Ok(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Conversion into a [`PacketSource`] — what the run builders accept.
///
/// Implemented by every source (identity) and by `&[Packet]` /
/// `&Vec<Packet>` (wrapped in a [`SliceSource`]), so
/// `switch.run(&trace)` keeps working on materialized traces.
pub trait IntoPacketSource {
    /// The source this converts into.
    type Source: PacketSource;

    /// Performs the conversion.
    fn into_packet_source(self) -> Self::Source;
}

impl<S: PacketSource> IntoPacketSource for S {
    type Source = S;

    fn into_packet_source(self) -> S {
        self
    }
}

impl<'a> IntoPacketSource for &'a [Packet] {
    type Source = SliceSource<'a>;

    fn into_packet_source(self) -> SliceSource<'a> {
        SliceSource::new(self)
    }
}

impl<'a> IntoPacketSource for &'a Vec<Packet> {
    type Source = SliceSource<'a>;

    fn into_packet_source(self) -> SliceSource<'a> {
        SliceSource::new(self)
    }
}

/// Conversion into a [`FrameSource`] — the byte-level twin of
/// [`IntoPacketSource`].
pub trait IntoFrameSource {
    /// The source this converts into.
    type Source: FrameSource;

    /// Performs the conversion.
    fn into_frame_source(self) -> Self::Source;
}

impl<S: FrameSource> IntoFrameSource for S {
    type Source = S;

    fn into_frame_source(self) -> S {
        self
    }
}

impl<'a, F: AsRef<[u8]>> IntoFrameSource for &'a [F] {
    type Source = FrameSliceSource<'a, F>;

    fn into_frame_source(self) -> FrameSliceSource<'a, F> {
        FrameSliceSource::new(self)
    }
}

impl<'a, F: AsRef<[u8]>> IntoFrameSource for &'a Vec<F> {
    type Source = FrameSliceSource<'a, F>;

    fn into_frame_source(self) -> FrameSliceSource<'a, F> {
        FrameSliceSource::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_yields_in_order_with_exact_hint() {
        let trace: Vec<Packet> = (0..5).map(|i| Packet::new().with("seq", i)).collect();
        let mut src = SliceSource::new(&trace);
        assert_eq!(src.size_hint(), (5, Some(5)));
        let mut got = Vec::new();
        while let Some(p) = src.next_packet().unwrap() {
            got.push(p);
        }
        assert_eq!(got, trace);
        assert_eq!(src.size_hint(), (0, Some(0)));
        // Fused: keeps returning None.
        assert_eq!(src.next_packet().unwrap(), None);
        src.rewind();
        assert_eq!(src.next_packet().unwrap().unwrap().get("seq"), Some(0));
    }

    #[test]
    fn gen_source_bounded_and_rewindable() {
        let mut src = GenSource::with_len(3, |i| Some(Packet::new().with("i", i as i32)));
        assert_eq!(src.size_hint(), (3, Some(3)));
        let mut n = 0;
        while src.next_packet().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        src.rewind();
        assert_eq!(src.next_packet().unwrap().unwrap().get("i"), Some(0));
    }

    #[test]
    fn fail_after_errors_midstream() {
        let trace: Vec<Packet> = (0..10).map(|i| Packet::new().with("seq", i)).collect();
        let mut src = FailAfter::new(SliceSource::new(&trace), 4, "ring died");
        for _ in 0..4 {
            assert!(src.next_packet().unwrap().is_some());
        }
        let err = src.next_packet().unwrap_err();
        assert_eq!(err.message(), "ring died");
        assert!(err.to_string().contains("ring died"));
    }

    #[test]
    fn frame_sources_yield_borrowed_frames() {
        let frames: Vec<Vec<u8>> = vec![vec![1, 2], vec![3]];
        let mut src = FrameSliceSource::new(&frames);
        assert_eq!(src.next_frame().unwrap(), Some(&[1u8, 2][..]));
        assert_eq!(src.next_frame().unwrap(), Some(&[3u8][..]));
        assert_eq!(src.next_frame().unwrap(), None);

        let mut gen = FrameGenSource::new(|i| if i < 2 { Some(vec![i as u8; 3]) } else { None });
        assert_eq!(gen.next_frame().unwrap(), Some(&[0u8, 0, 0][..]));
        assert_eq!(gen.next_frame().unwrap(), Some(&[1u8, 1, 1][..]));
        assert_eq!(gen.next_frame().unwrap(), None);
    }
}
