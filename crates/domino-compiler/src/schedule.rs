//! Pipelining step 3 — critical-path scheduling (§4.2).
//!
//! Schedules the condensed SCC DAG into pipeline stages: a codelet runs in
//! the stage after the latest of its predecessors (as-soon-as-possible
//! scheduling, equivalent to critical-path scheduling when every codelet
//! costs one stage). The result is the PVSM codelet pipeline — Figure 3b
//! without resource or computational limits applied yet.

use crate::depgraph::DepGraph;
use domino_ir::{Codelet, PvsmPipeline, TacStmt};

/// Schedules TAC statements into a PVSM codelet pipeline.
pub fn schedule(stmts: &[TacStmt]) -> PvsmPipeline {
    if stmts.is_empty() {
        return PvsmPipeline::default();
    }
    let graph = DepGraph::build(stmts);
    let sccs = graph.sccs();
    let (_, dag) = graph.condense(&sccs);

    // Longest-path level per SCC over the DAG (ASAP schedule).
    let n = sccs.len();
    let mut indeg = vec![0usize; n];
    for vs in &dag {
        for &w in vs {
            indeg[w] += 1;
        }
    }
    let mut level = vec![0usize; n];
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut processed = 0;
    while let Some(v) = queue.pop() {
        processed += 1;
        for &w in &dag[v] {
            level[w] = level[w].max(level[v] + 1);
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    debug_assert_eq!(processed, n, "condensed graph must be acyclic");

    let depth = level.iter().copied().max().unwrap_or(0) + 1;
    let mut stages: Vec<Vec<Codelet>> = vec![Vec::new(); depth];
    // SCCs are already ordered by minimum statement index, which keeps
    // within-stage ordering deterministic and source-like.
    for (id, comp) in sccs.iter().enumerate() {
        let body: Vec<TacStmt> = comp.iter().map(|&i| stmts[i].clone()).collect();
        stages[level[id]].push(Codelet::new(body));
    }
    PvsmPipeline { stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ast::BinOp;
    use domino_ir::{Operand, StateRef, TacRhs};

    fn fld(n: &str) -> Operand {
        Operand::Field(n.into())
    }

    #[test]
    fn empty_program_is_empty_pipeline() {
        let p = schedule(&[]);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn independent_statements_share_stage_one() {
        let tac = vec![
            TacStmt::Assign {
                dst: "a".into(),
                rhs: TacRhs::Copy(fld("x")),
            },
            TacStmt::Assign {
                dst: "b".into(),
                rhs: TacRhs::Copy(fld("y")),
            },
        ];
        let p = schedule(&tac);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.stages[0].len(), 2);
    }

    #[test]
    fn chain_spreads_across_stages() {
        let tac = vec![
            TacStmt::Assign {
                dst: "a".into(),
                rhs: TacRhs::Copy(fld("x")),
            },
            TacStmt::Assign {
                dst: "b".into(),
                rhs: TacRhs::Binary(BinOp::Add, fld("a"), Operand::Const(1)),
            },
            TacStmt::Assign {
                dst: "c".into(),
                rhs: TacRhs::Binary(BinOp::Add, fld("b"), Operand::Const(1)),
            },
        ];
        let p = schedule(&tac);
        assert_eq!(p.depth(), 3);
        assert!(p.stages.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn state_codelet_is_one_unit() {
        let tac = vec![
            TacStmt::ReadState {
                dst: "c0".into(),
                state: StateRef::Scalar("c".into()),
            },
            TacStmt::Assign {
                dst: "c1".into(),
                rhs: TacRhs::Binary(BinOp::Add, fld("c0"), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("c".into()),
                src: fld("c1"),
            },
        ];
        let p = schedule(&tac);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.stages[0].len(), 1);
        assert_eq!(p.stages[0][0].stmts.len(), 3);
        assert!(!p.stages[0][0].is_stateless());
    }

    #[test]
    fn flowlet_schedules_to_six_stages_like_figure3b() {
        // The Figure 8 TAC (same as the depgraph test).
        let tac = vec![
            TacStmt::Assign {
                dst: "id0".into(),
                rhs: TacRhs::Intrinsic {
                    name: "hash2".into(),
                    args: vec![fld("sport"), fld("dport")],
                    modulo: Some(8000),
                },
            },
            TacStmt::ReadState {
                dst: "saved_hop0".into(),
                state: StateRef::Array {
                    name: "saved_hop".into(),
                    index: fld("id0"),
                },
            },
            TacStmt::ReadState {
                dst: "last_time0".into(),
                state: StateRef::Array {
                    name: "last_time".into(),
                    index: fld("id0"),
                },
            },
            TacStmt::Assign {
                dst: "new_hop0".into(),
                rhs: TacRhs::Intrinsic {
                    name: "hash3".into(),
                    args: vec![fld("sport"), fld("dport"), fld("arrival")],
                    modulo: Some(10),
                },
            },
            TacStmt::Assign {
                dst: "tmp".into(),
                rhs: TacRhs::Binary(BinOp::Sub, fld("arrival"), fld("last_time0")),
            },
            TacStmt::Assign {
                dst: "tmp2".into(),
                rhs: TacRhs::Binary(BinOp::Gt, fld("tmp"), Operand::Const(5)),
            },
            TacStmt::Assign {
                dst: "next_hop0".into(),
                rhs: TacRhs::Ternary(fld("tmp2"), fld("new_hop0"), fld("saved_hop1")),
            },
            TacStmt::Assign {
                dst: "saved_hop1".into(),
                rhs: TacRhs::Ternary(fld("tmp2"), fld("new_hop0"), fld("saved_hop0")),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "saved_hop".into(),
                    index: fld("id0"),
                },
                src: fld("saved_hop1"),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "last_time".into(),
                    index: fld("id0"),
                },
                src: fld("arrival"),
            },
        ];
        let p = schedule(&tac);
        // Stage 1: hash2, hash3 — Stage 2: last_time codelet — Stage 3: tmp
        // — Stage 4: tmp2 — Stage 5: saved_hop codelet — Stage 6: next_hop.
        assert_eq!(p.depth(), 6, "\n{p}");
        assert_eq!(p.max_width(), 2, "\n{p}");
        assert_eq!(p.max_stateful_width(), 1, "\n{p}");
        // Stage 2 holds the last_time read+write codelet.
        assert!(!p.stages[1][0].is_stateless());
        assert_eq!(p.stages[1][0].stmts.len(), 2);
        // Stage 5 holds the saved_hop codelet (read + ternary + write).
        let stage5 = &p.stages[4][0];
        assert_eq!(stage5.stmts.len(), 3);
        assert_eq!(
            stage5.state_vars().into_iter().collect::<Vec<_>>(),
            vec!["saved_hop"]
        );
        // Stage 6: the next_hop output ternary.
        assert!(p.stages[5][0].is_stateless());
    }
}
