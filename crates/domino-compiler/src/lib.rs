//! # domino-compiler — packet transactions to Banzai atom pipelines
//!
//! The three-phase compiler of §4 (Figure 4):
//!
//! 1. **Normalization** (§4.1): [`branch_removal`] (Figure 5),
//!    [`state_flank`] (Figure 6), [`ssa`] (Figure 7), [`tac_flatten`]
//!    (Figure 8), plus the [`cleanup`] (copy propagation / dead code)
//!    visible in the paper's figures.
//! 2. **Pipelining** (§4.2): [`depgraph`] (Figure 9) and [`schedule`]
//!    produce the PVSM codelet pipeline.
//! 3. **Code generation** (§4.3): [`codegen`] maps codelets onto a
//!    concrete [`banzai::Target`] using program synthesis
//!    ([`atom_synth`]), enforcing resource limits.
//!
//! Compilation is **all-or-nothing**: [`compile`] returns a pipeline
//! guaranteed to run at line rate on the target, or a diagnostic
//! explaining exactly which codelet or limit failed.
//!
//! ```
//! use banzai::{AtomKind, Target};
//!
//! let src = r#"
//!     struct Packet { int sport; int dport; int id; };
//!     int count = 0;
//!     void tally(struct Packet pkt) {
//!         pkt.id = hash2(pkt.sport, pkt.dport) % 1024;
//!         count = count + 1;
//!     }
//! "#;
//! let pipeline = domino_compiler::compile(src, &Target::banzai(AtomKind::Raw)).unwrap();
//! assert_eq!(pipeline.max_stateful_kind(), Some(AtomKind::Raw));
//!
//! // The same program cannot run on a Write-only machine:
//! assert!(domino_compiler::compile(src, &Target::banzai(AtomKind::Write)).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_removal;
pub mod cleanup;
pub mod codegen;
pub mod depgraph;
pub mod fresh;
pub mod policy;
pub mod schedule;
pub mod ssa;
pub mod state_flank;
pub mod tac_flatten;

use banzai::machine::AtomPipeline;
use banzai::Target;
use domino_ast::diag::{Diagnostic, Stage};
use domino_ast::{CheckedProgram, StateVar};
use domino_ir::{PvsmPipeline, TacProgram};
use std::collections::BTreeSet;

pub use branch_removal::Assign;

/// Every intermediate artifact of a compilation, for golden tests,
/// debugging, and the `domc --emit` flags.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The checked program (post-sema AST).
    pub checked: CheckedProgram,
    /// After branch removal (Figure 5).
    pub straightline: Vec<Assign>,
    /// After state-flank rewriting (Figure 6).
    pub flanked: Vec<Assign>,
    /// After SSA conversion (Figure 7).
    pub ssa: Vec<Assign>,
    /// Normalized three-address code (Figure 8), post cleanup.
    pub tac: TacProgram,
    /// The PVSM codelet pipeline (Figure 9 + scheduling).
    pub pvsm: PvsmPipeline,
    /// Deparser view: declared field → internal field with final value.
    pub output_map: Vec<(String, String)>,
}

impl Compilation {
    /// Renders a statement list (one of the AST-level artifacts) as text.
    pub fn render_assigns(stmts: &[Assign]) -> String {
        let mut out = String::new();
        for a in stmts {
            out.push_str(&format!(
                "{} = {};\n",
                domino_ast::pretty::lvalue_to_string(&a.lhs),
                a.rhs
            ));
        }
        out
    }
}

/// Runs the front end and all normalization + pipelining passes
/// (everything target-independent).
pub fn normalize(source: &str) -> Result<Compilation, Diagnostic> {
    let checked = domino_ast::parse_and_check(source)?;
    normalize_checked(checked)
}

/// Like [`normalize`], starting from a checked program.
pub fn normalize_checked(checked: CheckedProgram) -> Result<Compilation, Diagnostic> {
    let mut fresh = fresh::FreshNames::new(
        checked
            .packet_fields
            .iter()
            .cloned()
            .chain(checked.state.iter().map(|s| s.name.clone())),
    );

    let straightline = branch_removal::remove_branches(&checked.body, &mut fresh);
    let (flanked, _flanks) = state_flank::rewrite_state_ops(&straightline, &checked, &mut fresh)
        .map_err(|e| Diagnostic::global(Stage::Transform, e.message))?;
    let ssa_result = ssa::to_ssa(&flanked, &mut fresh);
    let tac_stmts = tac_flatten::flatten(&ssa_result.stmts, &mut fresh)
        .map_err(|e| Diagnostic::global(Stage::Transform, e.message))?;

    // Deparser view: each declared field maps to its final SSA version
    // (identity for never-assigned input fields).
    let output_map: Vec<(String, String)> = checked
        .packet_fields
        .iter()
        .filter_map(|f| {
            ssa_result
                .final_version
                .get(f)
                .map(|v| (f.clone(), v.clone()))
        })
        .collect();
    let output_roots: BTreeSet<String> = output_map
        .iter()
        .map(|(_, internal)| internal.clone())
        .collect();

    let tac_stmts = cleanup::cleanup(tac_stmts, &output_roots);
    let tac = TacProgram {
        name: checked.name.clone(),
        declared_fields: checked.packet_fields.clone(),
        state: checked.state.clone(),
        stmts: tac_stmts,
    };
    let pvsm = schedule::schedule(&tac.stmts);

    Ok(Compilation {
        checked,
        straightline,
        flanked,
        ssa: ssa_result.stmts,
        tac,
        pvsm,
        output_map,
    })
}

/// Compiles a Domino source program for a Banzai target (all-or-nothing).
pub fn compile(source: &str, target: &Target) -> Result<AtomPipeline, Diagnostic> {
    let compilation = normalize(source)?;
    lower(&compilation, target)
}

/// Compiles a checked program for a Banzai target.
pub fn compile_checked(
    checked: CheckedProgram,
    target: &Target,
) -> Result<AtomPipeline, Diagnostic> {
    let compilation = normalize_checked(checked)?;
    lower(&compilation, target)
}

/// Decides whether a normalized program's state indexing is
/// shard-partitionable — the validation behind `banzai`'s sharded switch
/// and `domc --emit flow-key`.
///
/// Returns the extracted [`Partitionability`](domino_ir::Partitionability)
/// witness — a flow key, a replica spec for commutative sketch state
/// (`heavy_hitters.domino`'s differently-hashed count-min rows, merged
/// elementwise at collect time), or "stateless" — or the human-readable
/// reason the sharded switch will fall back to a single shard. The
/// fallback diagnostic names both rejections: why the state is not
/// exactly partitionable (a scalar (global) register as in `rcp.domino`,
/// a state-dependent index) *and* why it is not replicable either.
///
/// ```
/// let flowlet = std::fs::read_to_string(
///     concat!(env!("CARGO_MANIFEST_DIR"), "/../algorithms/src/domino/flowlet.domino"),
/// )
/// .unwrap();
/// let c = domino_compiler::normalize(&flowlet).unwrap();
/// let domino_ir::Partitionability::Keyed(spec) = domino_compiler::flow_key(&c).unwrap()
/// else {
///     panic!("flowlet keys its state");
/// };
/// assert_eq!(spec.modulus(), 8000);
/// assert_eq!(spec.roots(), ["dport".to_string(), "sport".to_string()]);
/// ```
pub fn flow_key(compilation: &Compilation) -> Result<domino_ir::Partitionability, String> {
    domino_ir::StateLayout::from_decls(&compilation.checked.state).flow_key(&compilation.tac.stmts)
}

/// Lowers an already-normalized compilation onto a target.
pub fn lower(compilation: &Compilation, target: &Target) -> Result<AtomPipeline, Diagnostic> {
    let state_decls: Vec<StateVar> = compilation.checked.state.clone();
    let pipeline = codegen::generate(
        &compilation.checked.name,
        &compilation.pvsm,
        target,
        state_decls,
        compilation.checked.packet_fields.clone(),
        compilation.output_map.clone(),
    )?;
    // The field-layout pass must accept everything this compiler emits:
    // validating here means every compiled pipeline is guaranteed
    // slot-executable, so downstream users can unwrap the fast path.
    banzai::SlotPipeline::lower(&pipeline).map_err(|e| {
        Diagnostic::global(
            Stage::CodeGen,
            format!("internal error: compiled pipeline has no slot layout: {e}"),
        )
    })?;
    Ok(pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzai::{AtomKind, Machine};
    use domino_ir::{run_ast, Packet, StateStore};

    const FLOWLET: &str = r#"
#define NUM_FLOWLETS 8000
#define THRESHOLD 5
#define NUM_HOPS 10
struct Packet { int sport; int dport; int new_hop; int arrival; int next_hop; int id; };
int last_time[NUM_FLOWLETS] = {0};
int saved_hop[NUM_FLOWLETS] = {0};
void flowlet(struct Packet pkt) {
  pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;
  pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;
  if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {
    saved_hop[pkt.id] = pkt.new_hop;
  }
  last_time[pkt.id] = pkt.arrival;
  pkt.next_hop = saved_hop[pkt.id];
}
"#;

    #[test]
    fn flowlet_compiles_to_six_stage_praw_pipeline() {
        let target = Target::banzai(AtomKind::Praw);
        let pipeline = compile(FLOWLET, &target).unwrap();
        assert_eq!(pipeline.depth(), 6, "\n{pipeline}");
        assert_eq!(pipeline.max_atoms_per_stage(), 2, "\n{pipeline}");
        assert_eq!(pipeline.max_stateful_kind(), Some(AtomKind::Praw));
    }

    #[test]
    fn flowlet_rejected_on_raw_target() {
        let err = compile(FLOWLET, &Target::banzai(AtomKind::Raw)).unwrap_err();
        assert!(err.message.contains("cannot run at line rate"), "{err}");
    }

    #[test]
    fn compiled_flowlet_matches_reference_interpreter() {
        let target = Target::banzai(AtomKind::Pairs);
        let compilation = normalize(FLOWLET).unwrap();
        let pipeline = lower(&compilation, &target).unwrap();
        let mut machine = Machine::new(pipeline);

        // Reference: serial AST interpretation.
        let mut ref_state = StateStore::from_decls(&compilation.checked.state);

        let mk = |sport: i32, dport: i32, arrival: i32| {
            Packet::new()
                .with("sport", sport)
                .with("dport", dport)
                .with("arrival", arrival)
                .with("new_hop", 0)
                .with("next_hop", 0)
                .with("id", 0)
        };
        let trace: Vec<Packet> = (0..200).map(|i| mk(i % 7, 80 + (i % 3), i * 2)).collect();

        let expected = run_ast(&compilation.checked, &mut ref_state, &trace);
        let got = machine.run_trace(&trace);
        let fields = compilation.checked.packet_fields.clone();
        for (e, g) in expected.iter().zip(&got) {
            assert_eq!(e.project(&fields), g.project(&fields));
        }
    }

    #[test]
    fn pipelined_execution_matches_serial_for_flowlet() {
        let target = Target::banzai(AtomKind::Pairs);
        let pipeline = compile(FLOWLET, &target).unwrap();
        let trace: Vec<Packet> = (0..100)
            .map(|i| {
                Packet::new()
                    .with("sport", i % 5)
                    .with("dport", 443)
                    .with("arrival", i * 3)
                    .with("new_hop", 0)
                    .with("next_hop", 0)
                    .with("id", 0)
            })
            .collect();
        let mut m1 = Machine::new(pipeline.clone());
        let mut m2 = Machine::new(pipeline);
        assert_eq!(m1.run_trace(&trace), m2.run_trace_pipelined(&trace));
    }

    #[test]
    fn flow_key_accepts_flowlet_and_rejects_global_registers() {
        let c = normalize(FLOWLET).unwrap();
        let domino_ir::Partitionability::Keyed(spec) = flow_key(&c).unwrap() else {
            panic!("flowlet state is keyed");
        };
        assert_eq!(spec.key_field(), "id0");
        assert_eq!(spec.modulus(), 8000);
        assert_eq!(spec.roots(), ["dport".to_string(), "sport".to_string()]);

        let rcp = "struct P { int size_bytes; };\nint total = 0;\n\
                   void rcp(struct P pkt) { total = total + pkt.size_bytes; }";
        let err = flow_key(&normalize(rcp).unwrap()).unwrap_err();
        assert!(err.contains("scalar state `total`"), "{err}");
    }

    #[test]
    fn flow_key_agrees_between_tac_and_compiled_pipeline() {
        // The sharded switch re-derives the key from the pipeline's atom
        // codelets; it must match the compiler's TAC-level answer.
        let c = normalize(FLOWLET).unwrap();
        let tac_spec = match flow_key(&c).unwrap() {
            domino_ir::Partitionability::Keyed(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        let pipeline = lower(&c, &Target::banzai(AtomKind::Pairs)).unwrap();
        let stmts: Vec<domino_ir::TacStmt> = pipeline
            .stages
            .iter()
            .flatten()
            .flat_map(|a| a.codelet.stmts.iter().cloned())
            .collect();
        let part = domino_ir::StateLayout::from_decls(&pipeline.state_decls)
            .flow_key(&stmts)
            .unwrap();
        let domino_ir::Partitionability::Keyed(pipe_spec) = part else {
            panic!("pipeline state is keyed");
        };
        assert_eq!(tac_spec.key_field(), pipe_spec.key_field());
        assert_eq!(tac_spec.modulus(), pipe_spec.modulus());
        assert_eq!(tac_spec.roots(), pipe_spec.roots());
    }

    #[test]
    fn lex_parse_sema_errors_propagate() {
        let target = Target::banzai(AtomKind::Pairs);
        assert_eq!(compile("@", &target).unwrap_err().stage, Stage::Lex);
        assert_eq!(
            compile("struct P { int a; };", &target).unwrap_err().stage,
            Stage::Parse
        );
        assert_eq!(
            compile(
                "struct P { int a; };\nvoid f(struct P pkt) { pkt.b = 1; }",
                &target
            )
            .unwrap_err()
            .stage,
            Stage::Sema
        );
    }

    #[test]
    fn stateless_only_program_compiles_on_weakest_target() {
        let src = "struct P { int a; int b; int r; };\n\
                   void f(struct P pkt) { pkt.r = pkt.a + pkt.b; }";
        let pipeline = compile(src, &Target::banzai(AtomKind::Write)).unwrap();
        assert_eq!(pipeline.depth(), 1);
        assert_eq!(pipeline.max_stateful_kind(), None);
    }

    #[test]
    fn empty_transaction_compiles_to_empty_pipeline() {
        let src = "struct P { int a; };\nvoid f(struct P pkt) { }";
        let pipeline = compile(src, &Target::banzai(AtomKind::Write)).unwrap();
        assert_eq!(pipeline.depth(), 0);
        // And the machine passes packets through unchanged.
        let mut m = Machine::new(pipeline);
        let p = Packet::new().with("a", 9);
        assert_eq!(m.process(p.clone()), p);
    }

    #[test]
    fn output_map_restores_declared_fields() {
        // pkt.r is assigned twice; the machine must expose the final value
        // under the declared name.
        let src = "struct P { int a; int r; };\n\
                   void f(struct P pkt) { pkt.r = pkt.a; pkt.r = pkt.r + 1; }";
        let pipeline = compile(src, &Target::banzai(AtomKind::Write)).unwrap();
        let mut m = Machine::new(pipeline);
        let out = m.process(Packet::new().with("a", 10).with("r", 0));
        assert_eq!(out.get("r"), Some(11));
    }

    #[test]
    fn artifacts_are_all_populated() {
        let c = normalize(FLOWLET).unwrap();
        assert!(!c.straightline.is_empty());
        assert!(!c.flanked.is_empty());
        assert!(!c.ssa.is_empty());
        assert!(!c.tac.stmts.is_empty());
        assert_eq!(c.pvsm.depth(), 6);
        assert!(c.output_map.iter().any(|(d, _)| d == "next_hop"));
    }
}
