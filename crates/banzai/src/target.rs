//! Compiler targets: concrete Banzai machines (§5.2).
//!
//! A target fixes (a) the stateful atom kind available in every stage, (b)
//! the single stateless atom's operation set, (c) resource limits (pipeline
//! depth, atoms per stage), and (d) which intrinsics have hardware
//! accelerators. The paper's seven targets each pair one stateful atom of
//! Table 3 with the stateless atom, 32 stages, ~300 stateless and ~10
//! stateful atoms per stage.

use crate::kind::AtomKind;
use domino_ast::BinOp;
use domino_ir::TacRhs;
use std::collections::BTreeSet;
use std::fmt;

/// A concrete Banzai machine the compiler can target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// Human-readable target name (e.g. `banzai-praw`).
    pub name: String,
    /// The stateful atom kind available in every stage.
    pub stateful_kind: AtomKind,
    /// Number of pipeline stages (the paper assumes 32, like RMT).
    pub pipeline_depth: usize,
    /// Stateless atoms per stage (~300 in the paper's area budget).
    pub stateless_per_stage: usize,
    /// Stateful atoms per stage (~10: memory-bank limited, §5.2).
    pub stateful_per_stage: usize,
    /// Intrinsics with hardware accelerators (hash units).
    pub intrinsics: BTreeSet<String>,
    /// Functions provided by the optional look-up-table unit (§5.3 future
    /// work: "a look-up table abstraction that allows us to approximate
    /// such mathematical functions"). Empty on baseline targets.
    pub lut_functions: BTreeSet<String>,
}

impl Target {
    /// The paper's standard target for a given stateful atom kind: 32
    /// stages, 300 stateless + 10 stateful atoms per stage, hash
    /// accelerators, no LUT.
    pub fn banzai(kind: AtomKind) -> Target {
        Target {
            name: format!("banzai-{}", kind.short_name()),
            stateful_kind: kind,
            pipeline_depth: 32,
            stateless_per_stage: 300,
            stateful_per_stage: 10,
            intrinsics: ["hash2", "hash3"].iter().map(|s| s.to_string()).collect(),
            lut_functions: BTreeSet::new(),
        }
    }

    /// The X1 extension target: like [`Target::banzai`] but with a
    /// look-up-table unit approximating `isqrt`, which lets CoDel map
    /// (§5.3).
    pub fn banzai_with_lut(kind: AtomKind) -> Target {
        let mut t = Target::banzai(kind);
        t.name = format!("banzai-{}-lut", kind.short_name());
        t.lut_functions.insert("isqrt".to_string());
        t.lut_functions.insert("codel_gap".to_string());
        t
    }

    /// All seven standard targets, least to most expressive.
    pub fn all_standard() -> Vec<Target> {
        AtomKind::ALL.iter().map(|k| Target::banzai(*k)).collect()
    }

    /// True if the named intrinsic has an accelerator (hash unit or LUT) on
    /// this target.
    pub fn has_intrinsic(&self, name: &str) -> bool {
        self.intrinsics.contains(name) || self.lut_functions.contains(name)
    }

    /// Checks that a stateless right-hand side is within the stateless
    /// atom's operation set (§5.2: "simple arithmetic (add, subtract, left
    /// shift, right shift), logical (and, or, xor), relational, or
    /// conditional operations"; any operand may be a constant).
    ///
    /// Returns a human-readable reason when the operation is *not*
    /// supported — multiplication, division, and modulo have no single-cycle
    /// combinational implementation at line rate, so the all-or-nothing
    /// compiler rejects them.
    pub fn check_stateless_rhs(&self, rhs: &TacRhs) -> Result<(), String> {
        match rhs {
            TacRhs::Copy(_) | TacRhs::Ternary(..) => Ok(()),
            // Unary ops map to the binary units: -x = 0 - x, !x = (x == 0),
            // ~x = x ^ -1.
            TacRhs::Unary(..) => Ok(()),
            TacRhs::Binary(op, _, _) => match op {
                BinOp::Mul | BinOp::Div | BinOp::Mod => Err(format!(
                    "`{}` is not a line-rate operation: the stateless atom \
                     supports add/sub/shift/and/or/xor/relational/conditional \
                     only (use shifts for powers of two, or fold `%` into a \
                     hash intrinsic)",
                    op.symbol()
                )),
                _ => Ok(()),
            },
            TacRhs::Intrinsic { name, .. } => {
                if self.has_intrinsic(name) {
                    Ok(())
                } else {
                    Err(format!(
                        "target `{}` has no hardware unit for intrinsic `{name}`",
                        self.name
                    ))
                }
            }
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (stateful atom: {}, {} stages, {}+{} atoms/stage)",
            self.name,
            self.stateful_kind,
            self.pipeline_depth,
            self.stateless_per_stage,
            self.stateful_per_stage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ir::Operand;

    fn fld(n: &str) -> Operand {
        Operand::Field(n.into())
    }

    #[test]
    fn standard_targets_cover_all_kinds() {
        let ts = Target::all_standard();
        assert_eq!(ts.len(), 7);
        assert_eq!(ts[0].stateful_kind, AtomKind::Write);
        assert_eq!(ts[6].stateful_kind, AtomKind::Pairs);
        assert!(ts.iter().all(|t| t.pipeline_depth == 32));
    }

    #[test]
    fn stateless_atom_accepts_paper_ops() {
        let t = Target::banzai(AtomKind::Write);
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::BitAnd,
            BinOp::BitOr,
            BinOp::BitXor,
            BinOp::Ge,
            BinOp::Le,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Gt,
            BinOp::And,
            BinOp::Or,
        ] {
            assert!(
                t.check_stateless_rhs(&TacRhs::Binary(op, fld("a"), fld("b")))
                    .is_ok(),
                "{op:?}"
            );
        }
        assert!(t
            .check_stateless_rhs(&TacRhs::Ternary(fld("c"), fld("a"), fld("b")))
            .is_ok());
        assert!(t.check_stateless_rhs(&TacRhs::Copy(fld("a"))).is_ok());
    }

    #[test]
    fn stateless_atom_rejects_mul_div_mod() {
        let t = Target::banzai(AtomKind::Pairs);
        for op in [BinOp::Mul, BinOp::Div, BinOp::Mod] {
            let err = t
                .check_stateless_rhs(&TacRhs::Binary(op, fld("a"), fld("b")))
                .unwrap_err();
            assert!(err.contains("not a line-rate operation"), "{err}");
        }
    }

    #[test]
    fn hash_intrinsics_available_isqrt_not() {
        let t = Target::banzai(AtomKind::Pairs);
        assert!(t
            .check_stateless_rhs(&TacRhs::Intrinsic {
                name: "hash2".into(),
                args: vec![fld("a"), fld("b")],
                modulo: Some(64),
            })
            .is_ok());
        let err = t
            .check_stateless_rhs(&TacRhs::Intrinsic {
                name: "isqrt".into(),
                args: vec![fld("a")],
                modulo: None,
            })
            .unwrap_err();
        assert!(err.contains("no hardware unit"), "{err}");
    }

    #[test]
    fn lut_target_provides_isqrt() {
        let t = Target::banzai_with_lut(AtomKind::Pairs);
        assert!(t
            .check_stateless_rhs(&TacRhs::Intrinsic {
                name: "isqrt".into(),
                args: vec![fld("a")],
                modulo: None,
            })
            .is_ok());
        assert_eq!(t.name, "banzai-pairs-lut");
    }

    #[test]
    fn display_summarizes() {
        let t = Target::banzai(AtomKind::Praw);
        let text = t.to_string();
        assert!(text.contains("banzai-praw"), "{text}");
        assert!(text.contains("32 stages"), "{text}");
    }
}
