//! RTL emission across the whole algorithm suite: every stateful atom the
//! compiler synthesizes for the Table 4 programs must emit a
//! well-structured Verilog module (one register block, one clocked
//! process, every packet operand a port).

use banzai::{AtomRole, Target};
use hardware_model::emit_verilog;

#[test]
fn every_synthesized_atom_emits_verilog() {
    let mut modules = 0;
    for algo in algorithms::TABLE4.iter() {
        let Some(kind) = algo.paper.least_atom else {
            continue;
        };
        let pipeline = domino_compiler::compile(algo.source, &Target::banzai(kind)).unwrap();
        for (si, stage) in pipeline.stages.iter().enumerate() {
            for (ai, atom) in stage.iter().enumerate() {
                let AtomRole::Stateful { config, .. } = &atom.role else {
                    continue;
                };
                let name = format!("{}_s{}_a{}", algo.name, si + 1, ai + 1);
                let v = emit_verilog(&name, config);
                assert_eq!(v.matches("module ").count(), 1, "{name}:\n{v}");
                assert_eq!(v.matches("endmodule").count(), 1, "{name}");
                assert_eq!(v.matches("always @(posedge clk)").count(), 1, "{name}");
                // Every state variable of the codelet has a register and
                // a next-state net.
                for i in 0..config.state_refs.len() {
                    assert!(v.contains(&format!("reg [31:0] state{i};")), "{name}:\n{v}");
                    assert!(
                        v.contains(&format!("wire [31:0] next_state{i}")),
                        "{name}:\n{v}"
                    );
                }
                modules += 1;
            }
        }
    }
    // The suite contains a healthy number of distinct stateful atoms.
    assert!(modules >= 15, "only {modules} stateful atoms emitted");
}

#[test]
fn conga_pairs_atom_emits_dual_register_module() {
    let algo = algorithms::by_name("conga").unwrap();
    let pipeline =
        domino_compiler::compile(algo.source, &Target::banzai(banzai::AtomKind::Pairs)).unwrap();
    let config = pipeline
        .stages
        .iter()
        .flatten()
        .find_map(|a| match &a.role {
            AtomRole::Stateful { config, .. } => Some(config.clone()),
            _ => None,
        })
        .expect("conga has a stateful atom");
    assert_eq!(config.state_refs.len(), 2, "CONGA updates a pair");
    let v = emit_verilog("conga_pair", &config);
    assert!(v.contains("reg [31:0] state0;"), "{v}");
    assert!(v.contains("reg [31:0] state1;"), "{v}");
    // The guard of one variable references the other ($signed compare on
    // a state register).
    assert!(v.contains("$signed(state0)"), "{v}");
}
