//! Symbolic collapse of a codelet into a functional specification.
//!
//! A stateful codelet is a short sequential TAC block — one SCC of the
//! dependency graph (§4.2). To decide whether it fits an atom template, we
//! first collapse it into a *specification*: for each state variable, a
//! symbolic expression for its new value in terms of
//!
//! * the variable's pre-update value ([`Sym::StateOld`]),
//! * packet fields computed by *earlier* stages ([`Sym::Field`]),
//! * constants.
//!
//! This is the "codelet as functional specification of the atom" view of
//! §4.3. Intrinsic calls can never appear here: their arguments are
//! stateless (enforced by sema), so an intrinsic statement never sits on a
//! read→write cycle and is always scheduled as its own stateless codelet.

use domino_ast::{BinOp, UnOp};
use domino_ir::{Codelet, Operand, Packet, StateRef, TacRhs, TacStmt};
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic expression over pre-update state values, external packet
/// fields, and constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sym {
    /// An external packet field (produced before this atom runs).
    Field(String),
    /// A constant.
    Const(i32),
    /// Pre-update value of the codelet's `i`-th state variable.
    StateOld(usize),
    /// Unary operation.
    Unary(UnOp, Box<Sym>),
    /// Binary operation.
    Binary(BinOp, Box<Sym>, Box<Sym>),
    /// Conditional.
    Ternary(Box<Sym>, Box<Sym>, Box<Sym>),
}

impl Sym {
    /// Evaluates the expression against concrete old state values and a
    /// packet (used by the CEGIS verifier).
    pub fn eval(&self, olds: &[i32], pkt: &Packet) -> i32 {
        match self {
            Sym::Field(f) => pkt.get_or_zero(f),
            Sym::Const(c) => *c,
            Sym::StateOld(i) => olds[*i],
            Sym::Unary(op, e) => op.eval(e.eval(olds, pkt)),
            Sym::Binary(op, a, b) => op.eval(a.eval(olds, pkt), b.eval(olds, pkt)),
            Sym::Ternary(c, t, e) => {
                if c.eval(olds, pkt) != 0 {
                    t.eval(olds, pkt)
                } else {
                    e.eval(olds, pkt)
                }
            }
        }
    }

    /// True if the expression references any pre-update state value.
    pub fn reads_state(&self) -> bool {
        match self {
            Sym::Field(_) | Sym::Const(_) => false,
            Sym::StateOld(_) => true,
            Sym::Unary(_, e) => e.reads_state(),
            Sym::Binary(_, a, b) => a.reads_state() || b.reads_state(),
            Sym::Ternary(c, t, e) => c.reads_state() || t.reads_state() || e.reads_state(),
        }
    }

    /// True if the expression contains a conditional.
    pub fn has_ternary(&self) -> bool {
        match self {
            Sym::Field(_) | Sym::Const(_) | Sym::StateOld(_) => false,
            Sym::Unary(_, e) => e.has_ternary(),
            Sym::Binary(_, a, b) => a.has_ternary() || b.has_ternary(),
            Sym::Ternary(..) => true,
        }
    }

    /// All external field names referenced.
    pub fn fields(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_fields(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_fields<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Sym::Field(f) => out.push(f),
            Sym::Const(_) | Sym::StateOld(_) => {}
            Sym::Unary(_, e) => e.collect_fields(out),
            Sym::Binary(_, a, b) => {
                a.collect_fields(out);
                b.collect_fields(out);
            }
            Sym::Ternary(c, t, e) => {
                c.collect_fields(out);
                t.collect_fields(out);
                e.collect_fields(out);
            }
        }
    }

    /// All constants appearing in the expression.
    pub fn constants(&self) -> Vec<i32> {
        let mut out = Vec::new();
        self.collect_consts(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_consts(&self, out: &mut Vec<i32>) {
        match self {
            Sym::Const(c) => out.push(*c),
            Sym::Field(_) | Sym::StateOld(_) => {}
            Sym::Unary(_, e) => e.collect_consts(out),
            Sym::Binary(_, a, b) => {
                a.collect_consts(out);
                b.collect_consts(out);
            }
            Sym::Ternary(c, t, e) => {
                c.collect_consts(out);
                t.collect_consts(out);
                e.collect_consts(out);
            }
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Field(n) => write!(f, "pkt.{n}"),
            Sym::Const(c) => write!(f, "{c}"),
            Sym::StateOld(i) => write!(f, "old{i}"),
            Sym::Unary(op, e) => write!(f, "{}({e})", op.symbol()),
            Sym::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Sym::Ternary(c, t, e) => write!(f, "({c} ? {t} : {e})"),
        }
    }
}

/// The functional specification extracted from a stateful codelet.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeletSpec {
    /// The state variables, in first-access order. `StateOld(i)` refers to
    /// `state_refs[i]`.
    pub state_refs: Vec<StateRef>,
    /// `updates[i]` is the new value of `state_refs[i]`. A variable that is
    /// read but never written gets `Sym::StateOld(i)` (identity).
    pub updates: Vec<Sym>,
    /// Packet fields receiving pre-update state values (read flanks):
    /// `(field, state index)`.
    pub outputs: Vec<(String, usize)>,
}

impl CodeletSpec {
    /// Number of state variables.
    pub fn num_vars(&self) -> usize {
        self.state_refs.len()
    }
}

/// Errors during symbolic collapse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapseError {
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for CollapseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CollapseError {}

/// Collapses a stateful codelet into its functional specification.
///
/// Walks the codelet's statements in order, maintaining a symbolic
/// environment for packet fields produced inside the codelet; state reads
/// introduce `StateOld` leaves, and the (single) state write per variable
/// defines its update expression.
pub fn collapse(codelet: &Codelet) -> Result<CodeletSpec, CollapseError> {
    let mut env: BTreeMap<String, Sym> = BTreeMap::new();
    let mut state_refs: Vec<StateRef> = Vec::new();
    let mut updates: Vec<Option<Sym>> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();

    let var_index = |sref: &StateRef,
                     state_refs: &mut Vec<StateRef>,
                     updates: &mut Vec<Option<Sym>>|
     -> usize {
        if let Some(i) = state_refs.iter().position(|r| r == sref) {
            i
        } else {
            state_refs.push(sref.clone());
            updates.push(None);
            state_refs.len() - 1
        }
    };

    let lookup = |env: &BTreeMap<String, Sym>, op: &Operand| -> Sym {
        match op {
            Operand::Const(c) => Sym::Const(*c),
            Operand::Field(f) => env.get(f).cloned().unwrap_or_else(|| Sym::Field(f.clone())),
        }
    };

    for stmt in &codelet.stmts {
        match stmt {
            TacStmt::ReadState { dst, state } => {
                let i = var_index(state, &mut state_refs, &mut updates);
                env.insert(dst.clone(), Sym::StateOld(i));
                outputs.push((dst.clone(), i));
            }
            TacStmt::WriteState { state, src } => {
                let i = var_index(state, &mut state_refs, &mut updates);
                if updates[i].is_some() {
                    return Err(CollapseError {
                        message: format!(
                            "state variable `{}` is written more than once in a codelet \
                             (normalization should produce a single write flank)",
                            state.name()
                        ),
                    });
                }
                updates[i] = Some(lookup(&env, src));
            }
            TacStmt::Assign { dst, rhs } => {
                let sym = match rhs {
                    TacRhs::Copy(o) => lookup(&env, o),
                    TacRhs::Unary(op, o) => Sym::Unary(*op, Box::new(lookup(&env, o))),
                    TacRhs::Binary(op, a, b) => {
                        Sym::Binary(*op, Box::new(lookup(&env, a)), Box::new(lookup(&env, b)))
                    }
                    TacRhs::Ternary(c, a, b) => Sym::Ternary(
                        Box::new(lookup(&env, c)),
                        Box::new(lookup(&env, a)),
                        Box::new(lookup(&env, b)),
                    ),
                    TacRhs::Intrinsic { name, .. } => {
                        return Err(CollapseError {
                            message: format!(
                                "intrinsic `{name}` inside a stateful codelet: intrinsic \
                                 results must be computed in a stateless stage first"
                            ),
                        })
                    }
                };
                env.insert(dst.clone(), sym);
            }
        }
    }

    let updates: Vec<Sym> = updates
        .into_iter()
        .enumerate()
        .map(|(i, u)| u.unwrap_or(Sym::StateOld(i)))
        .collect();

    if state_refs.is_empty() {
        return Err(CollapseError {
            message: "codelet touches no state; it should be mapped to a stateless atom".into(),
        });
    }

    Ok(CodeletSpec {
        state_refs,
        updates,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ast::BinOp;

    fn fld(n: &str) -> Operand {
        Operand::Field(n.into())
    }

    fn counter_codelet() -> Codelet {
        Codelet::new(vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Scalar("c".into()),
            },
            TacStmt::Assign {
                dst: "new".into(),
                rhs: TacRhs::Binary(BinOp::Add, fld("old"), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("c".into()),
                src: fld("new"),
            },
        ])
    }

    #[test]
    fn collapses_counter_to_old_plus_one() {
        let spec = collapse(&counter_codelet()).unwrap();
        assert_eq!(spec.num_vars(), 1);
        assert_eq!(spec.updates[0].to_string(), "(old0 + 1)");
        assert_eq!(spec.outputs, vec![("old".into(), 0)]);
    }

    #[test]
    fn collapses_conditional_update() {
        // saved_hop-style: read, write (tmp2 ? new_hop : old).
        let c = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "saved".into(),
                state: StateRef::Array {
                    name: "saved_hop".into(),
                    index: fld("id"),
                },
            },
            TacStmt::Assign {
                dst: "next".into(),
                rhs: TacRhs::Ternary(fld("tmp2"), fld("new_hop"), fld("saved")),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "saved_hop".into(),
                    index: fld("id"),
                },
                src: fld("next"),
            },
        ]);
        let spec = collapse(&c).unwrap();
        assert_eq!(
            spec.updates[0].to_string(),
            "(pkt.tmp2 ? pkt.new_hop : old0)"
        );
        assert!(spec.updates[0].has_ternary());
        assert!(spec.updates[0].reads_state());
    }

    #[test]
    fn read_only_var_gets_identity_update() {
        let c = Codelet::new(vec![TacStmt::ReadState {
            dst: "v".into(),
            state: StateRef::Scalar("virtual_time".into()),
        }]);
        let spec = collapse(&c).unwrap();
        assert_eq!(spec.updates[0], Sym::StateOld(0));
    }

    #[test]
    fn write_only_var_is_fine() {
        let c = Codelet::new(vec![TacStmt::WriteState {
            state: StateRef::Scalar("x".into()),
            src: Operand::Const(1),
        }]);
        let spec = collapse(&c).unwrap();
        assert_eq!(spec.updates[0], Sym::Const(1));
        assert!(spec.outputs.is_empty());
    }

    #[test]
    fn two_variables_tracked_separately() {
        // CONGA-style pair.
        let c = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "bpu".into(),
                state: StateRef::Scalar("best_util".into()),
            },
            TacStmt::ReadState {
                dst: "bp".into(),
                state: StateRef::Scalar("best_path".into()),
            },
            TacStmt::Assign {
                dst: "better".into(),
                rhs: TacRhs::Binary(BinOp::Lt, fld("util"), fld("bpu")),
            },
            TacStmt::Assign {
                dst: "nbu".into(),
                rhs: TacRhs::Ternary(fld("better"), fld("util"), fld("bpu")),
            },
            TacStmt::Assign {
                dst: "nbp".into(),
                rhs: TacRhs::Ternary(fld("better"), fld("path_id"), fld("bp")),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("best_util".into()),
                src: fld("nbu"),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("best_path".into()),
                src: fld("nbp"),
            },
        ]);
        let spec = collapse(&c).unwrap();
        assert_eq!(spec.num_vars(), 2);
        assert_eq!(
            spec.updates[0].to_string(),
            "((pkt.util < old0) ? pkt.util : old0)"
        );
        assert_eq!(
            spec.updates[1].to_string(),
            "((pkt.util < old0) ? pkt.path_id : old1)"
        );
    }

    #[test]
    fn double_write_rejected() {
        let c = Codelet::new(vec![
            TacStmt::WriteState {
                state: StateRef::Scalar("x".into()),
                src: Operand::Const(1),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("x".into()),
                src: Operand::Const(2),
            },
        ]);
        let err = collapse(&c).unwrap_err();
        assert!(err.message.contains("written more than once"), "{err}");
    }

    #[test]
    fn stateless_codelet_rejected() {
        let c = Codelet::new(vec![TacStmt::Assign {
            dst: "t".into(),
            rhs: TacRhs::Copy(fld("a")),
        }]);
        assert!(collapse(&c).is_err());
    }

    #[test]
    fn intrinsic_inside_codelet_rejected() {
        let c = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Scalar("x".into()),
            },
            TacStmt::Assign {
                dst: "h".into(),
                rhs: TacRhs::Intrinsic {
                    name: "hash2".into(),
                    args: vec![fld("a"), fld("b")],
                    modulo: None,
                },
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("x".into()),
                src: fld("h"),
            },
        ]);
        let err = collapse(&c).unwrap_err();
        assert!(err.message.contains("hash2"), "{err}");
    }

    #[test]
    fn sym_eval_and_accessors() {
        let spec = collapse(&counter_codelet()).unwrap();
        let pkt = Packet::new();
        assert_eq!(spec.updates[0].eval(&[41], &pkt), 42);
        assert_eq!(spec.updates[0].constants(), vec![1]);
        assert!(spec.updates[0].fields().is_empty());
    }
}
