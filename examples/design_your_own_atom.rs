//! The hardware designer's view: take stateful codelets, synthesize atom
//! configurations for them (the SKETCH-style search of §4.3), and price
//! the resulting atoms in silicon (Tables 3/5/6).
//!
//! Run with: `cargo run --example design_your_own_atom`

use domino::atom_synth;
use domino::banzai::AtomKind;
use domino::hardware_model::{paper_area, stateful_circuit};

fn main() {
    // Candidate per-packet state updates a switch architect might need.
    let candidates = [
        ("packet counter", "x = x + 1;"),
        ("byte counter", "x = x + pkt.len;"),
        (
            "wraparound counter (the paper's Sec 2.3 example)",
            "if (x < 99) { x = x + 1; } else { x = 0; }",
        ),
        (
            "conditional accumulator (RCP-style)",
            "if (pkt.rtt < 30) { x = x + pkt.rtt; }",
        ),
        (
            "token bucket drain",
            "if (pkt.tokens > x) { x = 0; } else { x = x - pkt.tokens; }",
        ),
        ("EWMA-ish halving", "x = x + (pkt.sample >> 1);"),
        ("square (unmappable, Sec 4.3)", "x = pkt.zz * x;"),
    ];

    println!("codelet -> minimal atom -> silicon cost (32 nm)\n");
    for (what, body) in candidates {
        // Wrap the update in a transaction and push it through the
        // compiler front end to get a codelet.
        let src = format!(
            "struct Packet {{ int len; int rtt; int tokens; int sample; int zz; }}\n\
             ;\nint x = 0;\nvoid probe(struct Packet pkt) {{ {body} }}"
        );
        let compilation = domino::domino_compiler::normalize(&src).expect("valid Domino");
        let codelet = compilation
            .pvsm
            .iter_codelets()
            .map(|(_, c)| c)
            .find(|c| !c.is_stateless())
            .expect("one stateful codelet")
            .clone();

        match atom_synth::synthesize(&codelet) {
            Ok(synth) => {
                let circuit = stateful_circuit(synth.minimal_kind);
                println!("{what}:");
                println!("    atom: {}", synth.minimal_kind);
                println!(
                    "    cost: {:.0} um^2 (paper: {:.0}), {:.0} ps -> {:.2} Gpkt/s max",
                    circuit.area(),
                    paper_area(synth.minimal_kind),
                    circuit.min_delay_ps(),
                    circuit.max_line_rate_gpps()
                );
            }
            Err(e) => {
                println!("{what}:");
                println!("    REJECTED: {e}");
            }
        }
        println!();
    }

    // The ladder in one view.
    println!("the containment hierarchy (Table 3):");
    for kind in AtomKind::ALL {
        let c = stateful_circuit(kind);
        println!(
            "  {:<34} {:>5.0} um^2  {:>4.0} ps",
            kind.to_string(),
            c.area(),
            c.min_delay_ps()
        );
    }
}
