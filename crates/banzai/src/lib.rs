//! # banzai — a machine model for programmable line-rate switches
//!
//! Banzai (§2 of *Packet Transactions*, SIGCOMM 2016) abstracts
//! programmable switch pipelines (RMT, Intel FlexPipe, Cavium XPliant): a
//! feed-forward pipeline of stages, each stage a vector of **atoms** that
//! execute within one clock cycle, one packet per cycle. Atoms are the
//! machine's instruction set; stateful atoms own their state exclusively —
//! state is never shared across atoms or stages.
//!
//! This crate provides:
//!
//! * [`kind::AtomKind`] — the seven stateful atom kinds of Table 3 and
//!   their capability lattice,
//! * [`atom`] — filled-in atom templates ([`atom::StatefulConfig`]):
//!   predication trees with relational guards and single-ALU updates,
//! * [`target::Target`] — concrete compiler targets (§5.2): atom kind +
//!   resource limits + available intrinsics,
//! * [`machine`] — the executable machine: [`machine::AtomPipeline`] and
//!   [`machine::Machine`] with both transactional and cycle-accurate
//!   (packets-in-flight) execution, which are observably identical — the
//!   packet-transaction guarantee,
//! * [`slot`] — the slot-compiled fast path: [`slot::SlotPipeline`]
//!   (pipelines lowered onto interned field/state layouts) and
//!   [`slot::SlotMachine`], bit-identical to [`machine::Machine`] with no
//!   per-packet string hashing,
//! * [`switch`] — the Figure-1 whole-switch view (ingress pipeline, queue,
//!   egress pipeline), generic over either execution engine,
//! * [`pifo`] — programmable scheduling: push-in-first-out queue blocks
//!   popped in rank order (the rank itself computed by a Domino program's
//!   output field), hierarchical PIFO-of-PIFOs composition, and the
//!   [`pifo::SchedSpec`] policy that selects the switch queue's
//!   discipline — WFQ, strict priority, and token-bucket shaping,
//! * [`shard`] — the multi-core scale-out: [`shard::ShardedSwitch`] steers
//!   flows to N independent per-shard switches (RSS-style, keyed by the
//!   program's own state indexing) and merges packets and state back
//!   deterministically, bit-identical to serial execution,
//! * [`wire`] — the byte-level front-end: an Ethernet → VLAN → IPv4 →
//!   TCP/UDP parse graph decoding raw frames into packet fields (typed
//!   [`wire::ParseVerdict`]s on malformed input, never a panic) and a
//!   patch-list deparser re-serializing modified headers, so the full
//!   path is bytes → parse → pipeline → deparse → bytes,
//! * [`error`] — the typed failure model: [`error::SwitchError`] with
//!   per-shard [`error::ShardError`]s and a salvage-carrying
//!   [`error::FaultReport`] whose [`error::Accounting`] proves packet
//!   conservation (`offered == transmitted + dropped + lost_in_fault`),
//! * [`fault`] — deterministic fault injection:
//!   [`fault::FaultyEngine`] wraps any engine and panics, stalls, or
//!   bit-flips at seed-scheduled packet indices, the hook the chaos
//!   suite and fabric-scale simulation both drive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod error;
pub mod fault;
pub mod kind;
pub mod machine;
pub mod pifo;
pub mod shard;
pub mod slot;
pub mod stream;
pub mod switch;
pub mod target;
pub mod wire;

pub use atom::{Guard, GuardOperand, RelOp, StatefulConfig, Tree, Update};
pub use error::{
    Accounting, FaultCause, FaultReport, ShardError, ShardSalvage, SourceFault, SwitchError,
};
pub use fault::{FaultKind, FaultPlan, FaultSpec, FaultyEngine};
pub use kind::{AtomKind, StatefulCaps};
pub use machine::{AtomPipeline, AtomRole, CompiledAtom, Machine};
pub use pifo::{Fifo, HierPifo, Pifo, SchedKey, SchedQueue, SchedSpec, Scheduler};
pub use shard::{
    Backpressure, ShardConfig, ShardPlan, ShardRun, ShardTier, ShardTimings, ShardedFrameRun,
    ShardedRun, ShardedSchedRun, ShardedSwitch, SteerMode,
};
pub use slot::{SlotMachine, SlotPipeline};
pub use stream::{
    FailAfter, FrameGenSource, FrameSliceSource, FrameSource, GenSource, IntoFrameSource,
    IntoPacketSource, PacketSource, Rewind, RunStats, SliceSource, SourceError,
};
pub use switch::{
    DropCounters, DropReason, FrameRun, PipelineEngine, Run, SchedDeparture, SchedRun, Switch,
};
pub use target::Target;
pub use wire::{
    deparse, encode, parse, BoundParser, FlatWireLayout, FrameSpec, ParseVerdict, WireConfig,
    WireLayout, WirePacket,
};
