//! Quickstart: write a packet transaction, compile it for a Banzai
//! machine, and push packets through at one per clock cycle.
//!
//! Run with: `cargo run --example quickstart`

use domino::prelude::*;

fn main() {
    // A Domino packet transaction: sequential code with atomic, isolated
    // semantics across packets (the paper's core abstraction, §3).
    let src = r#"
        struct Packet { int sport; int dport; int bucket; int count; };
        int flows[1024] = {0};
        void per_flow_counter(struct Packet pkt) {
            pkt.bucket = hash2(pkt.sport, pkt.dport) % 1024;
            flows[pkt.bucket] = flows[pkt.bucket] + 1;
            pkt.count = flows[pkt.bucket];
        }
    "#;

    // Pick a target: a Banzai machine whose stateful atom is
    // ReadAddWrite (RAW). Compilation is all-or-nothing: success means
    // the program runs at the machine's line rate, guaranteed.
    let target = Target::banzai(AtomKind::Raw);
    let pipeline = domino::compile(src, &target).expect("compiles at line rate");

    println!("{pipeline}");

    // Instantiate the machine and process a few packets.
    let mut machine = Machine::new(pipeline);
    for (sport, dport) in [(10, 80), (10, 80), (11, 443), (10, 80)] {
        let out = machine.process(Packet::new().with("sport", sport).with("dport", dport));
        println!(
            "flow ({sport:>2} -> {dport:>3})  packet count = {}",
            out.get("count").unwrap()
        );
    }

    // The same program does NOT fit a machine with only Read/Write atoms —
    // the increment needs an atomic read-add-write.
    let too_weak = Target::banzai(AtomKind::Write);
    let err = domino::compile(src, &too_weak).unwrap_err();
    println!("\nOn banzai-write: {err}");
}
