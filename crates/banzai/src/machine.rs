//! The Banzai machine: a pipeline of stages executing one packet per clock
//! cycle (§2.2).
//!
//! Each stage holds a vector of atoms that execute in parallel on the
//! packet resident in that stage. An atom completes its entire sequential
//! body within the cycle, which is what provides transactional semantics
//! for state (§2.3).
//!
//! Two execution modes are provided:
//!
//! * [`Machine::process`] / [`Machine::run_trace`] — run each packet
//!   through all stages before admitting the next (the *transactional
//!   reference* view);
//! * [`Machine::run_trace_pipelined`] — cycle-accurate simulation with up
//!   to `depth` packets in flight, one entering per cycle.
//!
//! Because every state variable is confined to a single atom in a single
//! stage, the two modes are observably identical — that equivalence is the
//! paper's core guarantee and is asserted by tests and property tests.

use crate::atom::StatefulConfig;
use crate::kind::AtomKind;
use domino_ast::StateVar;
use domino_ir::interp::exec_tac_stmt;
use domino_ir::{Codelet, Packet, StateStore};
use std::collections::BTreeMap;
use std::fmt;

/// How an atom was realized on the target.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomRole {
    /// A stateless atom (one packet-field operation).
    Stateless,
    /// A stateful atom: the kind used and the synthesized template
    /// configuration proving the codelet fits it.
    Stateful {
        /// The atom kind this codelet was mapped onto.
        kind: AtomKind,
        /// The synthesized configuration (filled template).
        config: StatefulConfig,
    },
}

/// One atom of the compiled pipeline: the codelet it implements (its
/// sequential body, which *is* the atom's defining semantics per §2.3) plus
/// how it was realized.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAtom {
    /// The codelet (sequential TAC body).
    pub codelet: Codelet,
    /// Stateless or stateful realization.
    pub role: AtomRole,
}

impl CompiledAtom {
    /// Executes the atom's body on a packet (one clock cycle's worth of
    /// work).
    pub fn execute(&self, state: &mut StateStore, pkt: &mut Packet) {
        for stmt in &self.codelet.stmts {
            exec_tac_stmt(stmt, state, pkt);
        }
    }

    /// True if the atom modifies persistent state.
    pub fn is_stateful(&self) -> bool {
        matches!(self.role, AtomRole::Stateful { .. })
    }
}

/// A compiled atom pipeline for a Banzai machine.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomPipeline {
    /// Transaction name this pipeline implements.
    pub name: String,
    /// Name of the target it was compiled for.
    pub target_name: String,
    /// `stages[i]` = atoms executing in parallel in stage `i`.
    pub stages: Vec<Vec<CompiledAtom>>,
    /// Program state declarations (for machine initialization).
    pub state_decls: Vec<StateVar>,
    /// The observable packet fields (declared in the packet struct).
    pub declared_fields: Vec<String>,
    /// Deparser view: `(declared_field, internal_field)` pairs mapping each
    /// declared field to the SSA version holding its final value. Applied
    /// when a packet leaves the pipeline. Fields not listed pass through
    /// unchanged.
    pub output_map: Vec<(String, String)>,
}

impl AtomPipeline {
    /// An empty (zero-stage) pipeline that forwards packets untouched —
    /// handy for tests and doc examples that exercise queueing machinery
    /// without a compiler in reach.
    pub fn passthrough(name: &str) -> AtomPipeline {
        AtomPipeline {
            name: name.to_string(),
            target_name: "passthrough".to_string(),
            stages: vec![],
            state_decls: vec![],
            declared_fields: vec![],
            output_map: vec![],
        }
    }

    /// Pipeline depth (number of stages).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Maximum atoms in any stage.
    pub fn max_atoms_per_stage(&self) -> usize {
        self.stages.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Maximum *stateful* atoms in any stage.
    pub fn max_stateful_per_stage(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.iter().filter(|a| a.is_stateful()).count())
            .max()
            .unwrap_or(0)
    }

    /// Total number of atoms.
    pub fn atom_count(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }

    /// The most expressive stateful atom kind actually used, if any.
    ///
    /// Because the kinds form a containment hierarchy, this is the *least
    /// expressive target* able to run the program (Table 4's "least
    /// expressive atom" column).
    pub fn max_stateful_kind(&self) -> Option<AtomKind> {
        self.stages
            .iter()
            .flatten()
            .filter_map(|a| match &a.role {
                AtomRole::Stateful { kind, .. } => Some(*kind),
                AtomRole::Stateless => None,
            })
            .max()
    }

    /// Checks the structural invariant that makes pipelining sound: every
    /// state variable is confined to exactly one atom (in one stage).
    ///
    /// Returns the offending variable name on violation.
    pub fn validate_state_confinement(&self) -> Result<(), String> {
        let mut owner: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for (si, stage) in self.stages.iter().enumerate() {
            for (ai, atom) in stage.iter().enumerate() {
                for var in atom.codelet.state_vars() {
                    if let Some((psi, pai)) = owner.insert(var, (si, ai)) {
                        if (psi, pai) != (si, ai) {
                            return Err(format!(
                                "state variable `{var}` appears in stage {} atom {} \
                                 and stage {} atom {}",
                                psi + 1,
                                pai + 1,
                                si + 1,
                                ai + 1
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for AtomPipeline {
    /// Renders the pipeline in the style of Figure 3b: stages top to
    /// bottom, stateful atoms marked.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline `{}` on {} — {} stages, max {} atoms/stage",
            self.name,
            self.target_name,
            self.depth(),
            self.max_atoms_per_stage()
        )?;
        for (i, stage) in self.stages.iter().enumerate() {
            writeln!(f, "Stage {}", i + 1)?;
            for atom in stage {
                let marker = match &atom.role {
                    AtomRole::Stateful { kind, .. } => format!("[stateful: {}]", kind.paper_name()),
                    AtomRole::Stateless => "[stateless]".to_string(),
                };
                for (j, stmt) in atom.codelet.stmts.iter().enumerate() {
                    if j == 0 {
                        writeln!(f, "  {marker} {stmt}")?;
                    } else {
                        writeln!(f, "  {: <width$} {stmt}", "", width = marker.len())?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// A Banzai machine instance: a compiled pipeline plus live state.
#[derive(Debug, Clone)]
pub struct Machine {
    pipeline: AtomPipeline,
    state: StateStore,
}

impl Machine {
    /// Instantiates a machine with freshly initialized state.
    pub fn new(pipeline: AtomPipeline) -> Machine {
        let state = StateStore::from_decls(&pipeline.state_decls);
        Machine { pipeline, state }
    }

    /// The live state store (e.g. for inspecting counters after a run).
    pub fn state(&self) -> &StateStore {
        &self.state
    }

    /// Overwrites state variables from a snapshot (the export/import hook
    /// the sharded switch uses to warm-start a partition; every snapshot
    /// variable must exist with the same shape).
    pub fn import_state(&mut self, snapshot: &StateStore) {
        self.state.import(snapshot);
    }

    /// The pipeline this machine runs.
    pub fn pipeline(&self) -> &AtomPipeline {
        &self.pipeline
    }

    /// Runs one packet through every stage (transactional view).
    pub fn process(&mut self, mut pkt: Packet) -> Packet {
        for stage in &self.pipeline.stages {
            for atom in stage {
                atom.execute(&mut self.state, &mut pkt);
            }
        }
        Self::deparse(&self.pipeline.output_map, &mut pkt);
        pkt
    }

    /// Applies the deparser view: copy each declared field's final SSA
    /// version back into the declared name.
    fn deparse(output_map: &[(String, String)], pkt: &mut Packet) {
        for (declared, internal) in output_map {
            if declared != internal {
                let v = pkt.get_or_zero(internal);
                pkt.set(declared, v);
            }
        }
    }

    /// Runs a trace, one packet at a time.
    pub fn run_trace(&mut self, trace: &[Packet]) -> Vec<Packet> {
        trace.iter().map(|p| self.process(p.clone())).collect()
    }

    /// Cycle-accurate simulation: one packet enters per cycle, up to
    /// `depth` packets are in flight, each stage processes its resident
    /// packet every cycle.
    ///
    /// Output order equals input order (the pipeline is in-order). The
    /// result is bit-identical to [`Machine::run_trace`] because state is
    /// confined to single atoms — this equivalence is the packet-transaction
    /// guarantee, and tests assert it.
    pub fn run_trace_pipelined(&mut self, trace: &[Packet]) -> Vec<Packet> {
        let depth = self.pipeline.depth();
        let mut slots: Vec<Option<Packet>> = vec![None; depth];
        let mut out = Vec::with_capacity(trace.len());
        let mut input = trace.iter();
        // Total cycles: one admit per cycle plus pipeline drain.
        loop {
            // Advance from the last stage backwards so each packet moves
            // exactly one stage per cycle.
            for s in (0..depth).rev() {
                if let Some(mut pkt) = slots[s].take() {
                    for atom in &self.pipeline.stages[s] {
                        atom.execute(&mut self.state, &mut pkt);
                    }
                    if s + 1 == depth {
                        Self::deparse(&self.pipeline.output_map, &mut pkt);
                        out.push(pkt);
                    } else {
                        slots[s + 1] = Some(pkt);
                    }
                }
            }
            match input.next() {
                Some(p) => {
                    if depth == 0 {
                        out.push(p.clone());
                    } else {
                        slots[0] = Some(p.clone());
                    }
                }
                None => {
                    if slots.iter().all(|s| s.is_none()) {
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Tree, Update};
    use domino_ast::{BinOp, StateKind};
    use domino_ir::{Operand, StateRef, TacRhs, TacStmt};

    /// Builds a 2-stage pipeline:
    ///   stage 1: stateful counter codelet (read+increment+write) exposing
    ///            the new count in pkt.count
    ///   stage 2: stateless compare pkt.flag = pkt.count > 2
    fn counter_pipeline() -> AtomPipeline {
        let counter_codelet = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Scalar("c".into()),
            },
            TacStmt::Assign {
                dst: "count".into(),
                rhs: TacRhs::Binary(BinOp::Add, Operand::Field("old".into()), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("c".into()),
                src: Operand::Field("count".into()),
            },
        ]);
        let config = StatefulConfig {
            state_refs: vec![StateRef::Scalar("c".into())],
            trees: vec![Tree::Leaf(Update::Add(Operand::Const(1)))],
            outputs: vec![("old".into(), 0)],
        };
        let compare = Codelet::new(vec![TacStmt::Assign {
            dst: "flag".into(),
            rhs: TacRhs::Binary(BinOp::Gt, Operand::Field("count".into()), Operand::Const(2)),
        }]);
        AtomPipeline {
            name: "count".into(),
            target_name: "banzai-raw".into(),
            stages: vec![
                vec![CompiledAtom {
                    codelet: counter_codelet,
                    role: AtomRole::Stateful {
                        kind: AtomKind::Raw,
                        config,
                    },
                }],
                vec![CompiledAtom {
                    codelet: compare,
                    role: AtomRole::Stateless,
                }],
            ],
            state_decls: vec![StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 0,
            }],
            declared_fields: vec!["count".into(), "flag".into()],
            output_map: vec![],
        }
    }

    #[test]
    fn pipeline_stats() {
        let p = counter_pipeline();
        assert_eq!(p.depth(), 2);
        assert_eq!(p.max_atoms_per_stage(), 1);
        assert_eq!(p.max_stateful_per_stage(), 1);
        assert_eq!(p.atom_count(), 2);
        assert_eq!(p.max_stateful_kind(), Some(AtomKind::Raw));
        p.validate_state_confinement().unwrap();
    }

    #[test]
    fn process_counts_packets() {
        let mut m = Machine::new(counter_pipeline());
        let outs = m.run_trace(&vec![Packet::new(); 4]);
        assert_eq!(outs[0].get("count"), Some(1));
        assert_eq!(outs[3].get("count"), Some(4));
        assert_eq!(outs[0].get("flag"), Some(0));
        assert_eq!(outs[2].get("flag"), Some(1)); // count 3 > 2
        assert_eq!(m.state().read_scalar("c"), 4);
    }

    #[test]
    fn pipelined_equals_serial() {
        let trace: Vec<Packet> = (0..50).map(|i| Packet::new().with("seq", i)).collect();
        let mut m1 = Machine::new(counter_pipeline());
        let serial = m1.run_trace(&trace);
        let mut m2 = Machine::new(counter_pipeline());
        let pipelined = m2.run_trace_pipelined(&trace);
        assert_eq!(serial, pipelined);
        assert_eq!(m1.state().read_scalar("c"), m2.state().read_scalar("c"));
    }

    #[test]
    fn pipelined_preserves_order_and_length() {
        let trace: Vec<Packet> = (0..17).map(|i| Packet::new().with("seq", i)).collect();
        let mut m = Machine::new(counter_pipeline());
        let outs = m.run_trace_pipelined(&trace);
        assert_eq!(outs.len(), 17);
        for (i, p) in outs.iter().enumerate() {
            assert_eq!(p.get("seq"), Some(i as i32));
        }
    }

    #[test]
    fn empty_trace_yields_empty_output() {
        let mut m = Machine::new(counter_pipeline());
        assert!(m.run_trace_pipelined(&[]).is_empty());
        assert!(m.run_trace(&[]).is_empty());
    }

    #[test]
    fn state_confinement_violation_detected() {
        let mut p = counter_pipeline();
        // Duplicate the stateful atom into stage 2: `c` now lives twice.
        let dup = p.stages[0][0].clone();
        p.stages[1].push(dup);
        let err = p.validate_state_confinement().unwrap_err();
        assert!(err.contains("`c`"), "{err}");
    }

    #[test]
    fn display_marks_stateful_atoms() {
        let text = counter_pipeline().to_string();
        assert!(text.contains("Stage 1"), "{text}");
        assert!(text.contains("[stateful: ReadAddWrite (RAW)]"), "{text}");
        assert!(text.contains("[stateless]"), "{text}");
    }

    #[test]
    fn machine_state_resets_per_instance() {
        let mut m1 = Machine::new(counter_pipeline());
        m1.run_trace(&vec![Packet::new(); 3]);
        let m2 = Machine::new(counter_pipeline());
        assert_eq!(m2.state().read_scalar("c"), 0);
    }
}
