//! The slot-compiled execution engine: atom pipelines lowered onto fixed
//! field/state layouts and executed with pure integer indexing.
//!
//! [`Machine`](crate::Machine) interprets TAC with string-keyed map
//! lookups on every operand — fine as a semantic reference, orders of
//! magnitude off the paper's "run at the line rate of the switching
//! fabric" story. This module is the fast path:
//!
//! 1. [`SlotPipeline::lower`] resolves, once per pipeline, every packet
//!    field to a [`FieldId`] slot (via a [`FieldTable`] built in
//!    deterministic first-mention order), every state variable to a base
//!    offset in a flat register file ([`StateLayout`]), and every
//!    intrinsic to a direct entry point — producing slot-indexed atom
//!    programs ([`SlotOp`]).
//! 2. [`SlotMachine`] executes those programs over [`FlatPacket`]s and a
//!    [`FlatState`] register file: no per-packet string hashing, no tree
//!    walks, no allocation in the per-statement loop.
//!
//! Because TAC is straight-line, the set of slots a pipeline writes is a
//! compile-time constant; the engine writes raw slots in the hot loop and
//! restores the presence invariant with one precomputed bitmask OR per
//! packet. The map-based [`Machine`](crate::Machine) remains the semantic
//! reference; differential tests (and the `throughput` harness) assert the
//! two paths are bit-identical, packet-for-packet and state-for-state.

use crate::machine::AtomPipeline;
use domino_ast::{intrinsics, BinOp, UnOp};
use domino_ir::layout::{FieldId, FieldTable, FlatPacket, FlatState, StateLayout};
use domino_ir::{Operand, Packet, StateRef, StateStore, TacRhs, TacStmt};
use std::fmt;
use std::sync::Arc;

/// An operand with its field pre-resolved to a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOperand {
    /// A packet-field slot.
    Slot(FieldId),
    /// An immediate constant.
    Const(i32),
}

impl SlotOperand {
    #[inline]
    fn eval(self, vals: &[i32]) -> i32 {
        match self {
            SlotOperand::Slot(id) => vals[id.index()],
            SlotOperand::Const(c) => c,
        }
    }
}

/// An intrinsic pre-resolved to its accelerator entry point (no per-packet
/// string dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variants are the intrinsic names
pub enum IntrinsicFn {
    Hash2,
    Hash3,
    Isqrt,
    CodelGap,
}

impl IntrinsicFn {
    /// Resolves an intrinsic by name.
    pub fn from_name(name: &str) -> Option<IntrinsicFn> {
        match name {
            "hash2" => Some(IntrinsicFn::Hash2),
            "hash3" => Some(IntrinsicFn::Hash3),
            "isqrt" => Some(IntrinsicFn::Isqrt),
            "codel_gap" => Some(IntrinsicFn::CodelGap),
            _ => None,
        }
    }

    /// The argument count this intrinsic requires (enforced at lowering).
    pub fn arity(self) -> usize {
        match self {
            IntrinsicFn::Hash2 | IntrinsicFn::CodelGap => 2,
            IntrinsicFn::Hash3 => 3,
            IntrinsicFn::Isqrt => 1,
        }
    }

    #[inline]
    fn eval(self, args: &[i32]) -> i32 {
        match (self, args) {
            (IntrinsicFn::Hash2, [a, b]) => intrinsics::hash2(*a, *b),
            (IntrinsicFn::Hash3, [a, b, c]) => intrinsics::hash3(*a, *b, *c),
            (IntrinsicFn::Isqrt, [a]) => intrinsics::isqrt(*a),
            (IntrinsicFn::CodelGap, [count, interval]) => intrinsics::codel_gap(*count, *interval),
            _ => unreachable!("arity checked at lowering time"),
        }
    }
}

/// A state reference with the variable pre-resolved to its register-file
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotStateRef {
    /// A scalar at a fixed offset.
    Scalar(u32),
    /// An array window `[base, base+len)` indexed by an operand.
    Array {
        /// First register-file slot of the array.
        base: u32,
        /// Array length (indices wrap modulo this, like the map path).
        len: u32,
        /// The index operand.
        index: SlotOperand,
    },
}

impl SlotStateRef {
    #[inline]
    fn read(&self, state: &FlatState, vals: &[i32]) -> i32 {
        match self {
            SlotStateRef::Scalar(base) => state.read(*base),
            SlotStateRef::Array { base, len, index } => {
                state.read_array(*base, *len, index.eval(vals))
            }
        }
    }

    #[inline]
    fn write(&self, value: i32, state: &mut FlatState, vals: &[i32]) {
        match self {
            SlotStateRef::Scalar(base) => state.write(*base, value),
            SlotStateRef::Array { base, len, index } => {
                state.write_array(*base, *len, index.eval(vals), value)
            }
        }
    }
}

/// A right-hand side with all operands slot-resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // mirrors `TacRhs`, variant for variant
pub enum SlotRhs {
    Copy(SlotOperand),
    Unary(UnOp, SlotOperand),
    Binary(BinOp, SlotOperand, SlotOperand),
    Ternary(SlotOperand, SlotOperand, SlotOperand),
    Intrinsic {
        func: IntrinsicFn,
        args: Vec<SlotOperand>,
        modulo: Option<i32>,
    },
}

impl SlotRhs {
    #[inline]
    fn eval(&self, vals: &[i32]) -> i32 {
        match self {
            SlotRhs::Copy(o) => o.eval(vals),
            SlotRhs::Unary(op, o) => op.eval(o.eval(vals)),
            SlotRhs::Binary(op, a, b) => op.eval(a.eval(vals), b.eval(vals)),
            SlotRhs::Ternary(c, a, b) => {
                if c.eval(vals) != 0 {
                    a.eval(vals)
                } else {
                    b.eval(vals)
                }
            }
            SlotRhs::Intrinsic { func, args, modulo } => {
                let mut buf = [0i32; 3];
                for (slot, a) in buf.iter_mut().zip(args) {
                    *slot = a.eval(vals);
                }
                let raw = func.eval(&buf[..args.len()]);
                match modulo {
                    Some(m) => BinOp::Mod.eval(raw, *m),
                    None => raw,
                }
            }
        }
    }
}

/// One slot-indexed statement (the lowered form of [`TacStmt`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // mirrors `TacStmt`, variant for variant
pub enum SlotOp {
    ReadState {
        dst: FieldId,
        state: SlotStateRef,
    },
    WriteState {
        state: SlotStateRef,
        src: SlotOperand,
    },
    Assign {
        dst: FieldId,
        rhs: SlotRhs,
    },
}

impl SlotOp {
    #[inline]
    fn exec(&self, state: &mut FlatState, vals: &mut [i32]) {
        match self {
            SlotOp::ReadState { dst, state: sref } => {
                vals[dst.index()] = sref.read(state, vals);
            }
            SlotOp::WriteState { state: sref, src } => {
                sref.write(src.eval(vals), state, vals);
            }
            SlotOp::Assign { dst, rhs } => {
                vals[dst.index()] = rhs.eval(vals);
            }
        }
    }
}

/// An [`AtomPipeline`] compiled down to slot-indexed programs: one op list
/// per stage (atoms concatenated in execution order), a deparse copy list,
/// and the static written-slot presence mask.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotPipeline {
    name: String,
    table: Arc<FieldTable>,
    state_layout: StateLayout,
    stages: Vec<Vec<SlotOp>>,
    /// Deparser view as `(declared, internal)` slot pairs (only pairs with
    /// distinct names, matching the map path).
    deparse: Vec<(FieldId, FieldId)>,
    /// Presence bitmask of every slot any statement (or the deparser)
    /// writes — constant because TAC is straight-line.
    written_mask: Box<[u64]>,
    /// The same set as a slot list, for merging results back into map
    /// packets at the edges.
    written_slots: Vec<FieldId>,
}

impl SlotPipeline {
    /// Lowers an atom pipeline onto fixed layouts.
    ///
    /// Fails (with a human-readable reason) only on pipelines the compiler
    /// would never emit — an unknown intrinsic, a bad arity, or a state
    /// variable outside the declarations; `domino_compiler` validates the
    /// lowering at code-generation time so every compiled pipeline is
    /// guaranteed slot-executable.
    pub fn lower(pipeline: &AtomPipeline) -> Result<SlotPipeline, String> {
        let mut table = FieldTable::new();
        // Declared fields first: their slots are stable for observers.
        for f in &pipeline.declared_fields {
            table.intern(f);
        }
        let state_layout = StateLayout::from_decls(&pipeline.state_decls);

        let mut written: Vec<FieldId> = Vec::new();
        let mut stages = Vec::with_capacity(pipeline.stages.len());
        for stage in &pipeline.stages {
            let mut ops = Vec::new();
            for atom in stage {
                for stmt in &atom.codelet.stmts {
                    let op = lower_stmt(stmt, &mut table, &state_layout)?;
                    if let SlotOp::ReadState { dst, .. } | SlotOp::Assign { dst, .. } = op {
                        written.push(dst);
                    }
                    ops.push(op);
                }
            }
            stages.push(ops);
        }

        let mut deparse = Vec::new();
        for (declared, internal) in &pipeline.output_map {
            if declared != internal {
                let d = table.intern(declared);
                let i = table.intern(internal);
                deparse.push((d, i));
                written.push(d);
            }
        }

        let mut written_mask = vec![0u64; table.len().div_ceil(64)].into_boxed_slice();
        written.sort_unstable();
        written.dedup();
        for id in &written {
            written_mask[id.index() / 64] |= 1 << (id.index() % 64);
        }

        Ok(SlotPipeline {
            name: pipeline.name.clone(),
            table: Arc::new(table),
            state_layout,
            stages,
            deparse,
            written_mask,
            written_slots: written,
        })
    }

    /// Transaction name this pipeline implements.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field layout (interned slots) this pipeline executes over.
    pub fn field_table(&self) -> &Arc<FieldTable> {
        &self.table
    }

    /// The state layout (register-file offsets).
    pub fn state_layout(&self) -> &StateLayout {
        &self.state_layout
    }

    /// Pipeline depth (number of stages).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Total slot-indexed operations across all stages.
    pub fn op_count(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }
}

impl fmt::Display for SlotPipeline {
    /// Renders the layout: field slots, state offsets, per-stage op counts
    /// (the `domc --emit layout` view).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "layout for `{}` — {} field slots, {} state slots, {} stages / {} ops",
            self.name,
            self.table.len(),
            self.state_layout.total_slots(),
            self.depth(),
            self.op_count()
        )?;
        write!(f, "{}", self.table)?;
        write!(f, "{}", self.state_layout)?;
        for (i, stage) in self.stages.iter().enumerate() {
            writeln!(f, "stage {}: {} ops", i + 1, stage.len())?;
        }
        Ok(())
    }
}

fn lower_operand(op: &Operand, table: &mut FieldTable) -> SlotOperand {
    match op {
        Operand::Field(f) => SlotOperand::Slot(table.intern(f)),
        Operand::Const(c) => SlotOperand::Const(*c),
    }
}

fn lower_state_ref(
    sref: &StateRef,
    table: &mut FieldTable,
    layout: &StateLayout,
) -> Result<SlotStateRef, String> {
    let entry = layout
        .slot(sref.name())
        .ok_or_else(|| format!("state variable `{}` is not declared", sref.name()))?;
    match sref {
        StateRef::Scalar(name) => {
            if entry.is_array {
                return Err(format!(
                    "state variable `{name}` is an array, used as scalar"
                ));
            }
            Ok(SlotStateRef::Scalar(entry.base))
        }
        StateRef::Array { name, index } => {
            if !entry.is_array {
                return Err(format!(
                    "state variable `{name}` is a scalar, used as array"
                ));
            }
            Ok(SlotStateRef::Array {
                base: entry.base,
                len: entry.len,
                index: lower_operand(index, table),
            })
        }
    }
}

fn lower_stmt(
    stmt: &TacStmt,
    table: &mut FieldTable,
    layout: &StateLayout,
) -> Result<SlotOp, String> {
    Ok(match stmt {
        TacStmt::ReadState { dst, state } => SlotOp::ReadState {
            dst: table.intern(dst),
            state: lower_state_ref(state, table, layout)?,
        },
        TacStmt::WriteState { state, src } => SlotOp::WriteState {
            state: lower_state_ref(state, table, layout)?,
            src: lower_operand(src, table),
        },
        TacStmt::Assign { dst, rhs } => SlotOp::Assign {
            dst: table.intern(dst),
            rhs: lower_rhs(rhs, table)?,
        },
    })
}

fn lower_rhs(rhs: &TacRhs, table: &mut FieldTable) -> Result<SlotRhs, String> {
    Ok(match rhs {
        TacRhs::Copy(o) => SlotRhs::Copy(lower_operand(o, table)),
        TacRhs::Unary(op, o) => SlotRhs::Unary(*op, lower_operand(o, table)),
        TacRhs::Binary(op, a, b) => {
            SlotRhs::Binary(*op, lower_operand(a, table), lower_operand(b, table))
        }
        TacRhs::Ternary(c, a, b) => SlotRhs::Ternary(
            lower_operand(c, table),
            lower_operand(a, table),
            lower_operand(b, table),
        ),
        TacRhs::Intrinsic { name, args, modulo } => {
            let func = IntrinsicFn::from_name(name)
                .ok_or_else(|| format!("no execution-engine entry point for intrinsic `{name}`"))?;
            if args.len() != func.arity() {
                return Err(format!(
                    "intrinsic `{name}` takes {} argument(s), got {}",
                    func.arity(),
                    args.len()
                ));
            }
            SlotRhs::Intrinsic {
                func,
                args: args.iter().map(|a| lower_operand(a, table)).collect(),
                modulo: *modulo,
            }
        }
    })
}

/// A machine instance running the slot-compiled fast path: a lowered
/// pipeline plus a live flat register file.
///
/// Mirrors [`Machine`](crate::Machine)'s API (`process`, `run_trace`,
/// `run_trace_pipelined`) with bit-identical observable behaviour, plus
/// `*_flat` variants that skip the map-packet edges entirely for replaying
/// pre-converted traces at full speed.
#[derive(Debug, Clone)]
pub struct SlotMachine {
    program: SlotPipeline,
    state: FlatState,
}

impl SlotMachine {
    /// Lowers `pipeline` and instantiates fresh state.
    pub fn compile(pipeline: &AtomPipeline) -> Result<SlotMachine, String> {
        Ok(SlotMachine::from_program(SlotPipeline::lower(pipeline)?))
    }

    /// Instantiates a machine from an already-lowered pipeline.
    pub fn from_program(program: SlotPipeline) -> SlotMachine {
        let state = FlatState::new(program.state_layout.clone());
        SlotMachine { program, state }
    }

    /// The lowered program this machine runs.
    pub fn program(&self) -> &SlotPipeline {
        &self.program
    }

    /// The field layout for building [`FlatPacket`]s to feed `*_flat`.
    pub fn field_table(&self) -> &Arc<FieldTable> {
        &self.program.table
    }

    /// Converts a map-packet trace onto this machine's layout once, for
    /// repeated replay through the flat entry points.
    pub fn flatten_trace(&self, trace: &[Packet]) -> Vec<FlatPacket> {
        trace
            .iter()
            .map(|p| FlatPacket::from_packet(p, &self.program.table))
            .collect()
    }

    /// Exports the live register file as a map [`StateStore`] (for
    /// inspection and for comparison against the reference path).
    pub fn export_state(&self) -> StateStore {
        self.state.export()
    }

    /// Overwrites the register file from a map snapshot (the inverse of
    /// [`SlotMachine::export_state`]; shapes must match the layout).
    pub fn import_state(&mut self, snapshot: &StateStore) {
        self.state.import(snapshot);
    }

    /// Runs one flat packet through every stage in place (transactional
    /// view) — the allocation-free hot path.
    pub fn process_flat(&mut self, pkt: &mut FlatPacket) {
        let vals = pkt.slots_mut();
        for stage in &self.program.stages {
            for op in stage {
                op.exec(&mut self.state, vals);
            }
        }
        for (declared, internal) in &self.program.deparse {
            vals[declared.index()] = vals[internal.index()];
        }
        pkt.mark_present(&self.program.written_mask);
    }

    /// Runs a flat trace, one packet at a time.
    pub fn run_trace_flat(&mut self, trace: &[FlatPacket]) -> Vec<FlatPacket> {
        trace
            .iter()
            .map(|p| {
                let mut pkt = p.clone();
                self.process_flat(&mut pkt);
                pkt
            })
            .collect()
    }

    /// Cycle-accurate simulation over flat packets: one packet enters per
    /// cycle, up to `depth` in flight — the slot-path mirror of
    /// [`Machine::run_trace_pipelined`](crate::Machine::run_trace_pipelined).
    pub fn run_trace_pipelined_flat(&mut self, trace: &[FlatPacket]) -> Vec<FlatPacket> {
        let depth = self.program.depth();
        let mut slots: Vec<Option<FlatPacket>> = vec![None; depth];
        let mut out = Vec::with_capacity(trace.len());
        let mut input = trace.iter();
        loop {
            for s in (0..depth).rev() {
                if let Some(mut pkt) = slots[s].take() {
                    for op in &self.program.stages[s] {
                        op.exec(&mut self.state, pkt.slots_mut());
                    }
                    if s + 1 == depth {
                        let vals = pkt.slots_mut();
                        for (declared, internal) in &self.program.deparse {
                            vals[declared.index()] = vals[internal.index()];
                        }
                        pkt.mark_present(&self.program.written_mask);
                        out.push(pkt);
                    } else {
                        slots[s + 1] = Some(pkt);
                    }
                }
            }
            match input.next() {
                Some(p) => {
                    if depth == 0 {
                        out.push(p.clone());
                    } else {
                        slots[0] = Some(p.clone());
                    }
                }
                None => {
                    if slots.iter().all(|s| s.is_none()) {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Runs one map packet through the fast path.
    ///
    /// Fields the layout does not know (pass-through metadata the program
    /// never mentions) are preserved verbatim, exactly like the map path:
    /// the result starts from the input packet and only written slots are
    /// merged back.
    pub fn process(&mut self, pkt: Packet) -> Packet {
        let mut flat = FlatPacket::from_packet(&pkt, &self.program.table);
        self.process_flat(&mut flat);
        let mut out = pkt;
        self.merge_back(&flat, &mut out);
        out
    }

    /// Runs a map-packet trace, one packet at a time (the drop-in
    /// replacement for [`Machine::run_trace`](crate::Machine::run_trace)).
    pub fn run_trace(&mut self, trace: &[Packet]) -> Vec<Packet> {
        trace.iter().map(|p| self.process(p.clone())).collect()
    }

    /// Cycle-accurate simulation over map packets: bit-identical to
    /// [`Machine::run_trace_pipelined`](crate::Machine::run_trace_pipelined).
    ///
    /// The pipeline is in-order, so output `i` corresponds to input `i` and
    /// pass-through fields can be merged from the matching input.
    pub fn run_trace_pipelined(&mut self, trace: &[Packet]) -> Vec<Packet> {
        let flat = self.flatten_trace(trace);
        let outs = self.run_trace_pipelined_flat(&flat);
        debug_assert_eq!(outs.len(), trace.len());
        outs.iter()
            .zip(trace)
            .map(|(f, orig)| {
                let mut out = orig.clone();
                self.merge_back(f, &mut out);
                out
            })
            .collect()
    }

    /// Copies every slot this pipeline writes from `flat` into `out` by
    /// name — the deparser step reconstructing a map packet from a flat
    /// run. `process` is `from_packet` → `process_flat` → `merge_back`;
    /// harnesses that time the flat path re-use this to realize outputs
    /// for comparison against the reference path.
    pub fn merge_back(&self, flat: &FlatPacket, out: &mut Packet) {
        let vals = flat.slots();
        for id in &self.program.written_slots {
            out.set(self.program.table.name(*id), vals[id.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{AtomRole, CompiledAtom, Machine};
    use domino_ast::{StateKind, StateVar};
    use domino_ir::Codelet;

    // banzai cannot depend on domino-compiler (it is upstream), so unit
    // tests lower hand-built pipelines; compiled-program coverage lives in
    // the workspace integration suite. This builds the same 2-stage
    // counter pipeline as the `machine` module's tests.
    fn counter_pipeline() -> AtomPipeline {
        use domino_ir::{TacRhs, TacStmt};
        let counter = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Scalar("c".into()),
            },
            TacStmt::Assign {
                dst: "count".into(),
                rhs: TacRhs::Binary(BinOp::Add, Operand::Field("old".into()), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("c".into()),
                src: Operand::Field("count".into()),
            },
        ]);
        let compare = Codelet::new(vec![TacStmt::Assign {
            dst: "flag".into(),
            rhs: TacRhs::Binary(BinOp::Gt, Operand::Field("count".into()), Operand::Const(2)),
        }]);
        AtomPipeline {
            name: "count".into(),
            target_name: "test".into(),
            stages: vec![
                vec![CompiledAtom {
                    codelet: counter,
                    role: AtomRole::Stateless, // role is irrelevant to execution
                }],
                vec![CompiledAtom {
                    codelet: compare,
                    role: AtomRole::Stateless,
                }],
            ],
            state_decls: vec![StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 0,
            }],
            declared_fields: vec!["count".into(), "flag".into()],
            output_map: vec![],
        }
    }

    #[test]
    fn slot_machine_matches_map_machine_on_counter_pipeline() {
        let pipeline = counter_pipeline();
        let trace: Vec<Packet> = (0..40).map(|i| Packet::new().with("seq", i)).collect();
        let mut map = Machine::new(pipeline.clone());
        let mut slot = SlotMachine::compile(&pipeline).unwrap();
        let map_out = map.run_trace(&trace);
        let slot_out = slot.run_trace(&trace);
        assert_eq!(map_out, slot_out);
        assert_eq!(*map.state(), slot.export_state());
    }

    #[test]
    fn slot_pipelined_matches_map_pipelined() {
        let pipeline = counter_pipeline();
        let trace: Vec<Packet> = (0..23).map(|i| Packet::new().with("seq", i)).collect();
        let mut map = Machine::new(pipeline.clone());
        let mut slot = SlotMachine::compile(&pipeline).unwrap();
        assert_eq!(
            map.run_trace_pipelined(&trace),
            slot.run_trace_pipelined(&trace)
        );
        assert_eq!(*map.state(), slot.export_state());
    }

    #[test]
    fn unknown_passthrough_fields_survive_the_fast_path() {
        let pipeline = counter_pipeline();
        let mut slot = SlotMachine::compile(&pipeline).unwrap();
        let out = slot.process(Packet::new().with("mystery", 77));
        assert_eq!(out.get("mystery"), Some(77));
        assert_eq!(out.get("count"), Some(1));
    }

    #[test]
    fn lowering_is_deterministic() {
        let pipeline = counter_pipeline();
        let a = SlotPipeline::lower(&pipeline).unwrap();
        let b = SlotPipeline::lower(&pipeline).unwrap();
        assert_eq!(a, b);
        // Declared fields take the first slots, in declaration order.
        assert_eq!(a.field_table().lookup("count").map(|f| f.index()), Some(0));
        assert_eq!(a.field_table().lookup("flag").map(|f| f.index()), Some(1));
    }

    #[test]
    fn flat_replay_equals_map_edged_run() {
        let pipeline = counter_pipeline();
        let trace: Vec<Packet> = (0..10).map(|i| Packet::new().with("count", i)).collect();
        let mut m1 = SlotMachine::compile(&pipeline).unwrap();
        let mut m2 = SlotMachine::compile(&pipeline).unwrap();
        let map_edged = m1.run_trace(&trace);
        let flat = m2.flatten_trace(&trace);
        let flat_out = m2.run_trace_flat(&flat);
        for (m, f) in map_edged.iter().zip(&flat_out) {
            assert_eq!(*m, f.to_packet());
        }
        assert_eq!(m1.export_state(), m2.export_state());
    }

    #[test]
    fn intrinsic_arity_mismatch_is_rejected_at_lowering() {
        use domino_ir::{TacRhs, TacStmt};
        let mut pipeline = counter_pipeline();
        pipeline.stages[1][0].codelet = Codelet::new(vec![TacStmt::Assign {
            dst: "flag".into(),
            rhs: TacRhs::Intrinsic {
                name: "isqrt".into(),
                args: vec![Operand::Field("count".into()), Operand::Const(1)],
                modulo: None,
            },
        }]);
        let err = SlotPipeline::lower(&pipeline).unwrap_err();
        assert!(err.contains("takes 1 argument(s), got 2"), "{err}");
    }

    #[test]
    fn undeclared_state_is_rejected_at_lowering() {
        let mut pipeline = counter_pipeline();
        pipeline.state_decls.clear();
        let err = SlotPipeline::lower(&pipeline).unwrap_err();
        assert!(err.contains("`c`"), "{err}");
    }

    #[test]
    fn display_shows_layout() {
        let program = SlotPipeline::lower(&counter_pipeline()).unwrap();
        let text = program.to_string();
        assert!(text.contains("field slots"), "{text}");
        assert!(text.contains("pkt.count"), "{text}");
        assert!(text.contains("state[0] = c"), "{text}");
    }
}
