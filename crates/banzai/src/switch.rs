//! The whole-switch view of Figure 1: packets traverse an **ingress
//! pipeline**, are queued, and then traverse an **egress pipeline** before
//! transmission.
//!
//! Table 4 assigns each algorithm to one of the two pipelines (flowlet
//! routing decisions happen at ingress; RCP/HULL/CoDel queue measurements
//! at egress, where sojourn times are known). Both pipelines are ordinary
//! Banzai machines; the queue between them is modeled as a bounded FIFO
//! whose occupancy and sojourn timestamps are exposed to egress programs
//! as packet metadata — exactly the metadata real switch schedulers
//! provide.

use crate::machine::{AtomPipeline, Machine};
use domino_ir::Packet;
use std::collections::VecDeque;

/// A switch: ingress pipeline, a bounded FIFO queue, egress pipeline.
#[derive(Debug, Clone)]
pub struct Switch {
    ingress: Machine,
    egress: Machine,
    queue: VecDeque<(i64, Packet)>,
    capacity: usize,
    /// Cycles taken to transmit one packet from the queue (≥1): values
    /// above 1 create standing queues under load, which is what egress
    /// AQM algorithms exist to observe.
    drain_period: u64,
    now: i64,
    drops: u64,
    /// Metadata field names written for egress programs.
    enqueue_ts_field: String,
    depth_field: String,
}

impl Switch {
    /// Builds a switch from two compiled pipelines and a queue capacity.
    pub fn new(ingress: AtomPipeline, egress: AtomPipeline, capacity: usize) -> Switch {
        Switch {
            ingress: Machine::new(ingress),
            egress: Machine::new(egress),
            queue: VecDeque::new(),
            capacity,
            drain_period: 1,
            now: 0,
            drops: 0,
            enqueue_ts_field: "enq_ts".to_string(),
            depth_field: "qdepth".to_string(),
        }
    }

    /// Sets how many cycles the output link needs per packet (default 1;
    /// larger values model an oversubscribed egress link).
    pub fn with_drain_period(mut self, cycles: u64) -> Switch {
        self.drain_period = cycles.max(1);
        self
    }

    /// Renames the metadata fields exposed to egress programs.
    pub fn with_metadata_fields(mut self, enqueue_ts: &str, depth: &str) -> Switch {
        self.enqueue_ts_field = enqueue_ts.to_string();
        self.depth_field = depth.to_string();
        self
    }

    /// Number of packets dropped at the (full) queue so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Current queue occupancy.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The ingress machine's state (for inspection).
    pub fn ingress_state(&self) -> &domino_ir::StateStore {
        self.ingress.state()
    }

    /// The egress machine's state (for inspection).
    pub fn egress_state(&self) -> &domino_ir::StateStore {
        self.egress.state()
    }

    /// Runs a trace through the whole switch: each input packet is
    /// processed by ingress and enqueued (or dropped if the queue is
    /// full); the queue drains one packet every `drain_period` cycles
    /// through egress. Returns transmitted packets in order.
    ///
    /// One input packet arrives per cycle (the line-rate assumption);
    /// `enq_ts`/`qdepth` metadata (or the configured names) are stamped at
    /// enqueue, and `now` is refreshed at dequeue so egress programs can
    /// compute sojourn times.
    pub fn run_trace(&mut self, trace: &[Packet]) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut inputs = trace.iter();
        loop {
            // Dequeue + egress on drain cycles.
            if self.now as u64 % self.drain_period == 0 {
                if let Some((enq_ts, mut pkt)) = self.queue.pop_front() {
                    pkt.set(&self.enqueue_ts_field, enq_ts as i32);
                    pkt.set("now", self.now as i32);
                    pkt.set(&self.depth_field, self.queue.len() as i32);
                    out.push(self.egress.process(pkt));
                }
            }
            // Admit one packet per cycle.
            match inputs.next() {
                Some(p) => {
                    let processed = self.ingress.process(p.clone());
                    if self.queue.len() >= self.capacity {
                        self.drops += 1;
                    } else {
                        self.queue.push_back((self.now, processed));
                    }
                }
                None => {
                    if self.queue.is_empty() {
                        break;
                    }
                }
            }
            self.now += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The compiler lives upstream of this crate, so unit tests here cover
    // queue mechanics with pass-through pipelines; real-algorithm switch
    // tests live in the workspace integration suite.
    fn passthrough(name: &str) -> AtomPipeline {
        AtomPipeline {
            name: name.into(),
            target_name: "test".into(),
            stages: vec![],
            state_decls: vec![],
            declared_fields: vec![],
            output_map: vec![],
        }
    }

    #[test]
    fn queue_preserves_order_and_count() {
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64);
        let trace: Vec<Packet> = (0..40).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run_trace(&trace);
        assert_eq!(out.len(), 40);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.get("seq"), Some(i as i32));
        }
        assert_eq!(sw.drops(), 0);
    }

    #[test]
    fn oversubscribed_link_builds_queue_and_drops() {
        // Drain every 2 cycles with capacity 8: arrivals outpace the link.
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 8).with_drain_period(2);
        let trace: Vec<Packet> = (0..100).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run_trace(&trace);
        assert!(sw.drops() > 0, "expected drops, got none");
        assert_eq!(out.len() as u64 + sw.drops(), 100);
    }

    #[test]
    fn egress_sees_sojourn_metadata() {
        let mut sw = Switch::new(passthrough("in"), passthrough("out"), 64).with_drain_period(3);
        let trace: Vec<Packet> = (0..30).map(|i| Packet::new().with("seq", i)).collect();
        let out = sw.run_trace(&trace);
        // Sojourn = now - enq_ts grows as the queue builds.
        let sojourns: Vec<i32> = out
            .iter()
            .map(|p| p.get("now").unwrap() - p.get("enq_ts").unwrap())
            .collect();
        assert!(*sojourns.last().unwrap() > sojourns[0], "{sojourns:?}");
        assert!(out.iter().all(|p| p.get("qdepth").is_some()));
    }
}
