//! Diagnostic quality end to end: every class of user error, pushed
//! through the full `compile` entry point, must fail at the right stage
//! with a message a Domino programmer can act on. The all-or-nothing
//! model is only usable if rejections explain themselves.

use banzai::{AtomKind, Target};
use domino_ast::Stage;

fn compile_err(src: &str) -> domino_ast::Diagnostic {
    domino_compiler::compile(src, &Target::banzai(AtomKind::Pairs))
        .expect_err("program must be rejected")
}

#[test]
fn loops_are_rejected_with_line_rate_rationale() {
    let e =
        compile_err("struct P { int a; };\nvoid f(struct P pkt) { while (pkt.a) { pkt.a = 0; } }");
    assert_eq!(e.stage, Stage::Parse);
    assert!(e.message.contains("line rate"), "{e}");
    assert!(e.message.contains("Table 1"), "{e}");
}

#[test]
fn pointer_rejection_names_the_restriction() {
    let e = compile_err("struct P { int a; };\nint *p;\nvoid f(struct P pkt) { }");
    assert!(e.message.contains("pointers are not allowed"), "{e}");
}

#[test]
fn unknown_field_lists_available_fields() {
    let e =
        compile_err("struct P { int sport; int dport; };\nvoid f(struct P pkt) { pkt.sprot = 1; }");
    assert_eq!(e.stage, Stage::Sema);
    assert!(e.message.contains("no field `sprot`"), "{e}");
    assert!(e.message.contains("sport, dport"), "{e}");
}

#[test]
fn conflicting_array_indices_explain_the_memory_constraint() {
    let e = compile_err(
        "struct P { int a; int b; int r; };\nint t[8] = {0};\n\
         void f(struct P pkt) { t[pkt.a] = 1; pkt.r = t[pkt.b]; }",
    );
    assert!(e.message.contains("two different index"), "{e}");
    assert!(e.message.contains("one address per clock cycle"), "{e}");
}

#[test]
fn multiplication_rejection_suggests_alternatives() {
    let e = compile_err(
        "struct P { int a; int b; int r; };\n\
         void f(struct P pkt) { pkt.r = pkt.a * pkt.b; }",
    );
    assert_eq!(e.stage, Stage::CodeGen);
    assert!(e.message.contains("not a line-rate operation"), "{e}");
    assert!(e.message.contains("shifts"), "{e}");
}

#[test]
fn atom_mismatch_names_both_kinds_and_shows_the_codelet() {
    let src = "struct P { int x; };\nint c = 0;\n\
               void f(struct P pkt) { if (pkt.x > 0) { c = c + 1; } }";
    let e = domino_compiler::compile(src, &Target::banzai(AtomKind::Raw)).unwrap_err();
    assert_eq!(e.stage, Stage::CodeGen);
    // Which atom is needed, which the target has, and the offending code.
    assert!(e.message.contains("PRAW"), "{e}");
    assert!(e.message.contains("RAW"), "{e}");
    assert!(e.message.contains("c = "), "{e}");
    // And the same program is accepted one rung up.
    assert!(domino_compiler::compile(src, &Target::banzai(AtomKind::Praw)).is_ok());
}

#[test]
fn missing_intrinsic_unit_names_the_target() {
    let e =
        compile_err("struct P { int a; int r; };\nvoid f(struct P pkt) { pkt.r = isqrt(pkt.a); }");
    assert!(e.message.contains("isqrt"), "{e}");
    assert!(e.message.contains("banzai-pairs"), "{e}");
}

#[test]
fn depth_exhaustion_reports_both_numbers() {
    // A 40-deep dependency chain cannot fit 32 stages.
    let mut body = String::from("pkt.t0 = pkt.a + 1;\n");
    for i in 1..40 {
        body.push_str(&format!("pkt.t{i} = pkt.t{} + 1;\n", i - 1));
    }
    let fields: String = (0..40).map(|i| format!("int t{i};")).collect();
    let src = format!("struct P {{ int a; {fields} }};\nvoid f(struct P pkt) {{ {body} }}");
    let e = compile_err(&src);
    assert!(e.message.contains("40 pipeline stages"), "{e}");
    assert!(e.message.contains("only 32"), "{e}");
}

#[test]
fn local_declarations_point_to_packet_temporaries() {
    let e = compile_err("struct P { int a; };\nvoid f(struct P pkt) { int tmp = pkt.a; }");
    assert!(e.message.contains("packet field as a temporary"), "{e}");
}

#[test]
fn spans_locate_the_error() {
    let e = compile_err("struct P { int a; };\nvoid f(struct P pkt) {\n  pkt.bogus = 1;\n}");
    let rendered = e.to_string();
    // Line 3, where pkt.bogus sits.
    assert!(rendered.contains("3:"), "{rendered}");
}

/// The slot-compiled fast path must keep [`Packet::expect`]'s diagnostic
/// contract: reading a slot no earlier stage wrote panics with the *field
/// name* (recovered through the `FieldTable`'s reverse mapping), never a
/// bare slot index.
#[test]
#[should_panic(expected = "packet field `a` (slot#")]
fn slot_fast_path_names_missing_fields_not_bare_indices() {
    let src = "struct P { int a; int r; };\nvoid f(struct P pkt) { pkt.r = pkt.a + 1; }";
    let pipeline = domino_compiler::compile(src, &Target::banzai(AtomKind::Write)).unwrap();
    let machine = banzai::SlotMachine::compile(&pipeline).unwrap();
    let table = machine.field_table().clone();
    let id = table.lookup("a").expect("declared fields are interned");
    // An empty flat packet: slot `a` exists in the layout but was never
    // written — exactly the compiler-bug condition `expect` guards.
    domino_ir::FlatPacket::new(table).expect(id);
}

/// And the two engines word the diagnostic identically, so a user hitting
/// the panic on either path searches for the same message.
#[test]
fn missing_field_messages_match_across_engines() {
    let src = "struct P { int a; int r; };\nvoid f(struct P pkt) { pkt.r = pkt.a + 1; }";
    let pipeline = domino_compiler::compile(src, &Target::banzai(AtomKind::Write)).unwrap();
    let machine = banzai::SlotMachine::compile(&pipeline).unwrap();
    let table = machine.field_table().clone();
    let id = table.lookup("a").unwrap();

    let panic_message = |f: Box<dyn FnOnce() + std::panic::UnwindSafe>| -> String {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let result = std::panic::catch_unwind(f);
        std::panic::set_hook(prev); // restore before any assertion can panic
        let err = result.expect_err("closure must panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap()
    };

    let flat_msg = panic_message(Box::new(move || {
        domino_ir::FlatPacket::new(table).expect(id);
    }));
    let map_msg = panic_message(Box::new(|| {
        domino_ir::Packet::new().expect("a");
    }));
    assert!(flat_msg.contains("packet field `a`"), "{flat_msg}");
    assert!(map_msg.contains("packet field `a`"), "{map_msg}");
    // Same sentence shape: the flat message only adds the slot number.
    assert!(
        flat_msg.contains("read before any write") && map_msg.contains("read before any write"),
        "flat: {flat_msg}\nmap: {map_msg}"
    );
}

#[test]
fn stage_prefix_tells_users_which_phase_rejected() {
    for (src, needle) in [
        ("@", "error[lex]"),
        ("struct P { int a; };", "error[parse]"),
        (
            "struct P { int a; };\nvoid f(struct P pkt) { pkt.b = 1; }",
            "error[semantic analysis]",
        ),
        (
            "struct P { int a; int r; };\nvoid f(struct P pkt) { pkt.r = pkt.a / 3; }",
            "error[code generation]",
        ),
    ] {
        let e = compile_err(src);
        assert!(e.to_string().starts_with(needle), "{src}: {e}");
    }
}
