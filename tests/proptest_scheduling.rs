//! Property suite for the programmable scheduler (`banzai::pifo`).
//!
//! Three invariants, each over randomized geometry:
//!
//! * a PIFO is a **stable priority queue**: its pop sequence equals a
//!   stable sort of the admitted pushes by `(class, rank)` — arrival
//!   order breaking ties — for any rank distribution, tie density, and
//!   capacity, including under interleaved push/pop against a naive
//!   model;
//! * the sharded scheduling run ([`ShardedSwitch::run_sched_trace`]) is
//!   **bit-identical to serial** — departures, drop counters, and the
//!   state of a departure-order-sensitive egress — across disciplines,
//!   shard counts, capacities, and batch/ring geometries;
//! * **conservation under `SchedFull` pressure**: a rank scheduler at
//!   capacity `c` admits exactly `min(n, c)` of an `n`-packet burst and
//!   books the rest under the pinned `sched_full` reason, with
//!   `offered == transmitted + dropped` in every configuration.

use banzai::{
    AtomKind, AtomPipeline, DropReason, Pifo, SchedKey, SchedSpec, Scheduler, ShardConfig,
    ShardedSwitch, Switch, Target,
};
use domino_ir::Packet;
use proptest::prelude::*;

/// Per-flow counter: `c` is the flow's running packet count, so using it
/// as a rank produces dense cross-flow ties (every flow's k-th packet
/// shares rank k) — maximal tie-break stress.
const COUNTER: &str = "struct P { int flow; int c; };\nint counts[64] = {0};\n\
                       void count(struct P pkt) {\n\
                         counts[pkt.flow] = counts[pkt.flow] + 1;\n\
                         pkt.c = counts[pkt.flow];\n\
                       }";

/// Stateful egress whose outputs are prefix sums over the departure
/// sequence: any order or timing divergence corrupts `sum` and the
/// exported `total_sojourn` register.
const SOJOURN_EGRESS: &str = "struct P { int enq_ts; int now; int qdepth; int soj; int sum; };\n\
                              int total_sojourn = 0;\n\
                              void sojourn(struct P pkt) {\n\
                                pkt.soj = pkt.now - pkt.enq_ts;\n\
                                total_sojourn = total_sojourn + pkt.soj;\n\
                                pkt.sum = total_sojourn;\n\
                              }";

fn counter_pipeline() -> AtomPipeline {
    domino_compiler::compile(COUNTER, &Target::banzai(AtomKind::Raw)).unwrap()
}

fn sojourn_pipeline() -> AtomPipeline {
    domino_compiler::compile(SOJOURN_EGRESS, &Target::banzai(AtomKind::Raw)).unwrap()
}

fn to_trace(flows: &[i32]) -> Vec<Packet> {
    flows
        .iter()
        .map(|&f| {
            Packet::new()
                .with("flow", f)
                .with("cls", f % 3)
                .with("c", 0)
        })
        .collect()
}

fn spec_of(sel: usize) -> SchedSpec {
    match sel {
        0 => SchedSpec::Pifo { rank: "c".into() },
        1 => SchedSpec::Priority {
            class: "cls".into(),
            rank: "c".into(),
        },
        _ => SchedSpec::Shaping { rank: "c".into() },
    }
}

fn capacity_of(sel: usize) -> usize {
    [0, 1, 17, 512][sel]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pop order == stable sort of the admitted pushes. Small key
    /// domains force heavy ties; the capacity draw covers rejection
    /// (bounded PIFOs refuse new pushes rather than displace).
    #[test]
    fn pifo_pop_order_is_the_stable_sort_of_admitted_pushes(
        keys in proptest::collection::vec((0..3i64, 0..6i64), 0..120),
        cap_frac in 0..=100usize,
    ) {
        let capacity = keys.len() * cap_frac / 100;
        let mut pifo: Pifo<usize> = Pifo::bounded(capacity);
        let mut admitted: Vec<(SchedKey, usize)> = Vec::new();
        for (i, &(class, rank)) in keys.iter().enumerate() {
            let key = SchedKey { class, rank };
            if pifo.push(key, i).is_ok() {
                admitted.push((key, i));
            }
        }
        prop_assert_eq!(admitted.len(), keys.len().min(capacity));

        let mut oracle = admitted;
        oracle.sort_by_key(|&(key, _)| key); // sort_by_key is stable: arrival breaks ties
        let mut popped = Vec::new();
        while let Some(entry) = pifo.pop() {
            popped.push(entry);
        }
        prop_assert_eq!(popped, oracle);
    }

    /// Interleaved push/pop against a naive model: at every step the
    /// PIFO pops the globally minimal (class, rank, arrival) element.
    #[test]
    fn pifo_interleaved_ops_match_the_naive_model(
        ops in proptest::collection::vec(
            proptest::option::of((0..4i64, 0..8i64)), 0..200),
    ) {
        let mut pifo: Pifo<u64> = Pifo::unbounded();
        let mut model: Vec<(SchedKey, u64)> = Vec::new();
        let mut seq = 0u64;
        for op in ops {
            match op {
                Some((class, rank)) => {
                    let key = SchedKey { class, rank };
                    prop_assert!(pifo.push(key, seq).is_ok());
                    model.push((key, seq));
                    seq += 1;
                }
                None => {
                    let expected = model
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(key, s))| (key, s))
                        .map(|(i, _)| i)
                        .map(|i| model.remove(i));
                    prop_assert_eq!(pifo.pop(), expected);
                }
            }
            prop_assert_eq!(pifo.len(), model.len());
        }
    }

    /// The sharded scheduling run reproduces the serial one bit-for-bit:
    /// same departures (packets, keys, arrival and departure cycles),
    /// same typed drop counters, same egress register state — for every
    /// discipline, shard count, capacity, and feeder geometry.
    #[test]
    fn sharded_sched_run_is_bit_identical_to_serial(
        flows in proptest::collection::vec(0..64i32, 0..300),
        shards in 1..=6usize,
        spec_sel in 0..3usize,
        cap in 0..=3usize,
        batch in 1..=64usize,
        ring in 1..=8usize,
    ) {
        let ingress = counter_pipeline();
        let egress = sojourn_pipeline();
        let spec = spec_of(spec_sel);
        let capacity = capacity_of(cap);
        let trace = to_trace(&flows);

        let mut serial = Switch::new_slot(&ingress, &egress, capacity)
            .unwrap()
            .with_scheduler(spec.clone());
        let serial_out = serial.run(&trace).scheduled().collect()
        .expect("slice-backed sources cannot fail mid-stream");

        let cfg = ShardConfig::new(shards)
            .with_capacity(capacity)
            .with_batch(batch)
            .with_ring(ring)
            .with_scheduler(spec);
        let mut sharded = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let sharded_out = sharded.run(&trace).scheduled().collect().expect("no faults armed");

        prop_assert_eq!(sharded_out, serial_out);
        prop_assert_eq!(sharded.transmitted(), serial.transmitted());
        prop_assert_eq!(sharded.drop_counters(), serial.drop_counters().clone());
        prop_assert_eq!(
            sharded.export_sched_egress_state().expect("sched ran"),
            serial.export_egress_state()
        );
    }

    /// Conservation under overflow pressure: a burst longer than the
    /// queue admits exactly `capacity` packets; the overflow is booked
    /// under `sched_full` (never `queue_full`) and the ledger balances.
    #[test]
    fn sched_full_pressure_conserves_packets(
        n in 0..250usize,
        shards in 1..=6usize,
        spec_sel in 0..3usize,
        cap in 0..=3usize,
    ) {
        let ingress = counter_pipeline();
        let egress = sojourn_pipeline();
        let capacity = capacity_of(cap);
        let flows: Vec<i32> = (0..n).map(|i| (i % 64) as i32).collect();
        let trace = to_trace(&flows);

        let cfg = ShardConfig::new(shards)
            .with_capacity(capacity)
            .with_scheduler(spec_of(spec_sel));
        let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let out = sw.run(&trace).scheduled().collect().expect("no faults armed");

        let admitted = n.min(capacity);
        prop_assert_eq!(out.len(), admitted);
        prop_assert_eq!(sw.transmitted(), admitted as u64);
        let counters = sw.drop_counters();
        prop_assert_eq!(counters.get(DropReason::SchedFull), (n - admitted) as u64);
        prop_assert_eq!(counters.get(DropReason::QueueFull), 0);
        prop_assert_eq!(sw.transmitted() + sw.drops(), n as u64);
    }
}
