//! End-to-end pcap/pcapng replay through the switch (experiment E14's
//! capture-driven ingestion path).
//!
//! The capture file is just a container: replaying a capture through
//! [`Switch::run_frames`] must be **byte-identical** to feeding the same
//! frames as a slice — same egress frames, same per-verdict parse
//! counters — for every container variant the writer can produce
//! (classic little/big endian, µs/ns timestamps; pcapng Enhanced and
//! Simple packet blocks, either endianness). And a damaged capture is an
//! *ingestion* fault, never a panic: truncation at any byte lands as a
//! typed [`SourceFault`] in the [`FaultReport`], with the books closed
//! over the frames that made it out of the file.

use banzai::wire::ParseVerdict;
use banzai::{AtomPipeline, DropReason, Switch, SwitchError};
use bench::pcap::{self, PcapNgOptions, PcapOptions, PcapReader};
use bench::wiregen::{self, GenOptions};

const SEED: u64 = 0xE14_2016;

fn passthrough_switch(capacity: usize) -> Switch<banzai::Machine> {
    Switch::new(
        AtomPipeline::passthrough("in"),
        AtomPipeline::passthrough("out"),
        capacity,
    )
}

/// The on-disk classic format is pinned surface: readers other than ours
/// (tcpdump, wireshark) must recognize our fixtures, so the global
/// header and record framing may never drift.
#[test]
fn classic_global_header_and_first_record_are_pinned() {
    let frame = vec![0xabu8; 5];
    let le = pcap::write_pcap(std::slice::from_ref(&frame), PcapOptions::default());
    // Magic d4c3b2a1 (LE µs), version 2.4, zone 0, sigfigs 0,
    // snaplen 65535, linktype 1 (Ethernet).
    assert_eq!(
        &le[..24],
        [
            0xd4, 0xc3, 0xb2, 0xa1, 0x02, 0x00, 0x04, 0x00, //
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
            0xff, 0xff, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
        ]
    );
    // First record: ts 0.0, incl_len == orig_len == 5, then the bytes.
    assert_eq!(
        &le[24..40],
        [0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 5, 0, 0, 0]
    );
    assert_eq!(&le[40..45], &frame[..]);
    assert_eq!(le.len(), 45, "classic records are unpadded");

    let be_ns = pcap::write_pcap(
        &[frame],
        PcapOptions {
            big_endian: true,
            nanos: true,
        },
    );
    assert_eq!(&be_ns[..4], [0xa1, 0xb2, 0x3c, 0x4d], "BE ns magic");
    assert_eq!(&be_ns[4..8], [0x00, 0x02, 0x00, 0x04], "version 2.4 BE");
    assert_eq!(&be_ns[20..24], [0x00, 0x00, 0x00, 0x01], "linktype BE");

    // Both probe back to the formats they were written as.
    let r = PcapReader::new(&be_ns[..]).unwrap();
    assert!(r.big_endian() && r.nanos());
}

/// Every container variant replays bit-identically to the raw frame
/// slice, and the parse counters match the `expected_verdicts` oracle —
/// including over a trace with deliberately malformed frames.
#[test]
fn every_capture_variant_replays_identically_through_the_switch() {
    let opts = GenOptions {
        malform_rate: 0.35,
        ..Default::default()
    };
    let wt = wiregen::wire_trace_for("flowlet", 300, SEED, &opts);
    let (accepted, verdicts) = wiregen::expected_verdicts(&wt.frames, &wt.cfg);
    assert!(accepted > 0, "fixture must carry some valid frames");
    assert!(
        verdicts.iter().sum::<u64>() > 0,
        "fixture must carry some malformed frames"
    );

    // The materialized baseline: frames fed as a slice.
    let mut baseline = passthrough_switch(4096);
    let expect = baseline
        .run_frames(&wt.frames, &wt.cfg)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");

    let captures: Vec<(&str, Vec<u8>)> = vec![
        (
            "classic-le-us",
            pcap::write_pcap(&wt.frames, PcapOptions::default()),
        ),
        (
            "classic-be-ns",
            pcap::write_pcap(
                &wt.frames,
                PcapOptions {
                    big_endian: true,
                    nanos: true,
                },
            ),
        ),
        (
            "ng-epb-le",
            pcap::write_pcapng(&wt.frames, PcapNgOptions::default()),
        ),
        (
            "ng-spb-be",
            pcap::write_pcapng(
                &wt.frames,
                PcapNgOptions {
                    big_endian: true,
                    simple_blocks: true,
                },
            ),
        ),
    ];

    for (label, capture) in captures {
        let reader = PcapReader::new(&capture[..]).unwrap();
        let mut sw = passthrough_switch(4096);
        let got = sw
            .run_frames(reader, &wt.cfg)
            .collect()
            .unwrap_or_else(|e| panic!("{label}: intact capture faulted: {e}"));
        assert_eq!(got, expect, "{label}: replay diverged from slice feed");
        assert_eq!(sw.transmitted(), accepted, "{label}");
        for v in ParseVerdict::ALL {
            assert_eq!(
                sw.drop_counters().get(DropReason::Parse(v)),
                verdicts[v.index()],
                "{label}: verdict {v:?} count diverged from the oracle"
            );
        }
    }
}

/// Cutting a capture at *every* byte offset: the reader never panics,
/// and the switch either completes (cut fell on a record boundary) or
/// reports a typed source fault whose books cover exactly the frames the
/// file yielded before the damage.
#[test]
fn truncated_captures_never_panic_and_fault_with_closed_books() {
    let wt = wiregen::wire_trace_for("flowlet", 40, SEED ^ 0x7, &GenOptions::default());
    let capture = pcap::write_pcap(&wt.frames, PcapOptions::default());

    let mut faulted = 0u32;
    let mut completed = 0u32;
    for cut in 0..=capture.len() {
        let Ok(reader) = PcapReader::new(&capture[..cut]) else {
            // Too short to even probe — a typed constructor error is the
            // correct outcome for a damaged header.
            continue;
        };
        let mut sw = passthrough_switch(4096);
        match sw.run_frames(reader, &wt.cfg).collect() {
            Ok(_) => completed += 1,
            Err(SwitchError::Fault(report)) => {
                let src = report
                    .source
                    .as_ref()
                    .expect("a truncated capture is a source fault");
                assert_eq!(
                    report.accounting.offered, src.at,
                    "cut {cut}: offered must equal the frames yielded before the damage"
                );
                assert!(
                    report.accounting.conserved(),
                    "cut {cut}: books out of balance: {}",
                    report.accounting
                );
                faulted += 1;
            }
            Err(other) => panic!("cut {cut}: unexpected error variant: {other}"),
        }
    }
    // Almost every cut lands mid-record; only the 41 record boundaries
    // (and the sub-24-byte prefixes) avoid a fault.
    assert!(faulted > 0, "no cut produced a source fault");
    assert_eq!(
        completed as usize,
        wt.frames.len() + 1,
        "exactly the record boundaries complete cleanly"
    );
}

/// The anatomy of one mid-stream ingestion fault, pinned: frames before
/// the cut are delivered and counted, the fault is typed with the file
/// offset story in its message, and the switch survives to run again.
#[test]
fn mid_record_truncation_is_a_typed_source_fault() {
    let wt = wiregen::wire_trace_for("flowlet", 10, SEED ^ 0x9, &GenOptions::default());
    let capture = pcap::write_pcap(&wt.frames, PcapOptions::default());
    // 24B global header + record 0 (16B header + frame), then 8 bytes of
    // record 1's header — an unreadable torso.
    let cut = 24 + 16 + wt.frames[0].len() + 8;
    assert!(cut < capture.len());

    let reader = PcapReader::new(&capture[..cut]).unwrap();
    let mut sw = passthrough_switch(4096);
    let err = sw
        .run_frames(reader, &wt.cfg)
        .collect()
        .expect_err("a mid-record cut must fault");
    let SwitchError::Fault(report) = err else {
        panic!("expected a fault report, got: {err}");
    };
    let src = report.source.expect("source fault");
    assert_eq!(src.at, 1, "exactly one frame precedes the damage");
    assert!(
        src.error.message().contains("pcap record"),
        "message should blame the record framing: {}",
        src.error.message()
    );
    assert_eq!(report.accounting.offered, 1);
    assert!(report.accounting.conserved());

    // The fault is the stream's, not the switch's: a follow-up replay of
    // the intact capture on the same switch completes.
    let intact = PcapReader::new(&capture[..]).unwrap();
    let out = sw
        .run_frames(intact, &wt.cfg)
        .collect()
        .expect("intact capture after a faulted run");
    assert!(!out.is_empty());
}
