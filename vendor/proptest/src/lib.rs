//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no network access, so this
//! vendored shim implements the subset of proptest's API that the
//! workspace's property tests use: the [`strategy::Strategy`] combinators
//! (`prop_map`, `prop_flat_map`, `prop_filter`, `prop_recursive`, `boxed`),
//! strategies for integer ranges / tuples / vectors / [`strategy::Just`] /
//! [`strategy::Union`], [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], and the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics differ from the real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing input is reported as generated.
//! Each test's random stream is deterministic (seeded from the test's
//! module path), so failures reproduce run-over-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinator/adapter types.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike the real proptest there is no value tree / shrinking: a
    /// strategy is just a reusable sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects generated values failing `pred`, retrying (bounded).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Builds a recursive strategy: `recurse` receives a strategy for
        /// the sub-cases and returns the composite case. Recursion depth is
        /// bounded by `depth`; the remaining parameters (desired size,
        /// expected branch size) are accepted for API compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(cur).boxed();
                cur = Union::new_weighted(vec![(1u32, leaf.clone()), (2, branch)]).boxed();
            }
            cur
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up: {}", self.whence);
        }
    }

    /// Weighted choice between boxed strategies of one value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` pairs.
        pub fn new_weighted<S>(arms: Vec<(u32, S)>) -> Self
        where
            S: Strategy<Value = T> + 'static,
            T: 'static,
        {
            assert!(!arms.is_empty(), "Union of zero strategies");
            Union {
                arms: arms.into_iter().map(|(w, s)| (w, s.boxed())).collect(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "Union with all-zero weights");
            let mut x = rng.below(total);
            for (w, s) in &self.arms {
                if x < *w as u64 {
                    return s.generate(rng);
                }
                x -= *w as u64;
            }
            unreachable!()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in_range(self.start as i64, self.end as i64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.int_in_range(*self.start() as i64, *self.end() as i64 + 1) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A` (`any::<u8>()`, `any::<bool>()`, …).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A size, or half-open range of sizes, for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for vectors of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.int_in_range(self.size.lo as i64, self.size.hi as i64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len)` / `vec(element, lo..hi)` — vectors whose length
    /// is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (50% `Some`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// Wraps `inner`'s values in `Option`, generating `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod test_runner {
    //! Configuration, RNG, and error types used by the [`crate::proptest!`]
    //! macro.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-invocation configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic per-test random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: StdRng,
    }

    impl TestRng {
        /// Seeds the stream from a test identifier (stable run-over-run).
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }

        /// Uniform draw from `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            let zone = u64::MAX - u64::MAX % n;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }

        /// Uniform draw from the half-open `[lo, hi)`.
        pub fn int_in_range(&mut self, lo: i64, hi: i64) -> i64 {
            assert!(lo < hi, "empty range in strategy");
            lo.wrapping_add(self.below((hi - lo) as u64) as i64)
        }
    }

    /// A failed property case (no shrinking in this shim).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
///
/// Failing cases are reported as generated (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", a, b, format!($($fmt)*)),
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` == `{:?}`", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0..10i32, pair in (0..3usize, any::<bool>())) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(pair.0 < 3);
        }

        #[test]
        fn collections_and_unions(
            v in crate::collection::vec(prop_oneof![2 => 0..5i32, 1 => 10..15i32], 1..9),
            o in crate::option::of(Just(7u8)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|x| (0..5).contains(x) || (10..15).contains(x)));
            prop_assert!(o.is_none() || o == Some(7));
        }
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(2, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("recursive_bounds_depth");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 2);
        }
    }
}
