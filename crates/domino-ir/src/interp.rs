//! Reference interpreters.
//!
//! Two interpreters define the *gold* semantics against which everything
//! else is differentially tested:
//!
//! * [`run_ast`] executes the checked AST of a transaction — this is the
//!   paper's programmer-facing model: "the switch invokes the packet
//!   transaction function one packet at a time, with no concurrent packet
//!   processing" (§3.1).
//! * [`run_tac`] executes normalized three-address code the same way.
//!
//! Each compiler pass must preserve `run_ast`/`run_tac` behaviour, and the
//! Banzai pipeline simulator must produce identical per-packet results —
//! that equivalence *is* the packet-transaction guarantee.

use crate::packet::Packet;
use crate::state::StateStore;
use crate::tac::{Operand, StateRef, TacProgram, TacRhs, TacStmt};
use domino_ast::{ast, CheckedProgram, Expr, LValue, Stmt};

/// Executes one packet through a checked transaction (serial semantics).
pub fn step_ast(program: &CheckedProgram, state: &mut StateStore, pkt: &mut Packet) {
    for stmt in &program.body {
        exec_stmt(stmt, state, pkt);
    }
}

/// Runs a whole trace through a checked transaction, returning the packets
/// as they leave the transaction.
pub fn run_ast(program: &CheckedProgram, state: &mut StateStore, trace: &[Packet]) -> Vec<Packet> {
    trace
        .iter()
        .map(|p| {
            let mut pkt = p.clone();
            step_ast(program, state, &mut pkt);
            pkt
        })
        .collect()
}

fn exec_stmt(stmt: &Stmt, state: &mut StateStore, pkt: &mut Packet) {
    match stmt {
        Stmt::Assign { lhs, rhs, .. } => {
            let value = eval_expr(rhs, state, pkt);
            match lhs {
                LValue::Field(_, field, _) => pkt.set(field, value),
                LValue::Scalar(name, _) => state.write_scalar(name, value),
                LValue::Array(name, idx, _) => {
                    let i = eval_expr(idx, state, pkt);
                    state.write_array(name, i, value);
                }
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            if eval_expr(cond, state, pkt) != 0 {
                for s in then_branch {
                    exec_stmt(s, state, pkt);
                }
            } else {
                for s in else_branch {
                    exec_stmt(s, state, pkt);
                }
            }
        }
    }
}

/// Evaluates a resolved expression against packet and state.
pub fn eval_expr(expr: &Expr, state: &StateStore, pkt: &Packet) -> i32 {
    match expr {
        Expr::Int(v, _) => *v,
        Expr::Ident(name, _) => state.read_scalar(name),
        Expr::Field(_, field, _) => pkt.get_or_zero(field),
        Expr::Index(name, idx, _) => {
            let i = eval_expr(idx, state, pkt);
            state.read_array(name, i)
        }
        Expr::Unary(op, e, _) => op.eval(eval_expr(e, state, pkt)),
        Expr::Binary(op, a, b, _) => {
            // Note: Domino has no side effects inside expressions, so
            // short-circuit vs. eager evaluation of &&/|| is unobservable;
            // we evaluate eagerly.
            op.eval(eval_expr(a, state, pkt), eval_expr(b, state, pkt))
        }
        Expr::Ternary(c, t, e, _) => {
            if eval_expr(c, state, pkt) != 0 {
                eval_expr(t, state, pkt)
            } else {
                eval_expr(e, state, pkt)
            }
        }
        Expr::Call(name, args, _) => {
            let vals: Vec<i32> = args.iter().map(|a| eval_expr(a, state, pkt)).collect();
            domino_ast::intrinsics::eval(name, &vals)
        }
    }
}

/// Executes one packet through normalized TAC (serial semantics).
pub fn step_tac(program: &TacProgram, state: &mut StateStore, pkt: &mut Packet) {
    for stmt in &program.stmts {
        exec_tac_stmt(stmt, state, pkt);
    }
}

/// Runs a whole trace through TAC.
pub fn run_tac(program: &TacProgram, state: &mut StateStore, trace: &[Packet]) -> Vec<Packet> {
    trace
        .iter()
        .map(|p| {
            let mut pkt = p.clone();
            step_tac(program, state, &mut pkt);
            pkt
        })
        .collect()
}

/// Executes a single TAC statement (shared with the Banzai atom executor).
pub fn exec_tac_stmt(stmt: &TacStmt, state: &mut StateStore, pkt: &mut Packet) {
    match stmt {
        TacStmt::ReadState { dst, state: sref } => {
            let v = read_state(sref, state, pkt);
            pkt.set(dst, v);
        }
        TacStmt::WriteState { state: sref, src } => {
            let v = eval_operand(src, pkt);
            write_state(sref, v, state, pkt);
        }
        TacStmt::Assign { dst, rhs } => {
            let v = eval_rhs(rhs, pkt);
            pkt.set(dst, v);
        }
    }
}

/// Evaluates a TAC operand against a packet.
pub fn eval_operand(op: &Operand, pkt: &Packet) -> i32 {
    match op {
        Operand::Field(f) => pkt.get_or_zero(f),
        Operand::Const(c) => *c,
    }
}

/// Evaluates a TAC right-hand side against a packet.
pub fn eval_rhs(rhs: &TacRhs, pkt: &Packet) -> i32 {
    match rhs {
        TacRhs::Copy(o) => eval_operand(o, pkt),
        TacRhs::Unary(op, o) => op.eval(eval_operand(o, pkt)),
        TacRhs::Binary(op, a, b) => op.eval(eval_operand(a, pkt), eval_operand(b, pkt)),
        TacRhs::Ternary(c, a, b) => {
            if eval_operand(c, pkt) != 0 {
                eval_operand(a, pkt)
            } else {
                eval_operand(b, pkt)
            }
        }
        TacRhs::Intrinsic { name, args, modulo } => {
            let vals: Vec<i32> = args.iter().map(|a| eval_operand(a, pkt)).collect();
            let raw = domino_ast::intrinsics::eval(name, &vals);
            match modulo {
                Some(m) => ast::BinOp::Mod.eval(raw, *m),
                None => raw,
            }
        }
    }
}

/// Reads through a state reference.
pub fn read_state(sref: &StateRef, state: &StateStore, pkt: &Packet) -> i32 {
    match sref {
        StateRef::Scalar(n) => state.read_scalar(n),
        StateRef::Array { name, index } => state.read_array(name, eval_operand(index, pkt)),
    }
}

/// Writes through a state reference.
pub fn write_state(sref: &StateRef, value: i32, state: &mut StateStore, pkt: &Packet) {
    match sref {
        StateRef::Scalar(n) => state.write_scalar(n, value),
        StateRef::Array { name, index } => state.write_array(name, eval_operand(index, pkt), value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ast::sema::parse_and_check;
    use domino_ast::{BinOp, StateKind, StateVar};

    const FLOWLET: &str = r#"
#define NUM_FLOWLETS 8000
#define THRESHOLD 5
#define NUM_HOPS 10
struct Packet { int sport; int dport; int new_hop; int arrival; int next_hop; int id; };
int last_time[NUM_FLOWLETS] = {0};
int saved_hop[NUM_FLOWLETS] = {0};
void flowlet(struct Packet pkt) {
  pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;
  pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;
  if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {
    saved_hop[pkt.id] = pkt.new_hop;
  }
  last_time[pkt.id] = pkt.arrival;
  pkt.next_hop = saved_hop[pkt.id];
}
"#;

    #[test]
    fn counter_increments_across_packets() {
        let p = parse_and_check(
            "struct P { int x; };\nint c = 0;\nvoid f(struct P pkt) { c = c + 1; pkt.x = c; }",
        )
        .unwrap();
        let mut state = StateStore::from_decls(&p.state);
        let trace = vec![Packet::new().with("x", 0); 3];
        let out = run_ast(&p, &mut state, &trace);
        assert_eq!(out[0].get("x"), Some(1));
        assert_eq!(out[1].get("x"), Some(2));
        assert_eq!(out[2].get("x"), Some(3));
        assert_eq!(state.read_scalar("c"), 3);
    }

    #[test]
    fn if_else_takes_correct_branch() {
        let p = parse_and_check(
            "struct P { int a; int r; };\n\
             void f(struct P pkt) { if (pkt.a > 10) { pkt.r = 1; } else { pkt.r = 2; } }",
        )
        .unwrap();
        let mut state = StateStore::from_decls(&p.state);
        let out = run_ast(
            &p,
            &mut state,
            &[Packet::new().with("a", 11), Packet::new().with("a", 10)],
        );
        assert_eq!(out[0].get("r"), Some(1));
        assert_eq!(out[1].get("r"), Some(2));
    }

    #[test]
    fn flowlet_same_burst_keeps_hop_new_flowlet_rehashes() {
        let p = parse_and_check(FLOWLET).unwrap();
        let mut state = StateStore::from_decls(&p.state);
        // Two closely spaced packets of the same flow: same next_hop.
        let mk = |arrival| {
            Packet::new()
                .with("sport", 42)
                .with("dport", 80)
                .with("arrival", arrival)
                .with("new_hop", 0)
                .with("next_hop", 0)
                .with("id", 0)
        };
        let out = run_ast(&p, &mut state, &[mk(100), mk(102), mk(200)]);
        // packet 2 arrives 2 ticks later (< THRESHOLD=5): same hop as pkt 1.
        assert_eq!(out[0].get("next_hop"), out[1].get("next_hop"));
        // packet 3 arrives 98 ticks later: flowlet expired, hop re-chosen
        // with a different hash3(arrival) — overwhelmingly likely distinct.
        assert_eq!(
            out[2].get("next_hop"),
            Some(domino_ast::intrinsics::eval("hash3", &[42, 80, 200]) % 10)
        );
    }

    #[test]
    fn tac_interpreter_runs_flanked_counter() {
        // pkt.tmp = c; c = pkt.tmp + 1  written as TAC:
        let prog = TacProgram {
            name: "count".into(),
            declared_fields: vec!["x".into()],
            state: vec![StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 0,
            }],
            stmts: vec![
                TacStmt::ReadState {
                    dst: "tmp".into(),
                    state: StateRef::Scalar("c".into()),
                },
                TacStmt::Assign {
                    dst: "tmp2".into(),
                    rhs: TacRhs::Binary(
                        BinOp::Add,
                        Operand::Field("tmp".into()),
                        Operand::Const(1),
                    ),
                },
                TacStmt::WriteState {
                    state: StateRef::Scalar("c".into()),
                    src: Operand::Field("tmp2".into()),
                },
                TacStmt::Assign {
                    dst: "x".into(),
                    rhs: TacRhs::Copy(Operand::Field("tmp2".into())),
                },
            ],
        };
        let mut state = StateStore::from_decls(&prog.state);
        let out = run_tac(&prog, &mut state, &vec![Packet::new(); 4]);
        assert_eq!(out[3].get("x"), Some(4));
        assert_eq!(state.read_scalar("c"), 4);
    }

    #[test]
    fn intrinsic_modulo_folding_matches_explicit_mod() {
        let pkt = Packet::new().with("a", 17).with("b", 23);
        let folded = TacRhs::Intrinsic {
            name: "hash2".into(),
            args: vec![Operand::Field("a".into()), Operand::Field("b".into())],
            modulo: Some(100),
        };
        let raw = TacRhs::Intrinsic {
            name: "hash2".into(),
            args: vec![Operand::Field("a".into()), Operand::Field("b".into())],
            modulo: None,
        };
        assert_eq!(eval_rhs(&folded, &pkt), eval_rhs(&raw, &pkt) % 100);
    }

    #[test]
    fn ast_short_circuit_equivalence() {
        // && evaluates both sides eagerly; with no side effects the result
        // matches C's short-circuit semantics.
        let p = parse_and_check(
            "struct P { int a; int b; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.a && pkt.b; }",
        )
        .unwrap();
        let mut state = StateStore::from_decls(&p.state);
        let out = run_ast(
            &p,
            &mut state,
            &[
                Packet::new().with("a", 0).with("b", 9),
                Packet::new().with("a", 3).with("b", 9),
                Packet::new().with("a", 3).with("b", 0),
            ],
        );
        assert_eq!(out[0].get("r"), Some(0));
        assert_eq!(out[1].get("r"), Some(1));
        assert_eq!(out[2].get("r"), Some(0));
    }
}
