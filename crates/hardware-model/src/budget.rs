//! Chip-level resource budgeting (§5.2 "Resource limits").
//!
//! Reproduces the paper's arithmetic for deriving the targets' per-stage
//! atom counts and total area overhead from the per-atom areas:
//!
//! * 200 mm² switching chip (the smallest in Gibb et al.),
//! * 7% acceptable overhead for stateless atoms (RMT's action-unit
//!   budget) → ~10,000 stateless atoms → ~300/stage over 32 stages,
//! * stateful atoms limited to ~10/stage by memory-bank ports, costing
//!   ~1% area,
//! * crossbars scaled from RMT's 6 mm² for 224 action units → ~8 mm²
//!   (~4%),
//! * total: ~12% overhead.

use crate::circuits::{stateful_circuit, stateless_circuit};
use banzai::AtomKind;

/// Chip area assumed throughout §5.2, in µm² (200 mm²).
pub const CHIP_AREA_UM2: f64 = 200.0e6;

/// Pipeline stages (as in RMT).
pub const STAGES: usize = 32;

/// Acceptable stateless-atom area overhead (fraction of chip area).
pub const STATELESS_OVERHEAD_BUDGET: f64 = 0.07;

/// Stateful atoms per stage after the memory-bank argument.
pub const STATEFUL_PER_STAGE: usize = 10;

/// RMT's crossbar: 6 mm² for a 32-stage pipeline with 224 action units.
const RMT_CROSSBAR_UM2: f64 = 6.0e6;
const RMT_ACTION_UNITS: f64 = 224.0;

/// The §5.2 budget for one concrete target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Stateless atoms affordable chip-wide within the 7% budget.
    pub stateless_total: usize,
    /// Stateless atoms per stage.
    pub stateless_per_stage: usize,
    /// Stateful atoms per stage.
    pub stateful_per_stage: usize,
    /// Area fraction consumed by stateless atoms.
    pub stateless_overhead: f64,
    /// Area fraction consumed by stateful atoms.
    pub stateful_overhead: f64,
    /// Area fraction consumed by the operand/result crossbars.
    pub crossbar_overhead: f64,
}

impl Budget {
    /// Total area overhead fraction.
    pub fn total_overhead(&self) -> f64 {
        self.stateless_overhead + self.stateful_overhead + self.crossbar_overhead
    }
}

/// Computes the §5.2 budget for a target built around `kind`.
pub fn compute(kind: AtomKind) -> Budget {
    let stateless_area = stateless_circuit().area();
    let stateless_total = (CHIP_AREA_UM2 * STATELESS_OVERHEAD_BUDGET / stateless_area) as usize;
    let stateless_per_stage = stateless_total / STAGES;

    let stateful_area = stateful_circuit(kind).area();
    let stateful_total = STATEFUL_PER_STAGE * STAGES;
    let stateful_overhead = stateful_area * stateful_total as f64 / CHIP_AREA_UM2;

    // Crossbar scales with total atom count relative to RMT's 224 action
    // units at 6 mm².
    let atoms_per_stage = stateless_per_stage + STATEFUL_PER_STAGE;
    let crossbar = RMT_CROSSBAR_UM2 * (atoms_per_stage as f64 / RMT_ACTION_UNITS);
    let crossbar_overhead = crossbar / CHIP_AREA_UM2;

    Budget {
        stateless_total,
        stateless_per_stage,
        stateful_per_stage: STATEFUL_PER_STAGE,
        stateless_overhead: stateless_total as f64 * stateless_area / CHIP_AREA_UM2,
        stateful_overhead,
        crossbar_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateless_count_is_about_ten_thousand() {
        let b = compute(AtomKind::Pairs);
        assert!(
            (8_000..=12_000).contains(&b.stateless_total),
            "{}",
            b.stateless_total
        );
        // ~300 per stage (the paper's figure).
        assert!(
            (250..=380).contains(&b.stateless_per_stage),
            "{}",
            b.stateless_per_stage
        );
    }

    #[test]
    fn stateful_overhead_is_about_one_percent() {
        let b = compute(AtomKind::Pairs);
        assert!(b.stateful_overhead < 0.02, "{}", b.stateful_overhead);
    }

    #[test]
    fn crossbar_overhead_is_about_four_percent() {
        let b = compute(AtomKind::Pairs);
        assert!(
            b.crossbar_overhead > 0.02 && b.crossbar_overhead < 0.06,
            "{}",
            b.crossbar_overhead
        );
    }

    #[test]
    fn total_overhead_under_fifteen_percent() {
        // The paper's headline: < 15% estimated chip area overhead.
        for kind in AtomKind::ALL {
            let b = compute(kind);
            assert!(
                b.total_overhead() < 0.15,
                "{kind:?}: {:.1}%",
                b.total_overhead() * 100.0
            );
        }
    }

    #[test]
    fn cheaper_atoms_cost_less_stateful_area() {
        let write = compute(AtomKind::Write);
        let pairs = compute(AtomKind::Pairs);
        assert!(write.stateful_overhead < pairs.stateful_overhead);
    }
}
