//! Streaming ingestion: run a switch from a packet *source* instead of
//! a materialized trace — a generator for bounded-memory synthesis, a
//! pcap capture for replay — and handle a source that dies mid-stream.
//!
//! The contract throughout: streamed and materialized runs are
//! bit-identical. The source only changes where packets come from,
//! never what the switch does with them.
//!
//! Run with: `cargo run --example streaming_replay`

use banzai::AtomPipeline;
use bench::pcap::{self, PcapOptions, PcapReader};
use bench::wiregen::{self, GenOptions};
use domino::prelude::*;

fn main() {
    // A per-flow packet counter as the ingress transaction.
    let src = r#"
        struct Packet { int flow; int c; };
        int counts[64] = {0};
        void count(struct Packet pkt) {
            counts[pkt.flow] = counts[pkt.flow] + 1;
            pkt.c = counts[pkt.flow];
        }
    "#;
    let target = Target::banzai(AtomKind::Raw);
    let ingress = domino::compile(src, &target).expect("compiles at line rate");
    let egress = AtomPipeline::passthrough("egress");

    // --- 1. Generator source: a million packets, none materialized. ---
    //
    // `GenSource` pulls one packet at a time, so memory stays flat no
    // matter how long the stream runs. `for_each` is the streaming
    // terminal: packets go to the sink as they depart, never buffered.
    const N: u64 = 1_000_000;
    let mut sw = Switch::new_slot(&ingress, &egress, 512).unwrap();
    let source = GenSource::with_len(N, |i| {
        Some(Packet::new().with("flow", (i % 64) as i32).with("c", 0))
    });
    let mut busiest = 0i32;
    let stats = sw
        .run(source)
        .for_each(|pkt| busiest = busiest.max(pkt.expect("c")))
        .expect("generator sources cannot fail");
    println!(
        "generator: offered {} transmitted {} — busiest flow count {}",
        stats.offered, stats.transmitted, busiest
    );

    // --- 2. Capture replay: write a pcap, stream it back. ---
    //
    // `wiregen` synthesizes real Ethernet/IPv4/TCP frames for the
    // flowlet workload; `write_pcap` wraps them in a classic capture;
    // `PcapReader` lends each frame back out without copying the file's
    // payload bytes. Replay is byte-identical to feeding the frames as
    // a slice.
    let wt = wiregen::wire_trace_for("flowlet", 200, 7, &GenOptions::default());
    let capture = pcap::write_pcap(&wt.frames, PcapOptions::default());
    println!(
        "capture:   {} frames, {} bytes on disk",
        wt.frames.len(),
        capture.len()
    );

    let mut replay = Switch::new(
        AtomPipeline::passthrough("in"),
        AtomPipeline::passthrough("out"),
        4096,
    );
    let reader = PcapReader::new(&capture[..]).unwrap();
    let replayed = reader_run(&mut replay, reader, &wt.cfg);

    let mut direct = Switch::new(
        AtomPipeline::passthrough("in"),
        AtomPipeline::passthrough("out"),
        4096,
    );
    let expected = direct
        .run_frames(&wt.frames, &wt.cfg)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");
    assert_eq!(replayed, expected, "replay must match the slice feed");
    println!(
        "replay:    {} frames egressed, identical to slice feed",
        replayed.len()
    );

    // --- 3. A source that dies mid-stream is a typed fault. ---
    //
    // `FailAfter` wraps any source and cuts it after a set number of
    // items — a stand-in for a yanked cable or truncated file. The run
    // ends with a `FaultReport` whose `source` names the failure and
    // whose books still balance over what was ingested.
    let mut faulty = Switch::new_slot(&ingress, &egress, 512).unwrap();
    let doomed = FailAfter::new(
        GenSource::with_len(N, |i| {
            Some(Packet::new().with("flow", (i % 64) as i32).with("c", 0))
        }),
        1000,
        "link reset",
    );
    match faulty.run(doomed).for_each(|_| {}) {
        Err(SwitchError::Fault(report)) => {
            let src = report.source.expect("a source fault");
            println!(
                "fault:     source failed after {} packets ({}), books conserved: {}",
                src.at,
                src.error.message(),
                report.accounting.conserved()
            );
        }
        other => panic!("expected a source fault, got {other:?}"),
    }
}

fn reader_run(
    sw: &mut Switch<Machine>,
    reader: PcapReader<&[u8]>,
    cfg: &WireConfig,
) -> Vec<Vec<u8>> {
    sw.run_frames(reader, cfg)
        .collect()
        .expect("intact captures replay cleanly")
}
