//! X2/X3 — multi-transaction policies end to end: guards as match keys
//! (§3.3) and composition by concatenation (§3.4), compiled and executed
//! on one Banzai machine.

use banzai::{AtomKind, Machine, Target};
use domino_compiler::policy::Policy;
use domino_ir::Packet;

/// A realistic switch program: heavy-hitter counting on web traffic,
/// DNS TTL tracking on DNS traffic, and a global packet counter — three
/// algorithms, one pipeline.
#[test]
fn three_guarded_algorithms_share_one_pipeline() {
    let web_counter = domino_ast::parse_and_check(
        "struct P { int dport; int domain; int ttl; int bucket; };\n\
         int web_hits[256] = {0};\n\
         void web(struct P pkt) {\n\
           pkt.bucket = hash2(pkt.domain, pkt.dport) % 256;\n\
           web_hits[pkt.bucket] = web_hits[pkt.bucket] + 1;\n\
         }",
    )
    .unwrap();
    let dns_tracker = domino_ast::parse_and_check(
        "struct P { int dport; int domain; int ttl; int d; };\n\
         int last_ttl[256] = {0};\n\
         void dns(struct P pkt) {\n\
           pkt.d = hash2(pkt.domain, 7) % 256;\n\
           last_ttl[pkt.d] = pkt.ttl;\n\
         }",
    )
    .unwrap();
    let global = domino_ast::parse_and_check(
        "struct P { int dport; };\nint total = 0;\n\
         void count_all(struct P pkt) { total = total + 1; }",
    )
    .unwrap();

    let merged = Policy::new()
        .add_guarded("pkt.dport == 80", web_counter)
        .unwrap()
        .add_guarded("pkt.dport == 53", dns_tracker)
        .unwrap()
        .add(global)
        .compose("switch_program")
        .unwrap();

    let pipeline =
        domino_compiler::compile_checked(merged, &Target::banzai(AtomKind::Praw)).unwrap();
    pipeline.validate_state_confinement().unwrap();
    let mut machine = Machine::new(pipeline);

    let mk = |dport: i32, domain: i32, ttl: i32| {
        Packet::new()
            .with("dport", dport)
            .with("domain", domain)
            .with("ttl", ttl)
            .with("bucket", 0)
            .with("d", 0)
    };
    // 3 web packets, 2 DNS packets, 1 other.
    for p in [
        mk(80, 1, 0),
        mk(80, 2, 0),
        mk(53, 9, 300),
        mk(80, 1, 0),
        mk(53, 9, 60),
        mk(22, 0, 0),
    ] {
        machine.process(p);
    }

    // The global counter saw everything.
    assert_eq!(machine.state().read_scalar("total"), 6);
    // Web hits: 3 packets across the hash buckets.
    let web_total: i32 = match machine.state().get("web_hits").unwrap() {
        domino_ir::StateValue::Array(v) => v.iter().sum(),
        _ => unreachable!(),
    };
    assert_eq!(web_total, 3);
    // The DNS tracker holds the *latest* TTL for domain 9.
    let d = domino_ast::intrinsics::eval("hash2", &[9, 7]) % 256;
    assert_eq!(machine.state().read_array("last_ttl", d), 60);
}

/// The composed program is still a single packet transaction: pipelined
/// execution with packets in flight is observably identical to serial
/// execution.
#[test]
fn composed_policy_keeps_transactional_semantics() {
    let a = domino_ast::parse_and_check(
        "struct P { int port; int x; };\nint seen_a = 0;\n\
         void fa(struct P pkt) { seen_a = seen_a + pkt.x; }",
    )
    .unwrap();
    let b = domino_ast::parse_and_check(
        "struct P { int port; int x; };\nint seen_b = 0;\n\
         void fb(struct P pkt) { if (pkt.x > 3) { seen_b = seen_b + 1; } }",
    )
    .unwrap();
    let merged = Policy::new()
        .add_guarded("pkt.port > 1000", a)
        .unwrap()
        .add(b)
        .compose("combo")
        .unwrap();
    let pipeline =
        domino_compiler::compile_checked(merged, &Target::banzai(AtomKind::Praw)).unwrap();

    let trace: Vec<Packet> = (0..200)
        .map(|i| Packet::new().with("port", (i * 37) % 2048).with("x", i % 9))
        .collect();
    let mut m1 = Machine::new(pipeline.clone());
    let mut m2 = Machine::new(pipeline);
    assert_eq!(m1.run_trace(&trace), m2.run_trace_pipelined(&trace));
    assert_eq!(m1.state(), m2.state());
}

/// Guard evaluation order (§3.4): when guards overlap, bodies execute in
/// policy order within one transaction — later transactions observe
/// earlier ones' state updates is NOT possible here (disjoint state), but
/// field effects are ordered.
#[test]
fn overlapping_guards_execute_in_policy_order() {
    let first = domino_ast::parse_and_check(
        "struct P { int v; int tag; };\n\
         void one(struct P pkt) { pkt.tag = 1; }",
    )
    .unwrap();
    let second = domino_ast::parse_and_check(
        "struct P { int v; int tag; };\n\
         void two(struct P pkt) { pkt.tag = pkt.tag + 10; }",
    )
    .unwrap();
    let merged = Policy::new()
        .add_guarded("pkt.v > 0", first)
        .unwrap()
        .add_guarded("pkt.v > 0", second)
        .unwrap()
        .compose("ordered")
        .unwrap();
    let pipeline =
        domino_compiler::compile_checked(merged, &Target::banzai(AtomKind::Write)).unwrap();
    let mut machine = Machine::new(pipeline);
    // Both guards match: tag = 1 then += 10.
    let out = machine.process(Packet::new().with("v", 5).with("tag", 0));
    assert_eq!(out.get("tag"), Some(11));
    // Neither matches: tag untouched.
    let out = machine.process(Packet::new().with("v", -1).with("tag", 7));
    assert_eq!(out.get("tag"), Some(7));
}
