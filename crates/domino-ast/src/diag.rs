//! Compiler diagnostics.
//!
//! All front-end and middle-end failures are reported as [`Diagnostic`]s.
//! The Domino compiler is *all-or-nothing* (§4 of the paper): a program
//! either compiles to a line-rate pipeline or is rejected with one of these
//! diagnostics; there is no degraded mode.

use crate::span::Span;
use std::fmt;

/// Which stage of the compiler rejected the program.
///
/// The stage matters to users: a [`Stage::CodeGen`] rejection means the
/// program is valid Domino but exceeds what the chosen Banzai target can do
/// at line rate, while earlier stages indicate a malformed program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Tokenization errors (stray characters, malformed literals).
    Lex,
    /// Grammar errors.
    Parse,
    /// Violations of the Domino language restrictions (Table 1) and name or
    /// type errors.
    Sema,
    /// Failures while normalizing or pipelining (should be rare; indicates
    /// an internal inconsistency surfaced to the user).
    Transform,
    /// The program cannot run at line rate on the chosen target: a codelet
    /// does not map to any atom, or resource limits are exceeded.
    CodeGen,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Sema => "semantic analysis",
            Stage::Transform => "transform",
            Stage::CodeGen => "code generation",
        };
        f.write_str(s)
    }
}

/// A single compiler diagnostic: a message, the stage that produced it, and
/// an optional source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stage that rejected the program.
    pub stage: Stage,
    /// Human-readable description of the problem.
    pub message: String,
    /// Location in the original Domino source, when known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a diagnostic with a source location.
    pub fn new(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            stage,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a diagnostic with no source location (e.g. whole-program
    /// resource-limit violations).
    pub fn global(stage: Stage, message: impl Into<String>) -> Self {
        Diagnostic {
            stage,
            message: message.into(),
            span: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) if !span.is_synthesized() => {
                write!(f, "error[{}] at {}: {}", self.stage, span, self.message)
            }
            _ => write!(f, "error[{}]: {}", self.stage, self.message),
        }
    }
}

impl std::error::Error for Diagnostic {}

/// Convenience alias used throughout the front end.
pub type Result<T> = std::result::Result<T, Diagnostic>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_span() {
        let d = Diagnostic::new(Stage::Sema, "unknown field `foo`", Span::new(3, 6, 2, 5));
        assert_eq!(
            d.to_string(),
            "error[semantic analysis] at 2:5: unknown field `foo`"
        );
    }

    #[test]
    fn display_without_span() {
        let d = Diagnostic::global(Stage::CodeGen, "pipeline depth 40 exceeds limit 32");
        assert_eq!(
            d.to_string(),
            "error[code generation]: pipeline depth 40 exceeds limit 32"
        );
    }

    #[test]
    fn synthesized_span_renders_like_global() {
        let d = Diagnostic::new(Stage::Transform, "oops", Span::SYNTH);
        assert_eq!(d.to_string(), "error[transform]: oops");
    }
}
