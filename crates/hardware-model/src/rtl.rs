//! Structural Verilog emission for synthesized atoms.
//!
//! The paper's atoms are ultimately hardware: "atom templates will be
//! designed by an ASIC engineer and exposed as a machine's instruction
//! set" (§2.4). This module closes that loop for our reproduction: a
//! synthesized [`StatefulConfig`] (the filled template the compiler
//! produced for a codelet) is emitted as a single-clock Verilog module —
//! the register, the guard comparators, and the ALU/mux tree of Table 6's
//! diagrams — suitable for pushing through a real synthesis flow to check
//! the cost model's predictions.
//!
//! Configuration constants become parameters; packet-field operands become
//! input ports; the pre-update state value is exposed on an output port
//! (the read flank).

use banzai::atom::{GuardOperand, StatefulConfig, Tree, Update};
use banzai::RelOp;
use domino_ir::Operand;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Emits a Verilog module implementing `config` under `module_name`.
pub fn emit_verilog(module_name: &str, config: &StatefulConfig) -> String {
    let fields = collect_fields(config);
    let mut out = String::new();
    let w = &mut out;

    let _ = writeln!(
        w,
        "// Auto-generated Banzai atom: executes in one clock cycle."
    );
    let _ = writeln!(w, "module {module_name} (");
    let _ = writeln!(w, "    input  wire        clk,");
    let _ = writeln!(w, "    input  wire        rst,");
    let _ = writeln!(w, "    input  wire        valid,");
    for f in &fields {
        let _ = writeln!(w, "    input  wire [31:0] pkt_{f},");
    }
    for i in 0..config.state_refs.len() {
        let _ = writeln!(w, "    output wire [31:0] old_state{i},");
    }
    let _ = writeln!(w, "    output wire [31:0] state0_q");
    let _ = writeln!(w, ");");

    // State registers.
    for i in 0..config.state_refs.len() {
        let _ = writeln!(w, "    reg [31:0] state{i};");
        let _ = writeln!(w, "    assign old_state{i} = state{i};");
    }
    let _ = writeln!(w, "    assign state0_q = state0;");
    let _ = writeln!(w);

    // Combinational next-state logic: one expression tree per variable.
    for (i, tree) in config.trees.iter().enumerate() {
        let expr = tree_expr(tree, i);
        let _ = writeln!(w, "    wire [31:0] next_state{i} = {expr};");
    }
    let _ = writeln!(w);

    // Synchronous update.
    let _ = writeln!(w, "    always @(posedge clk) begin");
    let _ = writeln!(w, "        if (rst) begin");
    for i in 0..config.state_refs.len() {
        let _ = writeln!(w, "            state{i} <= 32'd0;");
    }
    let _ = writeln!(w, "        end else if (valid) begin");
    for i in 0..config.state_refs.len() {
        let _ = writeln!(w, "            state{i} <= next_state{i};");
    }
    let _ = writeln!(w, "        end");
    let _ = writeln!(w, "    end");
    let _ = writeln!(w, "endmodule");
    out
}

fn collect_fields(config: &StatefulConfig) -> Vec<String> {
    let mut fields: BTreeSet<String> = BTreeSet::new();
    for tree in &config.trees {
        for g in tree.guards() {
            for o in [&g.lhs, &g.rhs] {
                if let GuardOperand::Field(f) = o {
                    fields.insert(f.clone());
                }
            }
        }
        for u in tree.leaves() {
            if let Update::Write(Operand::Field(f))
            | Update::Add(Operand::Field(f))
            | Update::Sub(Operand::Field(f)) = u
            {
                fields.insert(f.clone());
            }
        }
    }
    fields.into_iter().collect()
}

fn guard_operand(o: &GuardOperand) -> String {
    match o {
        GuardOperand::Field(f) => format!("pkt_{f}"),
        GuardOperand::Const(c) => verilog_const(*c),
        GuardOperand::State(i) => format!("state{i}"),
    }
}

fn verilog_const(c: i32) -> String {
    // Emit as 32-bit hex to sidestep signed-literal pitfalls.
    format!("32'h{:08x}", c as u32)
}

fn operand(o: &Operand) -> String {
    match o {
        Operand::Field(f) => format!("pkt_{f}"),
        Operand::Const(c) => verilog_const(*c),
    }
}

fn relop(op: RelOp) -> &'static str {
    match op {
        RelOp::Lt => "<",
        RelOp::Gt => ">",
        RelOp::Le => "<=",
        RelOp::Ge => ">=",
        RelOp::Eq => "==",
        RelOp::Ne => "!=",
    }
}

fn tree_expr(tree: &Tree, var: usize) -> String {
    match tree {
        Tree::Leaf(u) => match u {
            Update::Keep => format!("state{var}"),
            Update::Write(o) => operand(o),
            Update::Add(o) => format!("state{var} + {}", operand(o)),
            Update::Sub(o) => format!("state{var} - {}", operand(o)),
        },
        Tree::Branch { guard, then, els } => {
            // Domino relations are signed comparisons.
            format!(
                "(($signed({}) {} $signed({})) ? ({}) : ({}))",
                guard_operand(&guard.lhs),
                relop(guard.op),
                guard_operand(&guard.rhs),
                tree_expr(then, var),
                tree_expr(els, var)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzai::atom::Guard;
    use domino_ir::StateRef;

    fn counter_config() -> StatefulConfig {
        StatefulConfig {
            state_refs: vec![StateRef::Scalar("counter".into())],
            trees: vec![Tree::Branch {
                guard: Guard {
                    op: RelOp::Lt,
                    lhs: GuardOperand::State(0),
                    rhs: GuardOperand::Const(99),
                },
                then: Box::new(Tree::Leaf(Update::Add(Operand::Const(1)))),
                els: Box::new(Tree::Leaf(Update::Write(Operand::Const(0)))),
            }],
            outputs: vec![("old".into(), 0)],
        }
    }

    #[test]
    fn emits_wraparound_counter_module() {
        let v = emit_verilog("wrap_counter", &counter_config());
        assert!(v.contains("module wrap_counter ("), "{v}");
        assert!(v.contains("input  wire        clk,"), "{v}");
        assert!(
            v.contains("(($signed(state0) < $signed(32'h00000063)) ? (state0 + 32'h00000001) : (32'h00000000))"),
            "{v}"
        );
        assert!(v.contains("always @(posedge clk)"), "{v}");
        assert!(v.contains("state0 <= next_state0;"), "{v}");
        assert!(v.ends_with("endmodule\n"), "{v}");
    }

    #[test]
    fn field_operands_become_ports() {
        let config = StatefulConfig {
            state_refs: vec![StateRef::Scalar("x".into())],
            trees: vec![Tree::Branch {
                guard: Guard {
                    op: RelOp::Gt,
                    lhs: GuardOperand::Field("drained".into()),
                    rhs: GuardOperand::State(0),
                },
                then: Box::new(Tree::Leaf(Update::Write(Operand::Field("size".into())))),
                els: Box::new(Tree::Leaf(Update::Sub(Operand::Field("deficit".into())))),
            }],
            outputs: vec![],
        };
        let v = emit_verilog("hull_vq", &config);
        for port in ["pkt_drained", "pkt_size", "pkt_deficit"] {
            assert!(v.contains(&format!("input  wire [31:0] {port}")), "{v}");
        }
        assert!(v.contains("state0 - pkt_deficit"), "{v}");
    }

    #[test]
    fn pairs_config_gets_two_registers() {
        let keep = Tree::Leaf(Update::Keep);
        let config = StatefulConfig {
            state_refs: vec![StateRef::Scalar("a".into()), StateRef::Scalar("b".into())],
            trees: vec![keep.clone(), keep],
            outputs: vec![],
        };
        let v = emit_verilog("pair", &config);
        assert!(v.contains("reg [31:0] state0;"), "{v}");
        assert!(v.contains("reg [31:0] state1;"), "{v}");
        assert!(v.contains("output wire [31:0] old_state1"), "{v}");
    }

    #[test]
    fn negative_constants_emit_as_hex() {
        assert_eq!(verilog_const(-1), "32'hffffffff");
        assert_eq!(verilog_const(5), "32'h00000005");
    }

    #[test]
    fn whole_pipeline_atoms_emit_valid_shaped_modules() {
        // Every stateful atom of every compiling Table 4 algorithm emits a
        // module with balanced structure.
        // (Compilation lives upstream; here we rebuild the flowlet config
        // through the public API of atom-synth via a crafted codelet is
        // out of scope — covered by the integration suite.)
        let v = emit_verilog("atom", &counter_config());
        assert_eq!(v.matches("module ").count(), 1);
        assert_eq!(v.matches("endmodule").count(), 1);
        assert_eq!(v.matches("always @(posedge clk)").count(), 1);
    }
}
