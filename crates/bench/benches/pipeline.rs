//! Criterion benchmarks.
//!
//! * `compile/*` — experiment E8 (§5.3 "Compilation time"): end-to-end
//!   compilation of every Table 4 algorithm for its least-expressive
//!   target. The paper's times are SKETCH-dominated (up to 10 s for the
//!   CoDel worst case); ours measure the synthesis-search substitute.
//! * `reject/codel` — the §5.3 worst case: proving CoDel unmappable on
//!   the most expressive target.
//! * `simulate/*` — Banzai machine throughput (packets/second through the
//!   compiled flowlet and CMS pipelines, serial and cycle-accurate).
//! * `synthesize/*` — codelet→atom mapping alone.

use banzai::{AtomKind, Machine, Target};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for algo in algorithms::TABLE4.iter() {
        let Some(kind) = algo.paper.least_atom else {
            continue;
        };
        let target = Target::banzai(kind);
        group.bench_function(algo.name, |b| {
            b.iter(|| domino_compiler::compile(black_box(algo.source), &target).unwrap())
        });
    }
    group.finish();
}

fn bench_reject(c: &mut Criterion) {
    let algo = algorithms::by_name("codel").unwrap();
    let target = Target::banzai(AtomKind::Pairs);
    c.bench_function("reject/codel_on_pairs", |b| {
        b.iter(|| {
            let err = domino_compiler::compile(black_box(algo.source), &target);
            assert!(err.is_err());
        })
    });
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for (name, mode_pipelined) in [
        ("flowlet_serial", false),
        ("flowlet_pipelined", true),
        ("heavy_hitters_serial", false),
    ] {
        let algo_name = if name.starts_with("flowlet") {
            "flowlet"
        } else {
            "heavy_hitters"
        };
        let algo = algorithms::by_name(algo_name).unwrap();
        let target = Target::banzai(algo.paper.least_atom.unwrap());
        let pipeline = domino_compiler::compile(algo.source, &target).unwrap();
        let trace = algo.trace(1000, 42);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut machine = Machine::new(pipeline.clone());
                if mode_pipelined {
                    black_box(machine.run_trace_pipelined(&trace))
                } else {
                    black_box(machine.run_trace(&trace))
                }
            })
        });
    }
    group.finish();
}

fn bench_synthesize(c: &mut Criterion) {
    // The flowlet saved_hop codelet: read + guarded write.
    let compilation =
        domino_compiler::normalize(algorithms::by_name("flowlet").unwrap().source).unwrap();
    let codelet = compilation
        .pvsm
        .iter_codelets()
        .map(|(_, cl)| cl)
        .find(|cl| cl.state_vars().contains("saved_hop"))
        .unwrap()
        .clone();
    c.bench_function("synthesize/saved_hop_praw", |b| {
        b.iter(|| atom_synth::map_to_kind(black_box(&codelet), AtomKind::Praw).unwrap())
    });
}

criterion_group!(
    benches,
    bench_compile,
    bench_reject,
    bench_simulate,
    bench_synthesize
);
criterion_main!(benches);
