//! Experiment E5 — regenerate **Figure 3b**: the 6-stage Banzai pipeline
//! for flowlet switching, stateful atoms marked.

use banzai::{AtomKind, Target};

fn main() {
    let algo = algorithms::by_name("flowlet").expect("flowlet registered");
    let pipeline = domino_compiler::compile(algo.source, &Target::banzai(AtomKind::Praw))
        .expect("flowlet compiles on the PRAW target (Table 4)");
    println!("Figure 3b — flowlet switching compiled to a Banzai pipeline\n");
    print!("{pipeline}");
    println!(
        "\nPaper: 6 stages, stateful atoms at stages 2 (last_time) and 5 (saved_hop),\n\
         next-hop selection in stage 6. Measured: {} stages, max {} atoms/stage.",
        pipeline.depth(),
        pipeline.max_atoms_per_stage()
    );
}
