//! Hand-rolled pcap and pcapng capture I/O — no external dependencies.
//!
//! The reader ([`PcapReader`]) understands both on-disk capture formats
//! in both byte orders and exposes the frames as a streaming
//! [`FrameSource`], so a capture file can drive `Switch::run_frames` /
//! `ShardedSwitch::run_frames` directly — the replay path of the E14
//! streaming-ingestion experiment. The writers emit deterministic
//! fixtures (synthetic timestamps derived from the frame index) for the
//! golden and round-trip suites, typically fed from
//! [`wiregen`](crate::wiregen) traces.
//!
//! Robustness contract:
//!
//! * **Truncation never panics.** A capture cut at *any* byte boundary
//!   yields the frames that fit, then either a clean end-of-stream (cut
//!   exactly between records) or a typed [`SourceError`] naming what was
//!   cut short — which the switch's fault machinery turns into a
//!   [`banzai::FaultReport`] with closed books.
//! * **Structural corruption is a typed error**, not UB: unknown magics,
//!   impossible block lengths, and mismatched pcapng trailers all surface
//!   as [`SourceError`]s.
//! * **pcapng endianness is per-section**: a new Section Header Block
//!   mid-file may switch byte order, and the reader follows it.
//!
//! Format notes (classic pcap): a 24-byte global header whose magic
//! (`0xa1b2c3d4` µs / `0xa1b23c4d` ns, either byte order) fixes the file
//! endianness and timestamp unit, then per-record 16-byte headers
//! (`ts_sec`, `ts_frac`, `incl_len`, `orig_len`). pcapng: 4-byte-aligned
//! blocks carrying their total length twice (head and trailer); frames
//! live in Enhanced (0x6) and Simple (0x3) Packet Blocks, interfaces in
//! IDBs (0x1); unknown block types are skipped.

use banzai::{FrameSource, Rewind, SourceError};

/// Classic pcap magic, microsecond timestamps (native byte order).
pub const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Classic pcap magic, nanosecond timestamps.
pub const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// pcapng Section Header Block type (a byte-order palindrome).
pub const SHB_TYPE: u32 = 0x0a0d_0d0a;
/// pcapng byte-order magic, written in the section's endianness.
pub const BOM: u32 = 0x1a2b_3c4d;
/// pcapng Interface Description Block type.
pub const IDB_TYPE: u32 = 0x0000_0001;
/// pcapng Simple Packet Block type.
pub const SPB_TYPE: u32 = 0x0000_0003;
/// pcapng Enhanced Packet Block type.
pub const EPB_TYPE: u32 = 0x0000_0006;
/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// How a classic pcap fixture is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcapOptions {
    /// Emit big-endian headers (the reader handles either).
    pub big_endian: bool,
    /// Use the nanosecond-timestamp magic.
    pub nanos: bool,
}

/// How a pcapng fixture is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcapNgOptions {
    /// Emit big-endian sections.
    pub big_endian: bool,
    /// Carry frames in Simple Packet Blocks instead of Enhanced ones.
    pub simple_blocks: bool,
}

fn put_u32(out: &mut Vec<u8>, v: u32, big: bool) {
    out.extend_from_slice(&if big {
        v.to_be_bytes()
    } else {
        v.to_le_bytes()
    });
}

fn put_u16(out: &mut Vec<u8>, v: u16, big: bool) {
    out.extend_from_slice(&if big {
        v.to_be_bytes()
    } else {
        v.to_le_bytes()
    });
}

/// Serializes frames as a classic pcap capture (LINKTYPE_ETHERNET,
/// snaplen 65535). Timestamps are synthetic and deterministic: frame `i`
/// is stamped `i` timestamp units after epoch.
pub fn write_pcap<F: AsRef<[u8]>>(frames: &[F], opts: PcapOptions) -> Vec<u8> {
    let big = opts.big_endian;
    let unit: u64 = if opts.nanos { 1_000_000_000 } else { 1_000_000 };
    let mut out =
        Vec::with_capacity(24 + frames.iter().map(|f| 16 + f.as_ref().len()).sum::<usize>());
    put_u32(
        &mut out,
        if opts.nanos { MAGIC_NSEC } else { MAGIC_USEC },
        big,
    );
    put_u16(&mut out, 2, big); // version major
    put_u16(&mut out, 4, big); // version minor
    put_u32(&mut out, 0, big); // thiszone
    put_u32(&mut out, 0, big); // sigfigs
    put_u32(&mut out, 65_535, big); // snaplen
    put_u32(&mut out, LINKTYPE_ETHERNET, big);
    for (i, frame) in frames.iter().enumerate() {
        let frame = frame.as_ref();
        let ts = i as u64;
        put_u32(&mut out, (ts / unit) as u32, big);
        put_u32(&mut out, (ts % unit) as u32, big);
        put_u32(&mut out, frame.len() as u32, big); // incl_len
        put_u32(&mut out, frame.len() as u32, big); // orig_len
        out.extend_from_slice(frame);
    }
    out
}

/// Serializes frames as a pcapng capture: one section (SHB + Ethernet
/// IDB) holding one packet block per frame, 4-byte-aligned with trailing
/// lengths per the spec. Timestamps (EPB only) are the frame index.
pub fn write_pcapng<F: AsRef<[u8]>>(frames: &[F], opts: PcapNgOptions) -> Vec<u8> {
    let big = opts.big_endian;
    let mut out = Vec::new();

    // Section Header Block: type, length, BOM, version 1.0, section
    // length unknown (-1), trailing length.
    put_u32(&mut out, SHB_TYPE, big);
    put_u32(&mut out, 28, big);
    put_u32(&mut out, BOM, big);
    put_u16(&mut out, 1, big);
    put_u16(&mut out, 0, big);
    out.extend_from_slice(&[0xff; 8]);
    put_u32(&mut out, 28, big);

    // Interface Description Block: linktype, reserved, snaplen.
    put_u32(&mut out, IDB_TYPE, big);
    put_u32(&mut out, 20, big);
    put_u16(&mut out, LINKTYPE_ETHERNET as u16, big);
    put_u16(&mut out, 0, big);
    put_u32(&mut out, 0, big);
    put_u32(&mut out, 20, big);

    for (i, frame) in frames.iter().enumerate() {
        let frame = frame.as_ref();
        let pad = (4 - frame.len() % 4) % 4;
        if opts.simple_blocks {
            let total = (16 + frame.len() + pad) as u32;
            put_u32(&mut out, SPB_TYPE, big);
            put_u32(&mut out, total, big);
            put_u32(&mut out, frame.len() as u32, big); // orig_len
            out.extend_from_slice(frame);
            out.extend_from_slice(&vec![0u8; pad]);
            put_u32(&mut out, total, big);
        } else {
            let total = (32 + frame.len() + pad) as u32;
            put_u32(&mut out, EPB_TYPE, big);
            put_u32(&mut out, total, big);
            put_u32(&mut out, 0, big); // interface id
            put_u32(&mut out, 0, big); // ts high
            put_u32(&mut out, i as u32, big); // ts low
            put_u32(&mut out, frame.len() as u32, big); // captured len
            put_u32(&mut out, frame.len() as u32, big); // original len
            out.extend_from_slice(frame);
            out.extend_from_slice(&vec![0u8; pad]);
            put_u32(&mut out, total, big);
        }
    }
    out
}

/// Which capture format the reader detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Classic pcap with the probed endianness and timestamp unit.
    Classic { big: bool, nanos: bool },
    /// pcapng; endianness is per-section, tracked while iterating.
    Ng,
}

/// A streaming reader over an in-memory pcap or pcapng capture,
/// implementing [`FrameSource`] so it plugs straight into
/// `run_frames(..)` on either switch.
///
/// ```
/// use banzai::FrameSource;
/// use bench::pcap::{write_pcap, PcapOptions, PcapReader};
///
/// let frames: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![4, 5]];
/// let capture = write_pcap(&frames, PcapOptions::default());
/// let mut rd = PcapReader::new(capture).unwrap();
/// assert_eq!(rd.next_frame().unwrap(), Some(&[1u8, 2, 3][..]));
/// assert_eq!(rd.next_frame().unwrap(), Some(&[4u8, 5][..]));
/// assert_eq!(rd.next_frame().unwrap(), None);
/// ```
#[derive(Debug, Clone)]
pub struct PcapReader<B: AsRef<[u8]>> {
    data: B,
    cursor: usize,
    format: Format,
    /// Current section endianness (pcapng; fixed for classic).
    big: bool,
}

impl<B: AsRef<[u8]>> PcapReader<B> {
    /// Probes the capture's format and prepares to stream its frames.
    /// Errors on unknown magics or a classic header too short to hold
    /// its fixed fields.
    pub fn new(data: B) -> Result<PcapReader<B>, SourceError> {
        let bytes = data.as_ref();
        let Some(magic) = bytes.get(..4) else {
            return Err(SourceError::new(
                "capture too short to hold a pcap or pcapng magic",
            ));
        };
        let (format, big) = match *magic {
            [0x0a, 0x0d, 0x0d, 0x0a] => (Format::Ng, false),
            [0xa1, 0xb2, 0xc3, 0xd4] => (
                Format::Classic {
                    big: true,
                    nanos: false,
                },
                true,
            ),
            [0xd4, 0xc3, 0xb2, 0xa1] => (
                Format::Classic {
                    big: false,
                    nanos: false,
                },
                false,
            ),
            [0xa1, 0xb2, 0x3c, 0x4d] => (
                Format::Classic {
                    big: true,
                    nanos: true,
                },
                true,
            ),
            [0x4d, 0x3c, 0xb2, 0xa1] => (
                Format::Classic {
                    big: false,
                    nanos: true,
                },
                false,
            ),
            _ => {
                return Err(SourceError::new(format!(
                    "unrecognized capture magic {:02x}{:02x}{:02x}{:02x}",
                    magic[0], magic[1], magic[2], magic[3]
                )))
            }
        };
        if matches!(format, Format::Classic { .. }) && bytes.len() < 24 {
            return Err(SourceError::new(format!(
                "classic pcap global header truncated: {} of 24 bytes",
                bytes.len()
            )));
        }
        Ok(PcapReader {
            data,
            cursor: match format {
                Format::Classic { .. } => 24,
                Format::Ng => 0,
            },
            format,
            big,
        })
    }

    /// Whether the capture (or its current pcapng section) is big-endian.
    pub fn big_endian(&self) -> bool {
        self.big
    }

    /// Whether a classic capture carries nanosecond timestamps (always
    /// `false` for pcapng, whose EPB resolution is per-interface).
    pub fn nanos(&self) -> bool {
        matches!(self.format, Format::Classic { nanos: true, .. })
    }

    fn u32_at(&self, off: usize) -> u32 {
        let b: [u8; 4] = self.data.as_ref()[off..off + 4]
            .try_into()
            .expect("bounds checked");
        if self.big {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }

    fn next_classic(&mut self) -> Result<Option<&[u8]>, SourceError> {
        let len = self.data.as_ref().len();
        if self.cursor >= len {
            return Ok(None);
        }
        let remaining = len - self.cursor;
        if remaining < 16 {
            return Err(SourceError::new(format!(
                "pcap record header truncated at offset {}: {remaining} of 16 bytes",
                self.cursor
            )));
        }
        let incl_len = self.u32_at(self.cursor + 8) as usize;
        if incl_len > remaining - 16 {
            return Err(SourceError::new(format!(
                "pcap record at offset {} claims {incl_len} bytes but only {} remain",
                self.cursor,
                remaining - 16
            )));
        }
        let start = self.cursor + 16;
        self.cursor = start + incl_len;
        Ok(Some(&self.data.as_ref()[start..start + incl_len]))
    }

    fn next_ng(&mut self) -> Result<Option<&[u8]>, SourceError> {
        loop {
            let len = self.data.as_ref().len();
            if self.cursor >= len {
                return Ok(None);
            }
            let remaining = len - self.cursor;
            if remaining < 12 {
                return Err(SourceError::new(format!(
                    "pcapng block header truncated at offset {}: {remaining} of 12 bytes",
                    self.cursor
                )));
            }
            // The SHB type is a byte-order palindrome, so it is
            // recognizable before the section endianness is known — and
            // it is what *sets* the endianness, possibly mid-file.
            let type_bytes: [u8; 4] = self.data.as_ref()[self.cursor..self.cursor + 4]
                .try_into()
                .expect("bounds checked");
            if type_bytes == [0x0a, 0x0d, 0x0d, 0x0a] {
                let bom: [u8; 4] = self.data.as_ref()[self.cursor + 8..self.cursor + 12]
                    .try_into()
                    .expect("bounds checked");
                self.big = match bom {
                    [0x1a, 0x2b, 0x3c, 0x4d] => true,
                    [0x4d, 0x3c, 0x2b, 0x1a] => false,
                    _ => {
                        return Err(SourceError::new(format!(
                            "pcapng section header at offset {} has invalid byte-order magic",
                            self.cursor
                        )))
                    }
                };
            }
            let block_type = self.u32_at(self.cursor);
            let total = self.u32_at(self.cursor + 4) as usize;
            if total < 12 || !total.is_multiple_of(4) {
                return Err(SourceError::new(format!(
                    "pcapng block at offset {} has impossible length {total}",
                    self.cursor
                )));
            }
            if total > remaining {
                return Err(SourceError::new(format!(
                    "pcapng block at offset {} claims {total} bytes but only {remaining} remain",
                    self.cursor
                )));
            }
            let trailer = self.u32_at(self.cursor + total - 4) as usize;
            if trailer != total {
                return Err(SourceError::new(format!(
                    "pcapng block at offset {} has mismatched trailing length ({trailer} != {total})",
                    self.cursor
                )));
            }
            let block = self.cursor;
            self.cursor += total;
            match block_type {
                EPB_TYPE => {
                    if total < 32 {
                        return Err(SourceError::new(format!(
                            "pcapng enhanced packet block at offset {block} too short ({total} bytes)"
                        )));
                    }
                    let cap_len = self.u32_at(block + 20) as usize;
                    if 28 + cap_len + 4 > total {
                        return Err(SourceError::new(format!(
                            "pcapng enhanced packet block at offset {block} claims {cap_len} \
                             captured bytes that do not fit its {total}-byte block"
                        )));
                    }
                    return Ok(Some(&self.data.as_ref()[block + 28..block + 28 + cap_len]));
                }
                SPB_TYPE => {
                    if total < 16 {
                        return Err(SourceError::new(format!(
                            "pcapng simple packet block at offset {block} too short ({total} bytes)"
                        )));
                    }
                    // A SPB records only the original length; the stored
                    // data is capped by the block size (snaplen applies).
                    let orig_len = self.u32_at(block + 8) as usize;
                    let stored = orig_len.min(total - 16);
                    return Ok(Some(&self.data.as_ref()[block + 12..block + 12 + stored]));
                }
                // Section headers, interface descriptions, statistics,
                // name resolution, anything future: skipped.
                _ => {}
            }
        }
    }
}

impl<B: AsRef<[u8]>> FrameSource for PcapReader<B> {
    fn next_frame(&mut self) -> Result<Option<&[u8]>, SourceError> {
        match self.format {
            Format::Classic { .. } => self.next_classic(),
            Format::Ng => self.next_ng(),
        }
    }
}

impl<B: AsRef<[u8]>> Rewind for PcapReader<B> {
    fn rewind(&mut self) {
        match self.format {
            Format::Classic { big, .. } => {
                self.cursor = 24;
                self.big = big;
            }
            Format::Ng => {
                self.cursor = 0;
                // The leading SHB re-establishes section endianness.
            }
        }
    }
}

/// Synthesizes the seeded wire trace of a named Table 4 algorithm
/// workload and packages it as a classic little-endian pcap — the one
/// fixture the end-to-end replay tests drive: `(trailer schema, capture
/// bytes)`.
pub fn pcap_fixture_for(
    name: &str,
    n: usize,
    seed: u64,
    gen_opts: &crate::wiregen::GenOptions,
) -> (banzai::wire::WireConfig, Vec<u8>) {
    let wt = crate::wiregen::wire_trace_for(name, n, seed, gen_opts);
    let capture = write_pcap(&wt.frames, PcapOptions::default());
    (wt.cfg, capture)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Vec<u8>> {
        // Deliberately varied lengths so pcapng padding paths all fire.
        (0..7u8)
            .map(|i| {
                (0..(10 + i as usize * 3 + i as usize % 4))
                    .map(|b| b as u8 ^ i)
                    .collect()
            })
            .collect()
    }

    fn drain<B: AsRef<[u8]>>(rd: &mut PcapReader<B>) -> Result<Vec<Vec<u8>>, SourceError> {
        let mut out = Vec::new();
        while let Some(f) = rd.next_frame()? {
            out.push(f.to_vec());
        }
        Ok(out)
    }

    #[test]
    fn classic_roundtrips_both_endiannesses_and_units() {
        let frames = sample_frames();
        for big_endian in [false, true] {
            for nanos in [false, true] {
                let opts = PcapOptions { big_endian, nanos };
                let capture = write_pcap(&frames, opts);
                let mut rd = PcapReader::new(&capture[..]).unwrap();
                assert_eq!(rd.big_endian(), big_endian);
                assert_eq!(rd.nanos(), nanos);
                assert_eq!(drain(&mut rd).unwrap(), frames, "{opts:?}");
                rd.rewind();
                assert_eq!(drain(&mut rd).unwrap(), frames, "rewind {opts:?}");
            }
        }
    }

    #[test]
    fn pcapng_roundtrips_epb_and_spb_both_endiannesses() {
        let frames = sample_frames();
        for big_endian in [false, true] {
            for simple_blocks in [false, true] {
                let opts = PcapNgOptions {
                    big_endian,
                    simple_blocks,
                };
                let capture = write_pcapng(&frames, opts);
                let mut rd = PcapReader::new(&capture[..]).unwrap();
                assert_eq!(drain(&mut rd).unwrap(), frames, "{opts:?}");
                rd.rewind();
                assert_eq!(drain(&mut rd).unwrap(), frames, "rewind {opts:?}");
            }
        }
    }

    #[test]
    fn pcapng_sections_may_switch_endianness_mid_file() {
        let frames = sample_frames();
        let mut capture = write_pcapng(&frames[..3], PcapNgOptions::default());
        capture.extend_from_slice(&write_pcapng(
            &frames[3..],
            PcapNgOptions {
                big_endian: true,
                ..PcapNgOptions::default()
            },
        ));
        let mut rd = PcapReader::new(&capture[..]).unwrap();
        assert_eq!(drain(&mut rd).unwrap(), frames);
    }

    #[test]
    fn pcapng_unknown_blocks_are_skipped() {
        let frames = sample_frames();
        let mut capture = write_pcapng(&frames[..2], PcapNgOptions::default());
        // Splice in an unknown block (type 0x0bad) and a statistics-ish
        // block, then two more frames.
        for fake_type in [0x0000_0badu32, 0x0000_0005] {
            put_u32(&mut capture, fake_type, false);
            put_u32(&mut capture, 20, false);
            capture.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0]);
            put_u32(&mut capture, 20, false);
        }
        let tail = write_pcapng(&frames[2..4], PcapNgOptions::default());
        capture.extend_from_slice(&tail[28 + 20..]); // skip SHB + IDB
        let mut rd = PcapReader::new(&capture[..]).unwrap();
        assert_eq!(drain(&mut rd).unwrap(), frames[..4].to_vec());
    }

    #[test]
    fn truncation_at_every_byte_boundary_never_panics() {
        let frames = sample_frames();
        let captures = [
            write_pcap(&frames, PcapOptions::default()),
            write_pcap(
                &frames,
                PcapOptions {
                    big_endian: true,
                    nanos: true,
                },
            ),
            write_pcapng(&frames, PcapNgOptions::default()),
            write_pcapng(
                &frames,
                PcapNgOptions {
                    big_endian: true,
                    simple_blocks: true,
                },
            ),
        ];
        for capture in &captures {
            for cut in 0..=capture.len() {
                match PcapReader::new(&capture[..cut]) {
                    Ok(mut rd) => {
                        // Drain to completion: frames that fit, then a
                        // clean end or a typed truncation error.
                        let drained = drain(&mut rd);
                        if cut == capture.len() {
                            assert_eq!(drained.unwrap(), frames);
                        } else if let Ok(got) = drained {
                            assert!(got.len() <= frames.len());
                            assert_eq!(got, frames[..got.len()].to_vec());
                        }
                    }
                    Err(_) => assert!(cut < 24, "probe failed only on tiny prefixes"),
                }
            }
        }
    }

    #[test]
    fn structural_corruption_is_a_typed_error() {
        assert!(PcapReader::new(&b"not a capture"[..]).is_err());

        // Classic record claiming more bytes than remain.
        let mut capture = write_pcap(&sample_frames()[..1], PcapOptions::default());
        let incl_off = 24 + 8;
        capture[incl_off..incl_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut rd = PcapReader::new(&capture[..]).unwrap();
        let err = rd.next_frame().unwrap_err();
        assert!(err.message().contains("remain"), "{err}");

        // pcapng block with a mismatched trailing length.
        let mut capture = write_pcapng(&sample_frames()[..1], PcapNgOptions::default());
        let last = capture.len() - 4;
        capture[last..].copy_from_slice(&77u32.to_le_bytes());
        let mut rd = PcapReader::new(&capture[..]).unwrap();
        let err = drain(&mut rd).unwrap_err();
        assert!(err.message().contains("mismatched"), "{err}");
    }

    #[test]
    fn wiregen_fixture_replays_through_the_reader_byte_identical() {
        let opts = crate::wiregen::GenOptions {
            malform_rate: 0.2,
            ..crate::wiregen::GenOptions::default()
        };
        let wt = crate::wiregen::wire_trace_for("flowlet", 120, 9, &opts);
        for capture in [
            write_pcap(&wt.frames, PcapOptions::default()),
            write_pcapng(&wt.frames, PcapNgOptions::default()),
        ] {
            let mut rd = PcapReader::new(capture).unwrap();
            assert_eq!(drain(&mut rd).unwrap(), wt.frames);
        }
    }
}
