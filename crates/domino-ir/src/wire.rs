//! Canonical field names for byte-level wire headers.
//!
//! The map-based [`Packet`](crate::Packet) was born parsed: Banzai (§2.2)
//! assumes a parser already turned bytes into named 32-bit fields. When the
//! wire front-end (`banzai::wire`) decodes a real byte frame, the names it
//! assigns to header slots become part of the contract between the parser,
//! the compiled pipeline's [`FieldTable`], and the
//! deparser — a Domino program that says `pkt.sport` must hit the same slot
//! the parser filled from TCP bytes 0..2. This module pins those names in
//! one place, upstream of both the parser and the execution engines.
//!
//! Naming rules:
//!
//! * every field is at most 32 bits wide so it fits a packet slot; wider
//!   header regions are split (`eth_dst_hi`/`eth_dst_lo` for the 48-bit
//!   MAC addresses, 16 + 32 bits);
//! * multi-byte fields are **big-endian** on the wire (network order) and
//!   host-order `i32` in the slot — the parser is the only place byte
//!   order is ever handled;
//! * the L4 source/destination ports are named `sport`/`dport` for both
//!   TCP and UDP, matching the names the paper's Table 4 programs already
//!   use — so `flowlet.domino` and friends run unmodified on parsed wire
//!   traffic.

use crate::layout::{FieldId, FieldTable};

/// Field name constants, grouped by header.
pub mod fields {
    /// Ethernet destination MAC, high 16 bits (bytes 0..2).
    pub const ETH_DST_HI: &str = "eth_dst_hi";
    /// Ethernet destination MAC, low 32 bits (bytes 2..6).
    pub const ETH_DST_LO: &str = "eth_dst_lo";
    /// Ethernet source MAC, high 16 bits (bytes 6..8).
    pub const ETH_SRC_HI: &str = "eth_src_hi";
    /// Ethernet source MAC, low 32 bits (bytes 8..12).
    pub const ETH_SRC_LO: &str = "eth_src_lo";
    /// EtherType of the L3 payload (the inner type when a VLAN tag is
    /// present).
    pub const ETH_TYPE: &str = "eth_type";

    /// 802.1Q tag control information (PCP/DEI/VID), present only on
    /// tagged frames.
    pub const VLAN_TCI: &str = "vlan_tci";

    /// IPv4 type of service / DSCP+ECN byte.
    pub const IP_TOS: &str = "ip_tos";
    /// IPv4 total length (header + payload, in bytes).
    pub const IP_LEN: &str = "ip_len";
    /// IPv4 identification.
    pub const IP_ID: &str = "ip_id";
    /// IPv4 flags and fragment offset (one 16-bit word).
    pub const IP_FRAG: &str = "ip_frag";
    /// IPv4 time to live.
    pub const IP_TTL: &str = "ip_ttl";
    /// IPv4 protocol number (6 = TCP, 17 = UDP).
    pub const IP_PROTO: &str = "ip_proto";
    /// IPv4 header checksum (carried opaque; see the wire module docs).
    pub const IP_CSUM: &str = "ip_csum";
    /// IPv4 source address (32 bits, may wrap negative as an `i32`).
    pub const IP_SRC: &str = "ip_src";
    /// IPv4 destination address.
    pub const IP_DST: &str = "ip_dst";

    /// L4 source port (TCP or UDP) — the name Table 4 programs use.
    pub const SPORT: &str = "sport";
    /// L4 destination port (TCP or UDP).
    pub const DPORT: &str = "dport";

    /// TCP sequence number.
    pub const TCP_SEQ: &str = "tcp_seq";
    /// TCP acknowledgment number.
    pub const TCP_ACK: &str = "tcp_ack";
    /// TCP flags byte (FIN/SYN/RST/PSH/ACK/URG/ECE/CWR).
    pub const TCP_FLAGS: &str = "tcp_flags";
    /// TCP window size.
    pub const TCP_WIN: &str = "tcp_win";
    /// TCP checksum (carried opaque).
    pub const TCP_CSUM: &str = "tcp_csum";
    /// TCP urgent pointer.
    pub const TCP_URG: &str = "tcp_urg";

    /// UDP datagram length.
    pub const UDP_LEN: &str = "udp_len";
    /// UDP checksum (carried opaque).
    pub const UDP_CSUM: &str = "udp_csum";
}

/// Every canonical header field name, in parse order.
pub const HEADER_FIELDS: [&str; 25] = [
    fields::ETH_DST_HI,
    fields::ETH_DST_LO,
    fields::ETH_SRC_HI,
    fields::ETH_SRC_LO,
    fields::ETH_TYPE,
    fields::VLAN_TCI,
    fields::IP_TOS,
    fields::IP_LEN,
    fields::IP_ID,
    fields::IP_FRAG,
    fields::IP_TTL,
    fields::IP_PROTO,
    fields::IP_CSUM,
    fields::IP_SRC,
    fields::IP_DST,
    fields::SPORT,
    fields::DPORT,
    fields::TCP_SEQ,
    fields::TCP_ACK,
    fields::TCP_FLAGS,
    fields::TCP_WIN,
    fields::TCP_CSUM,
    fields::TCP_URG,
    fields::UDP_LEN,
    fields::UDP_CSUM,
];

/// True if `name` is a canonical wire-header field (as opposed to packet
/// metadata or a program temporary). The wire encoder uses this to decide
/// which trace fields travel in real headers and which ride in the
/// metadata trailer.
pub fn is_header_field(name: &str) -> bool {
    HEADER_FIELDS.contains(&name)
}

/// Interns every canonical header field into `table`, returning the ids in
/// [`HEADER_FIELDS`] order — the layout a standalone wire parser (one not
/// bound to a compiled pipeline's table) fills.
pub fn intern_header_fields(table: &mut FieldTable) -> Vec<FieldId> {
    HEADER_FIELDS.iter().map(|f| table.intern(f)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for f in HEADER_FIELDS {
            assert!(seen.insert(f), "duplicate wire field `{f}`");
        }
    }

    #[test]
    fn classifier_separates_wire_from_metadata() {
        assert!(is_header_field("sport"));
        assert!(is_header_field("ip_src"));
        assert!(!is_header_field("arrival"));
        assert!(!is_header_field("next_hop"));
    }

    #[test]
    fn interning_covers_all_fields_in_order() {
        let mut t = FieldTable::new();
        let ids = intern_header_fields(&mut t);
        assert_eq!(ids.len(), HEADER_FIELDS.len());
        for (id, name) in ids.iter().zip(HEADER_FIELDS) {
            assert_eq!(t.name(*id), name);
        }
    }
}
