//! Experiment E4 — regenerate **Table 6**: circuit structure (logic depth)
//! and minimum delay for the three smallest stateful atoms, plus the full
//! ladder for completeness.

use banzai::AtomKind;
use bench::render_table;
use hardware_model::{paper_delay, stateful_circuit};

fn main() {
    println!("Table 6 — atom circuit depth and minimum delay\n");
    let mut rows = Vec::new();
    for kind in AtomKind::ALL {
        let c = stateful_circuit(kind);
        let path: Vec<String> = c
            .critical_path
            .iter()
            .map(|comp| comp.to_string())
            .collect();
        rows.push(vec![
            kind.paper_name().to_string(),
            format!("{}", c.logic_depth()),
            path.join(" -> "),
            format!("{:.0}", c.min_delay_ps()),
            format!("{:.0}", paper_delay(kind)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Atom", "Depth", "Critical path", "Delay ps", "(paper)"],
            &rows
        )
    );
    println!(
        "The paper's Table 6 shows Write/RAW/PRAW; delay grows with circuit depth.\n\
         (Our model is monotonic; the paper's IfElseRAW=392 < PRAW=393 inversion is\n\
         synthesis-tool noise per its own footnote.)"
    );
}
