//! Source locations.
//!
//! Every token and AST node carries a [`Span`] so that diagnostics from any
//! compiler stage (lexing through code generation) can point back at the
//! offending Domino source text.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text, together with
/// the 1-based line and column of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes (e.g. statements
    /// introduced by compiler passes).
    pub const SYNTH: Span = Span {
        start: 0,
        end: 0,
        line: 0,
        col: 0,
    };

    /// Creates a new span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// Returns a span covering both `self` and `other`.
    ///
    /// The line/column information of the earlier span is kept. Joining with
    /// a synthesized span yields the non-synthesized one.
    pub fn join(self, other: Span) -> Span {
        if self == Span::SYNTH {
            return other;
        }
        if other == Span::SYNTH {
            return self;
        }
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// True if this span was synthesized by the compiler rather than read
    /// from source text.
    pub fn is_synthesized(&self) -> bool {
        *self == Span::SYNTH
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthesized() {
            write!(f, "<synthesized>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_orders_spans() {
        let a = Span::new(10, 14, 2, 3);
        let b = Span::new(20, 25, 3, 1);
        let j = a.join(b);
        assert_eq!(j.start, 10);
        assert_eq!(j.end, 25);
        assert_eq!(j.line, 2);
        assert_eq!(j.col, 3);
        // Join is symmetric in extent.
        let k = b.join(a);
        assert_eq!(k.start, 10);
        assert_eq!(k.end, 25);
    }

    #[test]
    fn join_with_synthesized_keeps_real_span() {
        let a = Span::new(5, 9, 1, 6);
        assert_eq!(Span::SYNTH.join(a), a);
        assert_eq!(a.join(Span::SYNTH), a);
    }

    #[test]
    fn display_formats_line_col() {
        assert_eq!(Span::new(0, 1, 4, 7).to_string(), "4:7");
        assert_eq!(Span::SYNTH.to_string(), "<synthesized>");
    }
}
