//! Property-based fuzzing of the wire front-end.
//!
//! Two properties over arbitrary byte buffers (0–256 bytes) and
//! seeded-random structured frames:
//!
//! 1. **the parser never panics** — every input is either accepted or a
//!    typed [`ParseVerdict`], on both the map-level parser and the
//!    table-bound flat parser;
//! 2. **accepted ⇒ identity deparse** — any frame the parser accepts
//!    re-serializes to the *identical* bytes when the pipeline is a
//!    passthrough (no field modified), on both deparsers.
//!
//! The structured generator matters: uniformly random buffers almost
//! never pass the parse graph, so without it property 2 would be
//! vacuous. It builds valid frames from random field values, then
//! corrupts a random byte half the time — single-byte corruptions
//! exercise accepted-but-weird frames (e.g. IHL > 5 creating an options
//! region) as well as every reject edge.

use banzai::wire::{self, BoundParser, FrameSpec, WireConfig};
use domino_ir::{FieldTable, Packet};
use proptest::prelude::*;
use std::sync::Arc;

/// The trailer schema both properties parse with (a second, empty config
/// is exercised inline).
fn meta_cfg() -> WireConfig {
    WireConfig::with_meta_fields(["arrival", "next_hop"]).unwrap()
}

/// A parser bound to a table holding every header field plus the meta
/// schema — the fullest possible flat layout.
fn full_parser(cfg: &WireConfig) -> BoundParser {
    let mut table = FieldTable::new();
    domino_ir::wire::intern_header_fields(&mut table);
    for f in cfg.meta_fields() {
        table.intern(f);
    }
    BoundParser::bind(cfg.clone(), Arc::new(table))
}

/// Builds a well-formed frame from 16 seed bytes, then corrupts one byte
/// (position and value seed-chosen) when `corrupt` is set. Covers TCP and
/// UDP, tagged and untagged, with varied payload lengths.
fn structured_frame(seed: &[u8], corrupt: bool) -> Vec<u8> {
    let b = |i: usize| *seed.get(i).unwrap_or(&0) as i32;
    let pkt = Packet::new()
        .with("sport", b(0) << 8 | b(1))
        .with("dport", b(2))
        .with("arrival", b(3) << 16 | b(4))
        .with("next_hop", b(5) - 128);
    let spec = FrameSpec {
        vlan_tci: (b(6) % 2 == 0).then_some(b(7) as u16),
        ip_proto: if b(8) % 3 == 0 {
            wire::IPPROTO_UDP
        } else {
            wire::IPPROTO_TCP
        },
        payload: vec![0xA5; (b(9) % 32) as usize],
        ..FrameSpec::default()
    };
    let mut frame = wire::encode(&pkt, &meta_cfg(), &spec);
    if corrupt {
        let pos = (b(10) as usize * 256 + b(11) as usize) % frame.len();
        frame[pos] ^= b(12).max(1) as u8;
    }
    frame
}

/// Any byte buffer: uniformly random, or structured (possibly
/// single-byte-corrupted) wire frames.
fn any_input() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        2 => proptest::collection::vec(any::<u8>(), 0..256),
        1 => proptest::collection::vec(any::<u8>(), 13..16)
            .prop_map(|seed| structured_frame(&seed, false)),
        1 => proptest::collection::vec(any::<u8>(), 13..16)
            .prop_map(|seed| structured_frame(&seed, true)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    /// ≥ 1000 cases, zero panics: every input is accepted or typed.
    #[test]
    fn parser_never_panics(buf in any_input()) {
        let cfg = meta_cfg();
        let map_result = wire::parse(&buf, &cfg);
        let flat_result = full_parser(&cfg).parse_flat(&buf);
        // Both front-ends reach the same accept/reject verdict.
        prop_assert_eq!(
            map_result.as_ref().err(),
            flat_result.as_ref().err()
        );
        // The empty-schema config must not panic either.
        let _ = wire::parse(&buf, &WireConfig::new());
    }

    /// Accepted frames deparse to identical bytes under a passthrough
    /// pipeline, through both the map-level and the flat deparser.
    #[test]
    fn accepted_frames_redeparse_identically(buf in any_input()) {
        let cfg = meta_cfg();
        if let Ok(wp) = wire::parse(&buf, &cfg) {
            prop_assert_eq!(wire::deparse(&wp.pkt, &wp.layout), buf.clone());
            let parser = full_parser(&cfg);
            let (flat, layout) = parser.parse_flat(&buf).expect("map and flat parsers agree");
            prop_assert_eq!(parser.deparse_flat(&flat, &layout), buf);
        }
    }

    /// Whatever bytes land after the parsed headers are exposed as the
    /// payload, untouched, and the frame views agree on structure.
    #[test]
    fn accepted_frame_structure_is_consistent(buf in any_input()) {
        if let Ok(wp) = wire::parse(&buf, &meta_cfg()) {
            let payload = wp.layout.payload();
            prop_assert!(payload.len() <= buf.len());
            prop_assert_eq!(payload, &buf[buf.len() - payload.len()..]);
            // Every patch lies inside the frame.
            for p in wp.layout.patches() {
                prop_assert!(p.offset + p.width as usize <= buf.len());
            }
        }
    }
}
