//! The sharded switch: N independent slot-compiled switches behind an
//! RSS-style flow-steering dispatcher.
//!
//! The paper's Banzai machine reaches line rate by pipelining atoms in
//! hardware; a software simulator reaches for cores instead. The key
//! observation carries over: Domino confines every piece of per-flow
//! state to one atom, and when that state is *indexed by a packet-derived
//! flow key* (`flowlet.domino`'s `last_time[pkt.id]`), packets of
//! different key classes never touch common state — so the trace can be
//! partitioned across shards with **no cross-shard coordination**, the
//! same per-flow partitioning RSS NICs and multi-pipeline P4 targets rely
//! on.
//!
//! The moving parts:
//!
//! * [`ShardPlan`] — resolves how to steer: the flow key extracted from
//!   the pipelines' state indexing
//!   ([`StateLayout::flow_key`](domino_ir::layout::StateLayout::flow_key)),
//!   an explicit field list, whole-packet hashing for stateless
//!   pipelines, or a **single-shard fallback with a diagnostic** when the
//!   state indexing is not partitionable (`rcp.domino`'s global
//!   registers, `heavy_hitters.domino`'s three differently-hashed sketch
//!   rows);
//! * [`ShardedSwitch`] — spawns one worker thread per shard
//!   ([`ShardedSwitch::run_trace`]), feeds each through a bounded ring of
//!   packet batches, runs an independent [`Switch`] per shard (stamped
//!   with global arrival cycles, so queue metadata is bit-identical to
//!   the serial switch), and merges transmitted packets by **seeded
//!   round-robin** — per-flow order is preserved exactly (a flow, as
//!   defined by the steering key, lives on one shard; under stateless
//!   whole-packet steering that means identical packets — steer with
//!   [`SteerMode::Fields`] for a field-subset flow definition), and the
//!   cross-flow interleaving is a deterministic function of the seed, so
//!   differential tests stay bit-reproducible run to run;
//! * merged state export — each array slot belongs to exactly one key
//!   class, hence to exactly one shard; reading every slot from its
//!   owner reconstructs the serial state bit-for-bit.
//!
//! The sequential twins ([`ShardedSwitch::run_trace_partitioned`],
//! [`ShardedSwitch::run_trace_instrumented`]) run the same plan on the
//! caller's thread, which is what the E10 harness times: per-shard busy
//! time measured without scheduler interference gives the critical-path
//! throughput the shards would sustain on real cores.

use crate::machine::AtomPipeline;
use crate::slot::SlotMachine;
use crate::switch::{PipelineEngine, Switch};
use domino_ast::{StateKind, StateVar};
use domino_ir::layout::{mix64, FlowKeySpec, Partitionability, StateLayout};
use domino_ir::{Packet, StateStore, TacStmt};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::mpsc;
use std::time::Instant;

/// Configuration for a [`ShardedSwitch`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Requested shard (worker) count; the plan may fall back to 1.
    pub shards: usize,
    /// Packets per steering batch (the unit pushed into a shard's ring).
    pub batch: usize,
    /// Ring depth in batches (bounded channel capacity — backpressure).
    pub ring: usize,
    /// Seed for the deterministic round-robin output merge.
    pub seed: u64,
    /// Per-shard queue capacity (see [`Switch::capacity`]).
    pub capacity: usize,
    /// How to steer packets to shards.
    pub steer: SteerMode,
}

impl ShardConfig {
    /// A config with `shards` workers and the defaults: 256-packet
    /// batches, an 8-batch ring, capacity 512, automatic steering.
    pub fn new(shards: usize) -> ShardConfig {
        ShardConfig {
            shards: shards.max(1),
            batch: 256,
            ring: 8,
            seed: 0x5EED_0001,
            capacity: 512,
            steer: SteerMode::Auto,
        }
    }

    /// Overrides the steering batch size.
    pub fn with_batch(mut self, batch: usize) -> ShardConfig {
        self.batch = batch.max(1);
        self
    }

    /// Overrides the merge seed.
    pub fn with_seed(mut self, seed: u64) -> ShardConfig {
        self.seed = seed;
        self
    }

    /// Overrides the per-shard queue capacity.
    pub fn with_capacity(mut self, capacity: usize) -> ShardConfig {
        self.capacity = capacity;
        self
    }

    /// Overrides the steering mode.
    pub fn with_steer(mut self, steer: SteerMode) -> ShardConfig {
        self.steer = steer;
        self
    }
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig::new(1)
    }
}

/// How the dispatcher picks a shard for each packet.
#[derive(Debug, Clone, PartialEq)]
pub enum SteerMode {
    /// Derive the flow key from the pipelines' own state indexing (the
    /// default); falls back to a single shard — with a diagnostic — when
    /// the indexing is not partitionable.
    Auto,
    /// Hash the named packet fields, RSS-style. The caller asserts that
    /// this key refines the pipelines' state partitioning; merged-state
    /// export is unavailable in this mode (per-shard states still are).
    Fields(Vec<String>),
}

/// The resolved steering rule (see [`ShardPlan`]).
#[derive(Debug, Clone, PartialEq)]
enum ResolvedSteer {
    /// Everything to shard 0 (the fallback).
    Single,
    /// Steer by the extracted flow key — bit-exact serial equivalence.
    Keyed(FlowKeySpec),
    /// Steer by a user-supplied field list.
    Fields(Vec<String>),
    /// Both pipelines are stateless: hash the whole packet. Only
    /// bit-identical packets are guaranteed to share a shard — a flow
    /// defined by a *subset* of fields may spread across shards (the
    /// pure pipelines make that state-safe, but callers who need
    /// per-flow ordering must steer with [`SteerMode::Fields`]).
    WholePacket,
}

/// FNV-1a over a string, folded into a running hash (steering must be
/// deterministic across runs and platforms, so no `RandomState`).
fn hash_str(h: u64, s: &str) -> u64 {
    s.bytes()
        .fold(h, |h, b| (h ^ b as u64).wrapping_mul(0x0100_0000_01b3))
}

/// The resolved sharding decision for an ingress/egress pipeline pair.
///
/// Produced by [`ShardPlan::plan`]; inspect [`ShardPlan::effective`] and
/// [`ShardPlan::fallback`] to see whether the requested parallelism was
/// granted and, if not, why.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    requested: usize,
    effective: usize,
    steer: ResolvedSteer,
    fallback: Option<String>,
}

/// All TAC statements of a compiled pipeline, in execution order.
fn stmts_of(pipeline: &AtomPipeline) -> Vec<TacStmt> {
    pipeline
        .stages
        .iter()
        .flatten()
        .flat_map(|a| a.codelet.stmts.iter().cloned())
        .collect()
}

/// Every packet field the pipeline can write on its way through —
/// assignments, state-read destinations, deparsed declared fields, and
/// the switch queue's metadata stamps.
fn written_fields(pipeline: &AtomPipeline) -> BTreeSet<String> {
    let mut written: BTreeSet<String> = BTreeSet::new();
    for stmt in stmts_of(pipeline) {
        match stmt {
            TacStmt::Assign { dst, .. } | TacStmt::ReadState { dst, .. } => {
                written.insert(dst);
            }
            TacStmt::WriteState { .. } => {}
        }
    }
    for (declared, internal) in &pipeline.output_map {
        // Identity pairs are pass-throughs, not writes (the deparser
        // only copies when the names differ).
        if declared != internal {
            written.insert(declared.clone());
        }
    }
    for meta in crate::switch::QUEUE_METADATA_FIELDS {
        written.insert(meta.to_string());
    }
    written
}

impl ShardPlan {
    /// Resolves the steering rule for a pipeline pair and a requested
    /// shard count.
    ///
    /// In [`SteerMode::Auto`], both pipelines' state indexing must be
    /// partitionable (see
    /// [`StateLayout::flow_key`](domino_ir::layout::StateLayout::flow_key));
    /// when both carry keyed state the two keys must agree, and an
    /// egress-derived key must not depend on fields the ingress pipeline
    /// (or the queue's metadata stamps, under their default names —
    /// [`QUEUE_METADATA_FIELDS`](crate::switch::QUEUE_METADATA_FIELDS);
    /// renamed metadata is outside this model) rewrites — the dispatcher
    /// evaluates the key on the *input* packet. Any violation produces a
    /// single-shard plan carrying the diagnostic.
    pub fn plan(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        shards: usize,
        mode: &SteerMode,
    ) -> ShardPlan {
        let requested = shards.max(1);
        if let SteerMode::Fields(fields) = mode {
            return ShardPlan {
                requested,
                effective: requested,
                steer: ResolvedSteer::Fields(fields.clone()),
                fallback: None,
            };
        }

        let part_in = StateLayout::from_decls(&ingress.state_decls).flow_key(&stmts_of(ingress));
        let part_eg = StateLayout::from_decls(&egress.state_decls).flow_key(&stmts_of(egress));

        let egress_key_ok = |spec: &FlowKeySpec| -> Result<(), String> {
            let written = written_fields(ingress);
            for root in spec.roots() {
                if written.contains(root) {
                    return Err(format!(
                        "egress `{}` keys its state on `{root}`, which ingress \
                         `{}` (or the queue metadata) rewrites; the dispatcher \
                         cannot evaluate the key on the input packet",
                        egress.name, ingress.name
                    ));
                }
            }
            Ok(())
        };

        let resolved: Result<ResolvedSteer, String> = match (part_in, part_eg) {
            (Err(e), _) => Err(format!("ingress `{}`: {e}", ingress.name)),
            (_, Err(e)) => Err(format!("egress `{}`: {e}", egress.name)),
            (Ok(Partitionability::Stateless), Ok(Partitionability::Stateless)) => {
                Ok(ResolvedSteer::WholePacket)
            }
            (Ok(Partitionability::Keyed(k)), Ok(Partitionability::Stateless)) => {
                Ok(ResolvedSteer::Keyed(k))
            }
            (Ok(Partitionability::Stateless), Ok(Partitionability::Keyed(k))) => {
                egress_key_ok(&k).map(|()| ResolvedSteer::Keyed(k))
            }
            (Ok(Partitionability::Keyed(a)), Ok(Partitionability::Keyed(b))) => {
                if a != b {
                    Err(format!(
                        "ingress `{}` and egress `{}` partition their state by \
                         different flow keys (`{}` mod {} vs `{}` mod {})",
                        ingress.name,
                        egress.name,
                        a.key_field(),
                        a.modulus(),
                        b.key_field(),
                        b.modulus()
                    ))
                } else {
                    egress_key_ok(&b).map(|()| ResolvedSteer::Keyed(a))
                }
            }
        };

        match resolved {
            Ok(steer) => ShardPlan {
                requested,
                effective: requested,
                steer,
                fallback: None,
            },
            Err(diagnostic) => ShardPlan {
                requested,
                effective: 1,
                steer: ResolvedSteer::Single,
                fallback: Some(diagnostic),
            },
        }
    }

    /// The shard count the caller asked for.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// The shard count actually granted (1 on fallback).
    pub fn effective(&self) -> usize {
        self.effective
    }

    /// The diagnostic explaining a single-shard fallback, if any.
    pub fn fallback(&self) -> Option<&str> {
        self.fallback.as_deref()
    }

    /// The extracted flow key, when steering is key-derived.
    pub fn flow_key(&self) -> Option<&FlowKeySpec> {
        match &self.steer {
            ResolvedSteer::Keyed(spec) => Some(spec),
            _ => None,
        }
    }

    /// The shard an input packet steers to.
    pub fn steer(&self, pkt: &Packet) -> usize {
        let n = self.effective;
        if n <= 1 {
            return 0;
        }
        match &self.steer {
            ResolvedSteer::Single => 0,
            ResolvedSteer::Keyed(spec) => spec.shard_of(pkt, n),
            ResolvedSteer::Fields(fields) => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for f in fields {
                    h = hash_str(h, f);
                    h = mix64(h ^ pkt.get_or_zero(f) as u32 as u64);
                }
                (h % n as u64) as usize
            }
            ResolvedSteer::WholePacket => {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for (name, value) in pkt.iter() {
                    h = hash_str(h, name);
                    h = mix64(h ^ value as u32 as u64);
                }
                (h % n as u64) as usize
            }
        }
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} shards", self.effective, self.requested)?;
        match &self.steer {
            ResolvedSteer::Single => {
                let why = self.fallback.as_deref().unwrap_or("single shard requested");
                write!(f, ", single-shard fallback: {why}")
            }
            ResolvedSteer::Keyed(spec) => {
                write!(
                    f,
                    ", keyed on pkt.{} mod {}",
                    spec.key_field(),
                    spec.modulus()
                )
            }
            ResolvedSteer::Fields(fields) => write!(f, ", hashing [{}]", fields.join(", ")),
            ResolvedSteer::WholePacket => write!(f, ", stateless whole-packet hashing"),
        }
    }
}

/// Wall-clock breakdown of one instrumented sharded run.
///
/// `shard_ns` is measured with the shards executed one after another on
/// the calling thread, so each number is that shard's *busy* time free of
/// scheduler interference — on an N-core machine the shards run
/// concurrently and the run completes in [`ShardTimings::critical_ns`]
/// (dispatcher and workers are pipelined, so the slower of the two lanes
/// bounds the run).
#[derive(Debug, Clone)]
pub struct ShardTimings {
    /// Time to steer the trace into per-shard batched streams.
    pub steer_ns: u128,
    /// Per-shard pipeline busy time.
    pub shard_ns: Vec<u128>,
    /// Time to merge the transmitted streams back together.
    pub merge_ns: u128,
}

impl ShardTimings {
    /// The modeled steady-state completion time on dedicated hardware:
    /// `max(steer, merge, slowest shard)`.
    ///
    /// The deployment shape is the standard one for software dataplanes:
    /// an RX (steering) core, N worker cores, a TX (merge) core, all
    /// pipelined batch by batch — so sustained throughput is bounded by
    /// the busiest single lane, not their sum.
    pub fn critical_ns(&self) -> u128 {
        self.shard_ns
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(self.steer_ns)
            .max(self.merge_ns)
    }
}

/// One instrumented sharded run: merged output plus the timing breakdown.
///
/// (For the un-merged per-shard view — the observable differential tests
/// compare — use [`ShardedSwitch::run_trace_partitioned`]; keeping both
/// alive would double the run's memory footprint, which matters at
/// millions of packets.)
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The seeded round-robin merge of every shard's transmitted packets.
    pub merged: Vec<Packet>,
    /// Where the time went.
    pub timings: ShardTimings,
}

/// A switch sharded across N workers by flow steering: one independent
/// [`Switch`] (slot-compiled by default) per shard, fed with batched
/// packets, merged back deterministically.
///
/// ```
/// use banzai::{AtomPipeline, ShardConfig, ShardedSwitch};
/// use domino_ir::Packet;
///
/// // Stateless pipelines shard by whole-packet hashing; 4 workers.
/// let mut sw = ShardedSwitch::new_slot(
///     &AtomPipeline::passthrough("in"),
///     &AtomPipeline::passthrough("out"),
///     ShardConfig::new(4),
/// )
/// .unwrap();
/// let trace: Vec<Packet> = (0..100).map(|i| Packet::new().with("flow", i % 7)).collect();
/// let out = sw.run_trace(&trace);
/// assert_eq!(out.len(), 100);
/// assert_eq!(sw.transmitted(), 100);
/// assert_eq!(sw.plan().effective(), 4);
/// ```
#[derive(Debug)]
pub struct ShardedSwitch<E: PipelineEngine = SlotMachine> {
    plan: ShardPlan,
    shards: Vec<Switch<E>>,
    ingress_decls: Vec<StateVar>,
    egress_decls: Vec<StateVar>,
    batch: usize,
    ring: usize,
    seed: u64,
}

impl ShardedSwitch<SlotMachine> {
    /// Builds a sharded switch running every shard on the slot-compiled
    /// fast path (the production configuration).
    pub fn new_slot(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        config: ShardConfig,
    ) -> Result<ShardedSwitch<SlotMachine>, String> {
        ShardedSwitch::new(ingress, egress, config)
    }
}

impl<E: PipelineEngine> ShardedSwitch<E> {
    /// Builds a sharded switch over any [`PipelineEngine`].
    ///
    /// Never fails on a non-partitionable pipeline pair — that produces a
    /// working single-shard plan with [`ShardPlan::fallback`] set.
    /// Errors only if the engine itself cannot be built.
    pub fn new(
        ingress: &AtomPipeline,
        egress: &AtomPipeline,
        config: ShardConfig,
    ) -> Result<ShardedSwitch<E>, String> {
        let plan = ShardPlan::plan(ingress, egress, config.shards, &config.steer);
        let mut shards = Vec::with_capacity(plan.effective());
        for _ in 0..plan.effective() {
            shards.push(Switch::from_engines(
                E::build(ingress)?,
                E::build(egress)?,
                config.capacity,
            ));
        }
        Ok(ShardedSwitch {
            plan,
            shards,
            ingress_decls: ingress.state_decls.clone(),
            egress_decls: egress.state_decls.clone(),
            batch: config.batch.max(1),
            ring: config.ring.max(1),
            seed: config.seed,
        })
    }

    /// The resolved sharding decision.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of live shards (== [`ShardPlan::effective`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Packets dropped across all shards.
    pub fn drops(&self) -> u64 {
        self.shards.iter().map(|s| s.drops()).sum()
    }

    /// Per-reason drop counters merged across all shards (see
    /// [`crate::switch::DropCounters`]).
    pub fn drop_counters(&self) -> crate::switch::DropCounters {
        let mut merged = crate::switch::DropCounters::new();
        for s in &self.shards {
            merged.merge(s.drop_counters());
        }
        merged
    }

    /// Packets transmitted across all shards.
    pub fn transmitted(&self) -> u64 {
        self.shards.iter().map(|s| s.transmitted()).sum()
    }

    /// Steers the trace into per-shard `(global_cycle, packet)` streams.
    fn partition(&self, trace: &[Packet]) -> Vec<Vec<(i64, Packet)>> {
        let mut streams: Vec<Vec<(i64, Packet)>> = vec![Vec::new(); self.shards.len()];
        for (i, pkt) in trace.iter().enumerate() {
            streams[self.plan.steer(pkt)].push((i as i64, pkt.clone()));
        }
        streams
    }

    /// Merges per-shard output streams by seeded round-robin: starting at
    /// a seed-derived shard, take one packet from each non-exhausted
    /// shard in cyclic order. Per-flow order is preserved for flows as
    /// the steering key defines them (such a flow lives on one shard and
    /// shard order is kept — under whole-packet steering that means
    /// identical packets; use [`SteerMode::Fields`] for coarser flows);
    /// the cross-flow interleave is a pure function of the seed and
    /// shard count, so repeated runs are bit-identical regardless of
    /// thread scheduling.
    pub fn merge(&self, parts: Vec<Vec<Packet>>) -> Vec<Packet> {
        let n = parts.len();
        if n == 1 {
            return parts.into_iter().next().unwrap_or_default();
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let start = (mix64(self.seed) % n as u64) as usize;
        let mut iters: Vec<std::vec::IntoIter<Packet>> =
            parts.into_iter().map(|p| p.into_iter()).collect();
        let mut out = Vec::with_capacity(total);
        while out.len() < total {
            for off in 0..n {
                if let Some(p) = iters[(start + off) % n].next() {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Runs the trace across all shards on **worker threads**: the caller
    /// thread steers packets into per-shard bounded batch rings
    /// (backpressure included), each worker drains its ring through its
    /// own switch, and the outputs merge deterministically.
    pub fn run_trace(&mut self, trace: &[Packet]) -> Vec<Packet>
    where
        E: Send,
    {
        let n = self.shards.len();
        if n == 1 {
            // Borrowed stamps: no point cloning the whole trace just to
            // hand it to the one shard (run_stamped clones per packet).
            let batch: Vec<(i64, &Packet)> = trace
                .iter()
                .enumerate()
                .map(|(i, p)| (i as i64, p))
                .collect();
            return self.shards[0].run_stamped(&batch);
        }
        let plan = &self.plan;
        let batch_size = self.batch;
        let ring = self.ring;
        let mut parts: Vec<Vec<Packet>> = Vec::new();
        std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(n);
            let mut handles = Vec::with_capacity(n);
            for sw in self.shards.iter_mut() {
                let (tx, rx) = mpsc::sync_channel::<Vec<(i64, Packet)>>(ring);
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    while let Ok(batch) = rx.recv() {
                        out.extend(sw.run_stamped(&batch));
                    }
                    out
                }));
                txs.push(tx);
            }
            let mut pending: Vec<Vec<(i64, Packet)>> =
                (0..n).map(|_| Vec::with_capacity(batch_size)).collect();
            for (i, pkt) in trace.iter().enumerate() {
                let s = plan.steer(pkt);
                pending[s].push((i as i64, pkt.clone()));
                if pending[s].len() == batch_size {
                    let full = std::mem::replace(&mut pending[s], Vec::with_capacity(batch_size));
                    txs[s].send(full).expect("shard worker hung up");
                }
            }
            for (s, rest) in pending.into_iter().enumerate() {
                if !rest.is_empty() {
                    txs[s].send(rest).expect("shard worker hung up");
                }
            }
            drop(txs);
            parts = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
        });
        self.merge(parts)
    }

    /// Runs the trace shard-by-shard on the calling thread and returns
    /// each shard's output subsequence (un-merged) — the observable the
    /// differential suites compare against serial execution.
    pub fn run_trace_partitioned(&mut self, trace: &[Packet]) -> Vec<Vec<Packet>> {
        let streams = self.partition(trace);
        self.shards
            .iter_mut()
            .zip(&streams)
            .map(|(sw, stream)| sw.run_stamped(stream))
            .collect()
    }

    /// Like [`ShardedSwitch::run_trace_partitioned`], but instrumented:
    /// times the steer, each shard's busy run, and the merge. Used by the
    /// E10 scaling harness (on a single-core host, per-shard busy times
    /// are the honest scaling observable — see [`ShardTimings`]).
    pub fn run_trace_instrumented(&mut self, trace: &[Packet]) -> ShardRun {
        let t = Instant::now();
        let streams = self.partition(trace);
        let steer_ns = t.elapsed().as_nanos();

        let mut partitioned = Vec::with_capacity(self.shards.len());
        let mut shard_ns = Vec::with_capacity(self.shards.len());
        for (sw, stream) in self.shards.iter_mut().zip(&streams) {
            let t = Instant::now();
            partitioned.push(sw.run_stamped(stream));
            shard_ns.push(t.elapsed().as_nanos());
        }
        drop(streams);

        // Time the merge the production path performs: a move, no clones.
        let t = Instant::now();
        let merged = self.merge(partitioned);
        let merge_ns = t.elapsed().as_nanos();

        ShardRun {
            merged,
            timings: ShardTimings {
                steer_ns,
                shard_ns,
                merge_ns,
            },
        }
    }

    /// Each shard's `(ingress, egress)` state snapshot.
    pub fn export_shard_states(&self) -> Vec<(StateStore, StateStore)> {
        self.shards
            .iter()
            .map(|s| (s.export_ingress_state(), s.export_egress_state()))
            .collect()
    }

    /// Reconstructs the serial switch's ingress state from the shards:
    /// every array slot is read from the shard that owns its key class.
    ///
    /// Available when steering is key-derived (or trivially with one
    /// shard / stateless pipelines); explicit-field steering defines no
    /// state partition and returns an error.
    pub fn export_merged_ingress_state(&self) -> Result<StateStore, String> {
        self.merged_state(&self.ingress_decls, |s| s.export_ingress_state())
    }

    /// Reconstructs the serial switch's egress state from the shards.
    pub fn export_merged_egress_state(&self) -> Result<StateStore, String> {
        self.merged_state(&self.egress_decls, |s| s.export_egress_state())
    }

    fn merged_state(
        &self,
        decls: &[StateVar],
        export: impl Fn(&Switch<E>) -> StateStore,
    ) -> Result<StateStore, String> {
        if self.shards.len() == 1 {
            return Ok(export(&self.shards[0]));
        }
        match &self.plan.steer {
            // Stateless pipelines never write state: all shards still
            // hold the declared initializers, as does the serial switch.
            ResolvedSteer::WholePacket => Ok(export(&self.shards[0])),
            ResolvedSteer::Fields(_) => Err(
                "steering by explicit fields does not define a state partition; \
                 read per-shard snapshots via export_shard_states"
                    .to_string(),
            ),
            ResolvedSteer::Single => Ok(export(&self.shards[0])),
            ResolvedSteer::Keyed(spec) => {
                let snaps: Vec<StateStore> = self.shards.iter().map(&export).collect();
                let mut merged = StateStore::from_decls(decls);
                for d in decls {
                    match d.kind {
                        // Keyed extraction forbids scalar *access*, so a
                        // declared scalar is untouched everywhere and the
                        // initializer already in `merged` is the value.
                        StateKind::Scalar => {}
                        StateKind::Array { size } => {
                            for k in 0..size {
                                let owner =
                                    FlowKeySpec::shard_of_class(k % spec.modulus(), snaps.len());
                                merged.write_array(
                                    &d.name,
                                    k as i32,
                                    snaps[owner].read_array(&d.name, k as i32),
                                );
                            }
                        }
                    }
                }
                Ok(merged)
            }
        }
    }

    /// Broadcasts serial state snapshots to every shard — the import half
    /// of the per-partition state hooks. Each shard only ever touches its
    /// own key classes, so handing every shard the full snapshot
    /// reproduces exactly the partition a merged export would select.
    pub fn import_state(&mut self, ingress: &StateStore, egress: &StateStore) {
        for sw in &mut self.shards {
            sw.import_ingress_state(ingress);
            sw.import_egress_state(egress);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{AtomRole, CompiledAtom};
    use domino_ast::BinOp;
    use domino_ir::{Codelet, Operand, StateRef, TacRhs};

    /// A per-flow array counter: `counts[pkt.flow] += 1`, exposing the
    /// new count in `pkt.c` — keyed on the input field `flow`.
    fn array_counter(name: &str, arr: &str, size: u32) -> AtomPipeline {
        let body = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Array {
                    name: arr.into(),
                    index: Operand::Field("flow".into()),
                },
            },
            TacStmt::Assign {
                dst: "c".into(),
                rhs: TacRhs::Binary(BinOp::Add, Operand::Field("old".into()), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: arr.into(),
                    index: Operand::Field("flow".into()),
                },
                src: Operand::Field("c".into()),
            },
        ]);
        AtomPipeline {
            name: name.into(),
            target_name: "test".into(),
            stages: vec![vec![CompiledAtom {
                codelet: body,
                role: AtomRole::Stateless,
            }]],
            state_decls: vec![StateVar {
                name: arr.into(),
                kind: StateKind::Array { size },
                init: 0,
            }],
            declared_fields: vec!["c".into()],
            output_map: vec![],
        }
    }

    /// A global scalar counter — deliberately *not* partitionable.
    fn scalar_counter() -> AtomPipeline {
        let body = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Scalar("total".into()),
            },
            TacStmt::Assign {
                dst: "c".into(),
                rhs: TacRhs::Binary(BinOp::Add, Operand::Field("old".into()), Operand::Const(1)),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("total".into()),
                src: Operand::Field("c".into()),
            },
        ]);
        AtomPipeline {
            name: "scalar_counter".into(),
            target_name: "test".into(),
            stages: vec![vec![CompiledAtom {
                codelet: body,
                role: AtomRole::Stateless,
            }]],
            state_decls: vec![StateVar {
                name: "total".into(),
                kind: StateKind::Scalar,
                init: 0,
            }],
            declared_fields: vec!["c".into()],
            output_map: vec![],
        }
    }

    fn flow_trace(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                Packet::new()
                    .with("flow", (i * 7 % 23) as i32)
                    .with("seq", i as i32)
            })
            .collect()
    }

    fn passthrough(name: &str) -> AtomPipeline {
        AtomPipeline::passthrough(name)
    }

    #[test]
    fn plan_extracts_flow_key_from_array_counter() {
        let p = array_counter("count", "counts", 64);
        let plan = ShardPlan::plan(&p, &passthrough("out"), 4, &SteerMode::Auto);
        assert_eq!(plan.effective(), 4);
        assert!(plan.fallback().is_none());
        let spec = plan.flow_key().expect("keyed");
        assert_eq!(spec.key_field(), "flow");
        assert_eq!(spec.modulus(), 64);
        assert!(plan.to_string().contains("keyed on pkt.flow mod 64"));
    }

    #[test]
    fn plan_falls_back_on_scalar_state_with_diagnostic() {
        let plan = ShardPlan::plan(&scalar_counter(), &passthrough("out"), 8, &SteerMode::Auto);
        assert_eq!(plan.requested(), 8);
        assert_eq!(plan.effective(), 1);
        let why = plan.fallback().expect("diagnostic");
        assert!(why.contains("scalar state `total`"), "{why}");
    }

    #[test]
    fn plan_rejects_mismatched_ingress_egress_keys() {
        let ingress = array_counter("in", "a", 8);
        let mut egress = array_counter("eg", "b", 16);
        // Re-key egress on a different field.
        for stage in &mut egress.stages {
            for atom in stage {
                for stmt in &mut atom.codelet.stmts {
                    match stmt {
                        TacStmt::ReadState { state, .. } | TacStmt::WriteState { state, .. } => {
                            if let StateRef::Array { index, .. } = state {
                                *index = Operand::Field("other".into());
                            }
                        }
                        TacStmt::Assign { .. } => {}
                    }
                }
            }
        }
        let plan = ShardPlan::plan(&ingress, &egress, 4, &SteerMode::Auto);
        assert_eq!(plan.effective(), 1);
        assert!(
            plan.fallback().unwrap().contains("different flow keys"),
            "{}",
            plan.fallback().unwrap()
        );
    }

    #[test]
    fn sharded_counter_equals_serial_per_shard_and_in_state() {
        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        let trace = flow_trace(500);

        let mut serial = Switch::new_slot(&ingress, &egress, 512).unwrap();
        let serial_out = serial.run_trace(&trace);

        for shards in [1, 2, 4, 8] {
            let mut sharded =
                ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(shards)).unwrap();
            let parts = sharded.run_trace_partitioned(&trace);
            // Each shard's outputs are the serial outputs at the
            // positions steered to it (serial output order == input
            // order at line rate).
            for (s, part) in parts.iter().enumerate() {
                let expected: Vec<Packet> = trace
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| sharded.plan().steer(p) == s)
                    .map(|(i, _)| serial_out[i].clone())
                    .collect();
                assert_eq!(part, &expected, "shard {s} of {shards}");
            }
            assert_eq!(
                sharded.export_merged_ingress_state().unwrap(),
                serial.export_ingress_state(),
                "{shards} shards: merged state"
            );
            assert_eq!(sharded.transmitted(), serial.transmitted());
            assert_eq!(sharded.drops(), 0);
        }
    }

    #[test]
    fn threaded_run_is_deterministic_and_equals_sequential_merge() {
        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        let trace = flow_trace(700);
        let cfg = ShardConfig::new(4).with_batch(32);

        let mut a = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
        let threaded = a.run_trace(&trace);

        let mut b = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
        let run = b.run_trace_instrumented(&trace);
        assert_eq!(threaded, run.merged);
        assert_eq!(
            a.export_merged_ingress_state().unwrap(),
            b.export_merged_ingress_state().unwrap()
        );

        // And a second threaded run from fresh state is bit-identical.
        let mut c = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        assert_eq!(c.run_trace(&trace), threaded);
    }

    #[test]
    fn merge_preserves_per_shard_order_and_multiset() {
        let sw = ShardedSwitch::new_slot(
            &passthrough("in"),
            &passthrough("out"),
            ShardConfig::new(3).with_seed(7),
        )
        .unwrap();
        let parts: Vec<Vec<Packet>> = (0..3)
            .map(|s| {
                (0..4)
                    .map(|i| Packet::new().with("shard", s).with("i", i))
                    .collect()
            })
            .collect();
        let merged = sw.merge(parts.clone());
        assert_eq!(merged.len(), 12);
        for s in 0..3 {
            let sub: Vec<&Packet> = merged
                .iter()
                .filter(|p| p.get("shard") == Some(s))
                .collect();
            let orig: Vec<&Packet> = parts[s as usize].iter().collect();
            assert_eq!(sub, orig, "shard {s} order broken by merge");
        }
    }

    #[test]
    fn fallback_shard_still_matches_serial_exactly() {
        let ingress = scalar_counter();
        let egress = passthrough("out");
        let trace = flow_trace(200);
        let mut serial = Switch::new_slot(&ingress, &egress, 512).unwrap();
        let serial_out = serial.run_trace(&trace);
        let mut sharded = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(4)).unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.run_trace(&trace), serial_out);
        assert_eq!(
            sharded.export_merged_ingress_state().unwrap(),
            serial.export_ingress_state()
        );
    }

    #[test]
    fn import_state_broadcast_roundtrips_through_merged_export() {
        let ingress = array_counter("count", "counts", 64);
        let egress = passthrough("out");
        // Build a warm serial state.
        let mut serial = Switch::new_slot(&ingress, &egress, 512).unwrap();
        serial.run_trace(&flow_trace(300));
        let warm_in = serial.export_ingress_state();
        let warm_eg = serial.export_egress_state();

        let mut sharded = ShardedSwitch::new_slot(&ingress, &egress, ShardConfig::new(4)).unwrap();
        sharded.import_state(&warm_in, &warm_eg);
        assert_eq!(sharded.export_merged_ingress_state().unwrap(), warm_in);

        // Continuing from the warm state matches serial continuation.
        let more = flow_trace(100);
        let serial_more = serial.run_trace(&more);
        let parts = sharded.run_trace_partitioned(&more);
        let mut flat: Vec<(usize, Packet)> = Vec::new();
        for (s, part) in parts.iter().enumerate() {
            let idxs: Vec<usize> = more
                .iter()
                .enumerate()
                .filter(|(_, p)| sharded.plan().steer(p) == s)
                .map(|(i, _)| i)
                .collect();
            for (i, p) in idxs.into_iter().zip(part.iter()) {
                flat.push((i, p.clone()));
            }
        }
        flat.sort_by_key(|(i, _)| *i);
        // Timestamps differ (the warm serial switch's clock kept
        // running), so compare the algorithm's own fields.
        for (i, p) in flat {
            assert_eq!(
                p.get("c"),
                serial_more[i].get("c"),
                "packet {i} diverged after warm start"
            );
        }
        assert_eq!(
            sharded.export_merged_ingress_state().unwrap(),
            serial.export_ingress_state()
        );
    }

    #[test]
    fn explicit_field_steering_declines_merged_state() {
        let ingress = array_counter("count", "counts", 64);
        let mut sharded = ShardedSwitch::new_slot(
            &ingress,
            &passthrough("out"),
            ShardConfig::new(2).with_steer(SteerMode::Fields(vec!["flow".into()])),
        )
        .unwrap();
        sharded.run_trace(&flow_trace(50));
        assert!(sharded.export_merged_ingress_state().is_err());
        assert_eq!(sharded.export_shard_states().len(), 2);
    }
}
