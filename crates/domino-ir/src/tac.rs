//! Three-address code (TAC) — the normalized form of a packet transaction.
//!
//! After the normalization passes (§4.1) every statement is one of:
//!
//! * a **state read flank** `pkt.f = state;`,
//! * a **state write flank** `state = pkt.f;`,
//! * a packet-field operation `pkt.f1 = pkt.f2 op pkt.f3;` (or a unary /
//!   conditional / intrinsic form).
//!
//! All arithmetic happens on packet fields; state is only read and written
//! whole (this is what makes pipelining tractable, §4.1 "Rewriting state
//! variable operations"). The paper allows an operand of a TAC statement to
//! be an intrinsic call; we instead keep intrinsic calls as a standalone
//! right-hand side with an optional folded `% CONST` (the hash unit delivers
//! a bounded value), which is equivalent and simpler to map onto atoms.

use domino_ast::{BinOp, StateVar, UnOp};
use std::collections::BTreeSet;
use std::fmt;

/// An operand of a TAC statement: a packet field or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A packet field (header or metadata/temporary).
    Field(String),
    /// An immediate constant.
    Const(i32),
}

impl Operand {
    /// The field name, if this is a field operand.
    pub fn field(&self) -> Option<&str> {
        match self {
            Operand::Field(f) => Some(f),
            Operand::Const(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Field(n) => write!(f, "pkt.{n}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A reference to a state variable: a scalar, or an array element whose
/// index is a packet field or constant (the index expression has been moved
/// into the read flank by normalization).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // struct-variant fields are documented on the variant
pub enum StateRef {
    /// `x`
    Scalar(String),
    /// `arr[idx]`
    Array { name: String, index: Operand },
}

impl StateRef {
    /// The state variable's name (ignoring the index).
    pub fn name(&self) -> &str {
        match self {
            StateRef::Scalar(n) => n,
            StateRef::Array { name, .. } => name,
        }
    }
}

impl fmt::Display for StateRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateRef::Scalar(n) => write!(f, "{n}"),
            StateRef::Array { name, index } => write!(f, "{name}[{index}]"),
        }
    }
}

/// The right-hand side of a packet-field assignment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // struct-variant fields are documented on the variant
pub enum TacRhs {
    /// `o`
    Copy(Operand),
    /// `op o`
    Unary(UnOp, Operand),
    /// `a op b`
    Binary(BinOp, Operand, Operand),
    /// `cond ? a : b` — the conditional operator has 4 arguments in total
    /// (§4.1 footnote 5).
    Ternary(Operand, Operand, Operand),
    /// `name(args...) % modulo` — intrinsic call with optional folded
    /// modulo.
    Intrinsic {
        name: String,
        args: Vec<Operand>,
        modulo: Option<i32>,
    },
}

impl TacRhs {
    /// All operands read by this right-hand side.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            TacRhs::Copy(o) | TacRhs::Unary(_, o) => vec![o],
            TacRhs::Binary(_, a, b) => vec![a, b],
            TacRhs::Ternary(c, a, b) => vec![c, a, b],
            TacRhs::Intrinsic { args, .. } => args.iter().collect(),
        }
    }
}

impl fmt::Display for TacRhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TacRhs::Copy(o) => write!(f, "{o}"),
            TacRhs::Unary(op, o) => write!(f, "{}{o}", op.symbol()),
            TacRhs::Binary(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            TacRhs::Ternary(c, a, b) => write!(f, "{c} ? {a} : {b}"),
            TacRhs::Intrinsic { name, args, modulo } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(m) = modulo {
                    write!(f, " % {m}")?;
                }
                Ok(())
            }
        }
    }
}

/// One three-address code statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // struct-variant fields are documented on the variant
pub enum TacStmt {
    /// Read flank: `pkt.dst = state;`
    ReadState { dst: String, state: StateRef },
    /// Write flank: `state = src;`
    WriteState { state: StateRef, src: Operand },
    /// Packet-field computation: `pkt.dst = rhs;`
    Assign { dst: String, rhs: TacRhs },
}

impl TacStmt {
    /// Packet fields read by this statement (including array index fields).
    pub fn fields_read(&self) -> BTreeSet<&str> {
        fn add_op<'a>(o: &'a Operand, out: &mut BTreeSet<&'a str>) {
            if let Operand::Field(name) = o {
                out.insert(name.as_str());
            }
        }
        let mut out = BTreeSet::new();
        match self {
            TacStmt::ReadState { state, .. } => {
                if let StateRef::Array { index, .. } = state {
                    add_op(index, &mut out);
                }
            }
            TacStmt::WriteState { state, src } => {
                if let StateRef::Array { index, .. } = state {
                    add_op(index, &mut out);
                }
                add_op(src, &mut out);
            }
            TacStmt::Assign { rhs, .. } => {
                for o in rhs.operands() {
                    add_op(o, &mut out);
                }
            }
        }
        out
    }

    /// The packet field written by this statement, if any.
    pub fn field_written(&self) -> Option<&str> {
        match self {
            TacStmt::ReadState { dst, .. } | TacStmt::Assign { dst, .. } => Some(dst),
            TacStmt::WriteState { .. } => None,
        }
    }

    /// The state variable read by this statement, if any.
    pub fn state_read(&self) -> Option<&str> {
        match self {
            TacStmt::ReadState { state, .. } => Some(state.name()),
            _ => None,
        }
    }

    /// The state variable written by this statement, if any.
    pub fn state_written(&self) -> Option<&str> {
        match self {
            TacStmt::WriteState { state, .. } => Some(state.name()),
            _ => None,
        }
    }
}

impl fmt::Display for TacStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TacStmt::ReadState { dst, state } => write!(f, "pkt.{dst} = {state};"),
            TacStmt::WriteState { state, src } => write!(f, "{state} = {src};"),
            TacStmt::Assign { dst, rhs } => write!(f, "pkt.{dst} = {rhs};"),
        }
    }
}

/// A normalized packet transaction: declarations plus straight-line TAC.
#[derive(Debug, Clone, PartialEq)]
pub struct TacProgram {
    /// Transaction name.
    pub name: String,
    /// Fields declared in the packet struct (the *observable* fields —
    /// compiler temporaries are not included).
    pub declared_fields: Vec<String>,
    /// State variable declarations.
    pub state: Vec<StateVar>,
    /// The straight-line statement list.
    pub stmts: Vec<TacStmt>,
}

impl TacProgram {
    /// All packet fields mentioned anywhere (declared + temporaries), in
    /// first-mention order.
    pub fn all_fields(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        let push = |name: &str, seen: &mut BTreeSet<String>, out: &mut Vec<String>| {
            if seen.insert(name.to_string()) {
                out.push(name.to_string());
            }
        };
        for f in &self.declared_fields {
            push(f, &mut seen, &mut out);
        }
        for s in &self.stmts {
            for f in s.fields_read() {
                push(f, &mut seen, &mut out);
            }
            if let Some(f) = s.field_written() {
                push(f, &mut seen, &mut out);
            }
        }
        out
    }
}

impl fmt::Display for TacProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stmts {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fld(n: &str) -> Operand {
        Operand::Field(n.into())
    }

    #[test]
    fn display_matches_paper_style() {
        let s = TacStmt::Assign {
            dst: "tmp".into(),
            rhs: TacRhs::Binary(BinOp::Sub, fld("arrival"), fld("last_time")),
        };
        assert_eq!(s.to_string(), "pkt.tmp = pkt.arrival - pkt.last_time;");

        let r = TacStmt::ReadState {
            dst: "saved_hop".into(),
            state: StateRef::Array {
                name: "saved_hop".into(),
                index: fld("id"),
            },
        };
        assert_eq!(r.to_string(), "pkt.saved_hop = saved_hop[pkt.id];");

        let w = TacStmt::WriteState {
            state: StateRef::Scalar("counter".into()),
            src: Operand::Const(0),
        };
        assert_eq!(w.to_string(), "counter = 0;");

        let i = TacStmt::Assign {
            dst: "id".into(),
            rhs: TacRhs::Intrinsic {
                name: "hash2".into(),
                args: vec![fld("sport"), fld("dport")],
                modulo: Some(8000),
            },
        };
        assert_eq!(
            i.to_string(),
            "pkt.id = hash2(pkt.sport, pkt.dport) % 8000;"
        );
    }

    #[test]
    fn fields_read_collects_index_and_operands() {
        let w = TacStmt::WriteState {
            state: StateRef::Array {
                name: "a".into(),
                index: fld("id"),
            },
            src: fld("val"),
        };
        let read: Vec<&str> = w.fields_read().into_iter().collect();
        assert_eq!(read, vec!["id", "val"]);
    }

    #[test]
    fn ternary_reads_three_operands() {
        let s = TacStmt::Assign {
            dst: "next".into(),
            rhs: TacRhs::Ternary(fld("c"), fld("a"), Operand::Const(4)),
        };
        let read: Vec<&str> = s.fields_read().into_iter().collect();
        assert_eq!(read, vec!["a", "c"]);
        assert_eq!(s.field_written(), Some("next"));
    }

    #[test]
    fn state_accessors() {
        let r = TacStmt::ReadState {
            dst: "x".into(),
            state: StateRef::Scalar("counter".into()),
        };
        assert_eq!(r.state_read(), Some("counter"));
        assert_eq!(r.state_written(), None);
        let w = TacStmt::WriteState {
            state: StateRef::Scalar("counter".into()),
            src: fld("x"),
        };
        assert_eq!(w.state_written(), Some("counter"));
        assert_eq!(w.state_read(), None);
    }

    #[test]
    fn all_fields_dedups_in_order() {
        let p = TacProgram {
            name: "t".into(),
            declared_fields: vec!["a".into(), "b".into()],
            state: vec![],
            stmts: vec![
                TacStmt::Assign {
                    dst: "tmp".into(),
                    rhs: TacRhs::Copy(fld("a")),
                },
                TacStmt::Assign {
                    dst: "tmp2".into(),
                    rhs: TacRhs::Binary(BinOp::Add, fld("tmp"), fld("b")),
                },
            ],
        };
        assert_eq!(p.all_fields(), vec!["a", "b", "tmp", "tmp2"]);
    }
}
