//! Token definitions for the Domino language.

use crate::span::Span;
use std::fmt;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // punctuation/operator variants are their own documentation
pub enum TokenKind {
    // Literals and identifiers
    /// An integer literal (decimal or `0x` hexadecimal), already parsed.
    Int(i64),
    /// An identifier or a keyword not otherwise special-cased.
    Ident(String),

    // Keywords
    KwInt,
    KwVoid,
    KwStruct,
    KwIf,
    KwElse,
    /// `#define` directive introducer (lexed as a single token).
    HashDefine,
    /// Keywords that exist in C but are *banned* in Domino (Table 1). The
    /// lexer accepts them so the parser can produce a targeted diagnostic.
    KwBanned(&'static str),

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Question,
    Colon,

    // Operators
    Assign,      // =
    PlusAssign,  // +=
    MinusAssign, // -=
    PlusPlus,    // ++
    MinusMinus,  // --
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl, // <<
    Shr, // >>
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Amp,      // &
    Pipe,     // |
    Caret,    // ^
    AmpAmp,   // &&
    PipePipe, // ||
    Bang,     // !
    Tilde,    // ~

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::KwInt => "`int`".into(),
            TokenKind::KwVoid => "`void`".into(),
            TokenKind::KwStruct => "`struct`".into(),
            TokenKind::KwIf => "`if`".into(),
            TokenKind::KwElse => "`else`".into(),
            TokenKind::HashDefine => "`#define`".into(),
            TokenKind::KwBanned(k) => format!("`{k}`"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Question => "`?`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::PlusAssign => "`+=`".into(),
            TokenKind::MinusAssign => "`-=`".into(),
            TokenKind::PlusPlus => "`++`".into(),
            TokenKind::MinusMinus => "`--`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Shl => "`<<`".into(),
            TokenKind::Shr => "`>>`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Amp => "`&`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::AmpAmp => "`&&`".into(),
            TokenKind::PipePipe => "`||`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Tilde => "`~`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}
