//! Sharded-switch differential suite: flow-steered multi-core execution
//! must be observably equivalent to the serial switch for **every**
//! Table 4 algorithm, at every shard count — with the oracle chosen by
//! the plan's partitioning tier.
//!
//! The contract under test (see `banzai::shard`):
//!
//! * **Exact** tier (keyed steering): each shard's output stream equals
//!   the serial switch's outputs at exactly the positions steered to
//!   that shard — full packets, queue metadata included (per-flow order
//!   preservation follows);
//! * **Replicable** tier (full sketch replica per shard): per-packet
//!   in-stream estimates are shard-local by design, so positional
//!   bit-identity is not asserted; instead the sketch's own contract
//!   holds (`bench::sketch::verify_sketch` — spec replay, overestimate,
//!   mass conservation, the (ε, δ) bound) on both the serial and the
//!   merged state;
//! * in **both** tiers the merged exported state is bit-identical to
//!   the serial state (sum/max merges are exact on final state) and
//!   the threaded run reproduces the sequential merge bit-for-bit
//!   (scheduling cannot leak into outputs);
//! * algorithms whose state partitions under *neither* tier fall back
//!   to a single shard with a two-tier diagnostic — and still match
//!   serial exactly.

use banzai::{AtomPipeline, ShardConfig, ShardTier, ShardedSwitch, SteerMode, Switch, Target};
use domino_ir::Packet;

const TRACE_LEN: usize = 600;
const SEED: u64 = 0x000D_0771_2016;
const CAPACITY: usize = 512;

/// Compiles an algorithm on its least-expressive paper target.
fn compile_least(a: &algorithms::Algorithm) -> AtomPipeline {
    let kind = a.paper.least_atom.expect("algorithm must map");
    let target = if a.name == "codel_lut" {
        Target::banzai_with_lut(kind)
    } else {
        Target::banzai(kind)
    };
    domino_compiler::compile(a.source, &target).unwrap_or_else(|e| panic!("{}: {e}", a.name))
}

/// Asserts a sharded ingress/egress pair is observably equivalent to the
/// serial switch at `shards` shards on `trace`, with the oracle routed
/// by the plan's tier: per-shard output subsequences for `Exact` and
/// `Fallback`, the sketch contract for `Replicable`; merged state and
/// counters in every tier.
fn sharded_pair_differential(
    label: &str,
    ingress: &AtomPipeline,
    egress: &AtomPipeline,
    trace: &[Packet],
    shards: usize,
) {
    let mut serial = Switch::new_slot(ingress, egress, CAPACITY).unwrap();
    let serial_out = serial
        .run(trace)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");

    let mut sharded = ShardedSwitch::new_slot(ingress, egress, ShardConfig::new(shards)).unwrap();
    let parts = sharded.run(trace).partitioned().unwrap();

    let assignment: Vec<usize> = trace
        .iter()
        .enumerate()
        .map(|(i, p)| sharded.plan().steer(i, p))
        .collect();
    match sharded.plan().tier() {
        ShardTier::Exact | ShardTier::Fallback => {
            for (s, part) in parts.iter().enumerate() {
                let expected: Vec<&Packet> = assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, &shard)| shard == s)
                    .map(|(i, _)| &serial_out[i])
                    .collect();
                let got: Vec<&Packet> = part.iter().collect();
                assert_eq!(
                    got, expected,
                    "{label} @ {shards} shards: shard {s} diverged from serial"
                );
            }
        }
        ShardTier::Replicable => {
            // Replica shards see only their slice of the trace, so
            // in-stream sketch reads differ positionally; packet
            // conservation per shard plus the statistical contract on
            // the merged state are the oracle.
            for (s, part) in parts.iter().enumerate() {
                let offered = assignment.iter().filter(|&&shard| shard == s).count();
                assert_eq!(
                    part.len(),
                    offered,
                    "{label} @ {shards} shards: shard {s} lost packets"
                );
            }
            let spec = sharded
                .plan()
                .ingress_replica()
                .expect("replicable tier carries an ingress replica spec")
                .clone();
            bench::sketch::verify_sketch(
                &spec,
                trace,
                &serial.export_ingress_state(),
                &format!("{label} serial"),
            );
            bench::sketch::verify_sketch(
                &spec,
                trace,
                &sharded.export_merged_ingress_state().unwrap(),
                &format!("{label} @ {shards} merged"),
            );
        }
    }
    assert_eq!(
        sharded.export_merged_ingress_state().unwrap(),
        serial.export_ingress_state(),
        "{label} @ {shards} shards: merged ingress state diverged"
    );
    assert_eq!(
        sharded.export_merged_egress_state().unwrap(),
        serial.export_egress_state(),
        "{label} @ {shards} shards: merged egress state diverged"
    );
    assert_eq!(sharded.transmitted(), serial.transmitted(), "{label}");
    assert_eq!(sharded.drops(), serial.drops(), "{label}");
}

/// Every mapping Table 4 algorithm, at 1/2/4/8 shards: partitionable
/// algorithms fan out, the rest exercise the single-shard fallback — the
/// serial equivalence must hold either way.
#[test]
fn all_table4_algorithms_shard_safely() {
    for a in algorithms::TABLE4
        .iter()
        .filter(|a| a.paper.least_atom.is_some())
    {
        let ingress = compile_least(a);
        let egress = AtomPipeline::passthrough("egress");
        let trace = a.trace(TRACE_LEN, SEED);
        for shards in [1, 2, 4, 8] {
            sharded_pair_differential(a.name, &ingress, &egress, &trace, shards);
        }
    }
}

/// The partitionability split is exactly the paper's locality argument,
/// now three-tiered: per-flow keyed state shards exactly; multi-hash
/// sketches with commutative updates shard by replication; global
/// scalar registers do not shard at all.
#[test]
fn partitionability_matches_state_indexing_structure() {
    let keyed = [
        "flowlet",
        "conga",
        "dns_ttl_change",
        "sampled_netflow",
        "stfq",
    ];
    let replicable = ["bloom_filter", "heavy_hitters"];
    let fallback = ["rcp", "hull", "avq", "codel_lut"];
    for name in keyed {
        let a = algorithms::by_name(name).unwrap();
        let sw = ShardedSwitch::new_slot(
            &compile_least(&a),
            &AtomPipeline::passthrough("egress"),
            ShardConfig::new(4),
        )
        .unwrap();
        assert_eq!(sw.plan().effective(), 4, "{name} should shard");
        assert_eq!(sw.plan().tier(), ShardTier::Exact, "{name}");
        assert!(
            sw.plan().fallback().is_none(),
            "{name} should not fall back"
        );
        assert!(sw.plan().flow_key().is_some(), "{name} should be keyed");
    }
    for name in replicable {
        let a = algorithms::by_name(name).unwrap();
        let sw = ShardedSwitch::new_slot(
            &compile_least(&a),
            &AtomPipeline::passthrough("egress"),
            ShardConfig::new(4),
        )
        .unwrap();
        assert_eq!(sw.plan().effective(), 4, "{name} should replicate");
        assert_eq!(sw.plan().tier(), ShardTier::Replicable, "{name}");
        assert!(
            sw.plan().fallback().is_none(),
            "{name} should not fall back"
        );
        assert!(
            sw.plan().ingress_replica().is_some(),
            "{name} should carry a replica spec"
        );
    }
    for name in fallback {
        let a = algorithms::by_name(name).unwrap();
        let sw = ShardedSwitch::new_slot(
            &compile_least(&a),
            &AtomPipeline::passthrough("egress"),
            ShardConfig::new(4),
        )
        .unwrap();
        assert_eq!(sw.plan().effective(), 1, "{name} should fall back");
        assert_eq!(sw.plan().tier(), ShardTier::Fallback, "{name}");
        let why = sw
            .plan()
            .fallback()
            .unwrap_or_else(|| panic!("{name}: no diagnostic"));
        // The diagnostic records the full tier decision: why the exact
        // tier said no AND why the replica tier said no.
        assert!(why.contains("not Exact-partitionable"), "{name}: `{why}`");
        assert!(why.contains("not Replicable"), "{name}: `{why}`");
        assert!(
            why.contains("scalar state") || why.contains("distinct fields"),
            "{name}: unexpected diagnostic `{why}`"
        );
    }
}

/// rcp's diagnostic names the offending global register — the message a
/// user sees when asking for shards they cannot have.
#[test]
fn rcp_fallback_diagnostic_names_the_global_register() {
    let a = algorithms::by_name("rcp").unwrap();
    let sw = ShardedSwitch::new_slot(
        &compile_least(&a),
        &AtomPipeline::passthrough("egress"),
        ShardConfig::new(8),
    )
    .unwrap();
    let why = sw.plan().fallback().unwrap();
    assert!(why.contains("`input_traffic_bytes`"), "{why}");
    assert_eq!(sw.plan().requested(), 8);
    assert_eq!(sw.shard_count(), 1);
}

/// Flowlet at ingress *and* egress: the two pipelines extract the same
/// flow key, so the pair shards (the ingress/egress compatibility rule).
#[test]
fn flowlet_both_sides_shares_one_flow_key() {
    let a = algorithms::by_name("flowlet").unwrap();
    let pipeline = compile_least(&a);
    let trace = a.trace(TRACE_LEN, SEED);

    let sharded = ShardedSwitch::new_slot(&pipeline, &pipeline, ShardConfig::new(4)).unwrap();
    assert_eq!(sharded.plan().effective(), 4, "{}", sharded.plan());
    sharded_pair_differential("flowlet/flowlet", &pipeline, &pipeline, &trace, 4);
}

/// Thread scheduling cannot leak into outputs: the threaded run equals
/// the sequential merge bit-for-bit, across repeated runs and batch
/// sizes.
#[test]
fn threaded_run_is_deterministic_for_flowlet() {
    let a = algorithms::by_name("flowlet").unwrap();
    let ingress = compile_least(&a);
    let egress = AtomPipeline::passthrough("egress");
    let trace = a.trace(2_000, SEED);

    let mut reference: Option<Vec<Packet>> = None;
    for batch in [7, 64, 1024] {
        let cfg = ShardConfig::new(4).with_batch(batch);
        let mut threaded = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
        let got = threaded.run(&trace).collect().unwrap();
        let mut sequential = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let run = sequential.run(&trace).instrumented().unwrap();
        assert_eq!(got, run.merged, "batch {batch}: threaded vs sequential");
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "batch {batch}: batch size leaked into output"),
        }
    }
}

/// The merge seed permutes only the cross-flow interleave: per-shard
/// subsequences (hence per-flow sequences) are seed-independent.
#[test]
fn merge_seed_only_permutes_across_flows() {
    let a = algorithms::by_name("flowlet").unwrap();
    let ingress = compile_least(&a);
    let egress = AtomPipeline::passthrough("egress");
    let trace = a.trace(1_000, SEED);

    let mut outs = Vec::new();
    for seed in [1u64, 0xDEAD_BEEF] {
        let cfg = ShardConfig::new(4).with_seed(seed);
        let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let merged = sw.run(&trace).collect().unwrap();
        // Reconstruct per-shard subsequences from the merged stream by
        // steering each *output* packet (flowlet passes its key roots
        // through untouched).
        let mut per_shard: Vec<Vec<Packet>> = vec![Vec::new(); 4];
        for p in &merged {
            // Keyed steering is content-pure: the trace index argument
            // is ignored, so re-steering an *output* packet is sound.
            per_shard[sw.plan().steer(0, p)].push(p.clone());
        }
        outs.push(per_shard);
    }
    assert_eq!(
        outs[0], outs[1],
        "per-shard streams must be seed-independent"
    );
}

/// Explicit-field steering (the configurable key) shards stateless
/// pipelines by the caller's flow definition.
#[test]
fn explicit_field_steering_preserves_per_flow_order() {
    let ingress = AtomPipeline::passthrough("in");
    let egress = AtomPipeline::passthrough("out");
    let trace: Vec<Packet> = (0..300)
        .map(|i| Packet::new().with("flow", i % 13).with("seq", i))
        .collect();
    let cfg = ShardConfig::new(4).with_steer(SteerMode::Fields(vec!["flow".into()]));
    let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
    let merged = sw.run(&trace).collect().unwrap();
    assert_eq!(merged.len(), 300);
    for flow in 0..13 {
        let seqs: Vec<i32> = merged
            .iter()
            .filter(|p| p.get("flow") == Some(flow))
            .map(|p| p.get("seq").unwrap())
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "flow {flow} reordered");
    }
}

/// The facade helper wires the whole stack together.
#[test]
fn facade_sharded_switch_runs_flowlet_end_to_end() {
    let a = algorithms::by_name("flowlet").unwrap();
    let mut sw = domino::sharded_switch(
        a.source,
        a.source,
        &Target::banzai(banzai::AtomKind::Pairs),
        banzai::ShardConfig::new(4),
    )
    .unwrap();
    assert_eq!(sw.plan().effective(), 4);
    let out = sw.run(&a.trace(500, SEED)).collect().unwrap();
    assert_eq!(out.len(), 500);
    assert_eq!(sw.transmitted(), 500);
}
