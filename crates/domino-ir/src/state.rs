//! Persistent switch state: the registers and register arrays that a packet
//! transaction creates and modifies, and that persist across packets.

use domino_ast::{StateKind, StateVar};
use std::collections::BTreeMap;
use std::fmt;

/// The value of one state variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateValue {
    /// A single register.
    Scalar(i32),
    /// A register array.
    Array(Vec<i32>),
}

/// All state variables of a program.
///
/// Array indexing is defined for *any* i32 index by reducing it modulo the
/// array size (`rem_euclid`), mirroring how a hardware address decoder uses
/// only the low address bits. Domino programs normally produce in-range
/// indices themselves (`hash2(...) % N`), so this is a safety net, not a
/// semantic crutch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateStore {
    vars: BTreeMap<String, StateValue>,
}

impl StateStore {
    /// Empty store.
    pub fn new() -> Self {
        StateStore::default()
    }

    /// Initializes the store from checked declarations: scalars start at
    /// their initializer, arrays have every element set to it.
    pub fn from_decls(decls: &[StateVar]) -> Self {
        let mut vars = BTreeMap::new();
        for d in decls {
            let v = match d.kind {
                StateKind::Scalar => StateValue::Scalar(d.init),
                StateKind::Array { size } => StateValue::Array(vec![d.init; size as usize]),
            };
            vars.insert(d.name.clone(), v);
        }
        StateStore { vars }
    }

    /// Registers a scalar with an initial value (used by tests and by the
    /// Banzai machine when installing atom-local state).
    pub fn insert_scalar(&mut self, name: &str, init: i32) {
        self.vars.insert(name.to_string(), StateValue::Scalar(init));
    }

    /// Registers an array.
    pub fn insert_array(&mut self, name: &str, size: usize, init: i32) {
        self.vars
            .insert(name.to_string(), StateValue::Array(vec![init; size]));
    }

    /// Reads a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `name` is missing or is an array — both indicate a
    /// compiler/simulator bug (sema has already validated the program).
    pub fn read_scalar(&self, name: &str) -> i32 {
        match self.vars.get(name) {
            Some(StateValue::Scalar(v)) => *v,
            Some(StateValue::Array(_)) => {
                panic!("internal error: `{name}` is an array, read as scalar")
            }
            None => panic!("internal error: unknown state variable `{name}`"),
        }
    }

    /// Writes a scalar.
    pub fn write_scalar(&mut self, name: &str, value: i32) {
        match self.vars.get_mut(name) {
            Some(StateValue::Scalar(v)) => *v = value,
            Some(StateValue::Array(_)) => {
                panic!("internal error: `{name}` is an array, written as scalar")
            }
            None => panic!("internal error: unknown state variable `{name}`"),
        }
    }

    /// Reads an array element (index reduced modulo the size).
    pub fn read_array(&self, name: &str, index: i32) -> i32 {
        match self.vars.get(name) {
            Some(StateValue::Array(v)) => v[Self::wrap(index, v.len())],
            Some(StateValue::Scalar(_)) => {
                panic!("internal error: `{name}` is a scalar, read as array")
            }
            None => panic!("internal error: unknown state variable `{name}`"),
        }
    }

    /// Writes an array element (index reduced modulo the size).
    pub fn write_array(&mut self, name: &str, index: i32, value: i32) {
        match self.vars.get_mut(name) {
            Some(StateValue::Array(v)) => {
                let n = v.len();
                v[Self::wrap(index, n)] = value;
            }
            Some(StateValue::Scalar(_)) => {
                panic!("internal error: `{name}` is a scalar, written as array")
            }
            None => panic!("internal error: unknown state variable `{name}`"),
        }
    }

    fn wrap(index: i32, len: usize) -> usize {
        (index as i64).rem_euclid(len as i64) as usize
    }

    /// Overwrites variables from a snapshot — the import half of the
    /// state export/import hook (see `FlatState::import` for the
    /// flat-layout twin). Every snapshot variable must already exist here
    /// with the same shape.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot variable is unknown or has the wrong
    /// kind/size — both indicate a partitioning bug upstream.
    pub fn import(&mut self, snapshot: &StateStore) {
        for (name, value) in snapshot.iter() {
            match (self.vars.get_mut(name), value) {
                (Some(StateValue::Scalar(dst)), StateValue::Scalar(v)) => *dst = *v,
                (Some(StateValue::Array(dst)), StateValue::Array(vs)) if dst.len() == vs.len() => {
                    dst.copy_from_slice(vs);
                }
                (None, _) => panic!("internal error: unknown state variable `{name}`"),
                _ => panic!("internal error: state variable `{name}` has the wrong shape"),
            }
        }
    }

    /// Direct access to a variable's value (for inspection in tests and
    /// example binaries).
    pub fn get(&self, name: &str) -> Option<&StateValue> {
        self.vars.get(name)
    }

    /// Iterates `(name, value)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StateValue)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of state variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if no state is registered.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

impl fmt::Display for StateStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.iter() {
            match value {
                StateValue::Scalar(v) => writeln!(f, "{name} = {v}")?,
                StateValue::Array(v) => {
                    let preview: Vec<String> = v.iter().take(8).map(|x| x.to_string()).collect();
                    let ell = if v.len() > 8 { ", ..." } else { "" };
                    writeln!(f, "{name}[{}] = [{}{}]", v.len(), preview.join(", "), ell)?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decls() -> Vec<StateVar> {
        vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
        ]
    }

    #[test]
    fn initializes_from_decls() {
        let s = StateStore::from_decls(&decls());
        assert_eq!(s.read_scalar("c"), 7);
        for i in 0..4 {
            assert_eq!(s.read_array("arr", i), -1);
        }
    }

    #[test]
    fn scalar_write_read() {
        let mut s = StateStore::from_decls(&decls());
        s.write_scalar("c", 42);
        assert_eq!(s.read_scalar("c"), 42);
    }

    #[test]
    fn array_write_read() {
        let mut s = StateStore::from_decls(&decls());
        s.write_array("arr", 2, 99);
        assert_eq!(s.read_array("arr", 2), 99);
        assert_eq!(s.read_array("arr", 1), -1);
    }

    #[test]
    fn index_wraps_like_an_address_decoder() {
        let mut s = StateStore::from_decls(&decls());
        s.write_array("arr", 6, 5); // 6 % 4 == 2
        assert_eq!(s.read_array("arr", 2), 5);
        s.write_array("arr", -1, 8); // -1 rem_euclid 4 == 3
        assert_eq!(s.read_array("arr", 3), 8);
    }

    #[test]
    fn import_overwrites_matching_variables() {
        let mut a = StateStore::from_decls(&decls());
        a.write_scalar("c", 42);
        a.write_array("arr", 1, 9);
        let mut b = StateStore::from_decls(&decls());
        b.import(&a);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown state variable `ghost`")]
    fn import_rejects_unknown_variables() {
        let mut b = StateStore::from_decls(&decls());
        let mut snap = StateStore::new();
        snap.insert_scalar("ghost", 1);
        b.import(&snap);
    }

    #[test]
    #[should_panic(expected = "read as scalar")]
    fn kind_confusion_panics() {
        let s = StateStore::from_decls(&decls());
        s.read_scalar("arr");
    }

    #[test]
    fn display_previews_arrays() {
        let s = StateStore::from_decls(&decls());
        let text = s.to_string();
        assert!(text.contains("c = 7"), "{text}");
        assert!(text.contains("arr[4]"), "{text}");
    }
}
