//! Golden tests for the compiler-pass figures (E5–E7): each normalization
//! pass applied to the paper's running example (flowlet switching,
//! Figure 3a) must produce the artifact shown in Figures 5–9, and the
//! final pipeline must be Figure 3b.

use banzai::{AtomKind, Target};
use domino_compiler::{normalize, Compilation};

const FLOWLET: &str = include_str!("../crates/algorithms/src/domino/flowlet.domino");

fn compilation() -> Compilation {
    normalize(FLOWLET).expect("flowlet normalizes")
}

#[test]
fn figure5_branch_removal() {
    let c = compilation();
    let text = Compilation::render_assigns(&c.straightline);
    // The branch becomes a hoisted condition and a conditional write
    // (Figure 5's rewrite).
    assert!(
        text.contains("pkt.__br = ((pkt.arrival - last_time[pkt.id]) > 5);"),
        "{text}"
    );
    assert!(
        text.contains("saved_hop[pkt.id] = (pkt.__br ? pkt.new_hop : saved_hop[pkt.id]);"),
        "{text}"
    );
    // No `if` remains: straight-line assignments only.
    assert!(!text.contains("if"), "{text}");
}

#[test]
fn figure6_state_flanks() {
    let c = compilation();
    let text = Compilation::render_assigns(&c.flanked);
    // Read flanks appear before first use...
    assert!(
        text.contains("pkt.last_time_1 = last_time[pkt.id];"),
        "{text}"
    );
    assert!(
        text.contains("pkt.saved_hop_1 = saved_hop[pkt.id];"),
        "{text}"
    );
    // ...interior uses are rewritten to the temporaries...
    assert!(
        text.contains("pkt.saved_hop_1 = (pkt.__br ? pkt.new_hop : pkt.saved_hop_1);"),
        "{text}"
    );
    // ...and write flanks close the transaction (Figure 6).
    assert!(
        text.trim_end()
            .ends_with("saved_hop[pkt.id] = pkt.saved_hop_1;")
            || text.contains("last_time[pkt.id] = pkt.last_time_1;"),
        "{text}"
    );
}

#[test]
fn figure7_ssa_numbering() {
    let c = compilation();
    let text = Compilation::render_assigns(&c.ssa);
    // Every field assigned exactly once, with the paper's numeric-suffix
    // style: pkt.id0, pkt.last_time_10 (flank temp version 0), etc.
    assert!(text.contains("pkt.id0 ="), "{text}");
    assert!(
        text.contains("pkt.last_time_10 = last_time[pkt.id0];"),
        "{text}"
    );
    assert!(
        text.contains("last_time[pkt.id0] = pkt.last_time_11;"),
        "{text}"
    );
    // Single assignment per field.
    let mut targets: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("pkt."))
        .map(|l| l.split(" = ").next().unwrap())
        .collect();
    let n = targets.len();
    targets.sort_unstable();
    targets.dedup();
    assert_eq!(targets.len(), n, "duplicate SSA assignment:\n{text}");
}

#[test]
fn figure8_three_address_code() {
    let c = compilation();
    let text = c.tac.to_string();
    // The nine-ish statements of Figure 8, in our naming. Notably the
    // write flank takes pkt.arrival directly (copy propagation, Figure 8
    // line 9).
    assert!(
        text.contains("pkt.id0 = hash2(pkt.sport, pkt.dport) % 8000;"),
        "{text}"
    );
    assert!(
        text.contains("pkt.new_hop0 = hash3(pkt.sport, pkt.dport, pkt.arrival) % 10;"),
        "{text}"
    );
    assert!(text.contains("last_time[pkt.id0] = pkt.arrival;"), "{text}");
    assert!(
        text.contains("pkt.__t = pkt.arrival - pkt.last_time_10;"),
        "{text}"
    );
    assert!(text.contains("pkt.__br0 = pkt.__t > 5;"), "{text}");
    // Every statement is single-operation (three-address form).
    for line in text.lines() {
        let rhs = line.split(" = ").nth(1).unwrap_or("");
        let ops = rhs
            .matches(['+', '-', '>', '<', '&', '|', '^'].as_ref())
            .count();
        assert!(ops <= 2, "statement not in TAC form: {line}");
    }
}

#[test]
fn figure9_dependency_graph_and_sccs() {
    let c = compilation();
    let graph = domino_compiler::depgraph::DepGraph::build(&c.tac.stmts);
    let sccs = graph.sccs();
    // Figure 9b: exactly two multi-statement SCCs — saved_hop's
    // {read, ternary, write} and last_time's {read, write}.
    let multi: Vec<&Vec<usize>> = sccs.iter().filter(|c| c.len() > 1).collect();
    assert_eq!(multi.len(), 2, "{sccs:?}");
    let sizes: Vec<usize> = multi.iter().map(|c| c.len()).collect();
    assert!(sizes.contains(&2), "{sccs:?}"); // last_time codelet
    assert!(sizes.contains(&3), "{sccs:?}"); // saved_hop codelet
                                             // The condensation is a DAG (asserted by construction in scheduling,
                                             // re-checked here via Kahn).
    let (_, dag) = graph.condense(&sccs);
    let mut indeg = vec![0; dag.len()];
    for vs in &dag {
        for &w in vs {
            indeg[w] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..dag.len()).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &w in &dag[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push(w);
            }
        }
    }
    assert_eq!(seen, dag.len(), "condensation has a cycle");
}

#[test]
fn figure3b_pipeline_structure() {
    let pipeline = domino_compiler::compile(FLOWLET, &Target::banzai(AtomKind::Praw)).unwrap();
    assert_eq!(pipeline.depth(), 6);
    assert_eq!(pipeline.max_atoms_per_stage(), 2);
    // Stage 1: the two hashes (stateless).
    assert_eq!(pipeline.stages[0].len(), 2);
    assert!(pipeline.stages[0].iter().all(|a| !a.is_stateful()));
    // Stage 2: the last_time read+write atom.
    assert_eq!(pipeline.stages[1].len(), 1);
    assert!(pipeline.stages[1][0].is_stateful());
    assert_eq!(
        pipeline.stages[1][0]
            .codelet
            .state_vars()
            .into_iter()
            .collect::<Vec<_>>(),
        vec!["last_time"]
    );
    // Stage 5: the guarded saved_hop atom — the PRAW that gives flowlet
    // its Table 4 row.
    let stage5 = &pipeline.stages[4][0];
    assert!(stage5.is_stateful());
    match &stage5.role {
        banzai::AtomRole::Stateful { kind, .. } => assert_eq!(*kind, AtomKind::Praw),
        _ => panic!("stage 5 must be stateful"),
    }
    // Stage 6: the stateless next-hop selection.
    assert!(pipeline.stages[5].iter().all(|a| !a.is_stateful()));
    // State is confined to single atoms (what makes pipelining sound).
    pipeline.validate_state_confinement().unwrap();
}

#[test]
fn dot_output_renders_figure9a() {
    let c = compilation();
    let graph = domino_compiler::depgraph::DepGraph::build(&c.tac.stmts);
    let dot = graph.to_dot(&c.tac.stmts);
    assert!(dot.starts_with("digraph deps {"), "{dot}");
    // Stateful nodes are shaded like the grey atoms of the figures.
    assert!(dot.matches("lightgrey").count() >= 4, "{dot}");
}
