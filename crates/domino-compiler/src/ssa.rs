//! Pass 3 — static single-assignment form (Figure 7, §4.1).
//!
//! Every packet field is assigned exactly once: each assignment to a field
//! creates a new version (`pkt.id` → `pkt.id0`, `pkt.last_time` →
//! `pkt.last_time0`, `pkt.last_time1`, ...), and subsequent reads use the
//! latest version. Because the code is straight-line (no branches, no φ
//! nodes needed), this removes all Write-After-Read and Write-After-Write
//! dependencies; only Read-After-Write dependencies remain for the
//! pipeliner.
//!
//! The *final* version of each declared packet field is recorded in the
//! output map — the deparser view that the Banzai machine applies when a
//! packet leaves the pipeline.

use crate::branch_removal::Assign;
use crate::fresh::FreshNames;
use domino_ast::ast::{Expr, LValue};
use std::collections::BTreeMap;

/// Result of SSA conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct SsaResult {
    /// The renamed statements.
    pub stmts: Vec<Assign>,
    /// For each field ever assigned: its final version name.
    pub final_version: BTreeMap<String, String>,
}

/// Converts straight-line, flanked statements to SSA form.
pub fn to_ssa(stmts: &[Assign], fresh: &mut FreshNames) -> SsaResult {
    // current[f] = name holding f's latest value (defaults to f itself,
    // i.e. the value the packet arrived with).
    let mut current: BTreeMap<String, String> = BTreeMap::new();
    // next version number per field.
    let mut next: BTreeMap<String, u32> = BTreeMap::new();

    let mut out = Vec::with_capacity(stmts.len());
    for a in stmts {
        // Rewrite reads first (RHS and any array-index expressions).
        let rhs = rename_reads(a.rhs.clone(), &current);
        let lhs = match &a.lhs {
            LValue::Field(base, f, s) => {
                let n = next.entry(f.clone()).or_insert(0);
                let (versioned, new_next) = fresh.fresh_numbered(f, *n);
                *n = new_next;
                current.insert(f.clone(), versioned.clone());
                LValue::Field(base.clone(), versioned, *s)
            }
            // Write flanks: the state name is not versioned, but its index
            // expression is a read.
            LValue::Array(name, idx, s) => LValue::Array(
                name.clone(),
                Box::new(rename_reads((**idx).clone(), &current)),
                *s,
            ),
            LValue::Scalar(name, s) => LValue::Scalar(name.clone(), *s),
        };
        out.push(Assign { lhs, rhs });
    }

    SsaResult {
        stmts: out,
        final_version: current,
    }
}

fn rename_reads(e: Expr, current: &BTreeMap<String, String>) -> Expr {
    e.map(&mut |e| match e {
        Expr::Field(base, f, s) => {
            let name = current.get(&f).cloned().unwrap_or(f);
            Expr::Field(base, name, s)
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_removal::remove_branches;
    use crate::state_flank::rewrite_state_ops;
    use domino_ast::parse_and_check;

    fn run(src: &str) -> (Vec<String>, BTreeMap<String, String>) {
        let p = parse_and_check(src).unwrap();
        let mut fresh = FreshNames::new(p.packet_fields.iter().cloned());
        let straight = remove_branches(&p.body, &mut fresh);
        let (flanked, _) = rewrite_state_ops(&straight, &p, &mut fresh).unwrap();
        let ssa = to_ssa(&flanked, &mut fresh);
        let lines = ssa
            .stmts
            .iter()
            .map(|a| {
                format!(
                    "{} = {};",
                    domino_ast::pretty::lvalue_to_string(&a.lhs),
                    a.rhs
                )
            })
            .collect();
        (lines, ssa.final_version)
    }

    #[test]
    fn versions_match_figure7_style() {
        let (lines, finals) = run(
            "struct P { int id; int arrival; };\nint last_time[8] = {0};\n\
             void f(struct P pkt) {\n\
               pkt.id = 3;\n\
               last_time[pkt.id] = pkt.arrival;\n\
             }",
        );
        assert_eq!(
            lines,
            vec![
                "pkt.id0 = 3;",
                "pkt.last_time0 = last_time[pkt.id0];",
                "pkt.last_time1 = pkt.arrival;",
                "last_time[pkt.id0] = pkt.last_time1;",
            ]
        );
        assert_eq!(finals["id"], "id0");
        assert_eq!(finals["last_time"], "last_time1");
    }

    #[test]
    fn every_field_assigned_once() {
        let (lines, _) = run("struct P { int a; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.a; pkt.r = pkt.r + 1; pkt.r = pkt.r + 2; }");
        // Collect assignment targets; no duplicates allowed.
        let mut targets: Vec<&str> = lines
            .iter()
            .map(|l| l.split(" = ").next().unwrap())
            .collect();
        let before = targets.len();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), before, "{lines:?}");
    }

    #[test]
    fn reads_use_latest_version() {
        let (lines, _) = run("struct P { int a; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.a; pkt.r = pkt.r + 1; }");
        assert_eq!(lines[1], "pkt.r1 = (pkt.r0 + 1);");
    }

    #[test]
    fn unassigned_inputs_keep_their_names() {
        let (lines, finals) =
            run("struct P { int a; int r; };\nvoid f(struct P pkt) { pkt.r = pkt.a + 1; }");
        assert_eq!(lines, vec!["pkt.r0 = (pkt.a + 1);"]);
        assert!(!finals.contains_key("a"));
    }

    #[test]
    fn write_flank_reads_final_temp_version() {
        let (lines, _) = run("struct P { int x; };\nint c = 0;\n\
             void f(struct P pkt) { c = c + pkt.x; c = c + 1; }");
        assert_eq!(
            lines,
            vec![
                "pkt.c0 = c;",
                "pkt.c1 = (pkt.c0 + pkt.x);",
                "pkt.c2 = (pkt.c1 + 1);",
                "c = pkt.c2;",
            ]
        );
    }

    #[test]
    fn collision_with_existing_numbered_name_skipped() {
        // User declares a field literally named `a0`; SSA must not reuse it.
        let (lines, _) =
            run("struct P { int a; int a0; };\nvoid f(struct P pkt) { pkt.a = pkt.a0; }");
        assert_eq!(lines, vec!["pkt.a1 = pkt.a0;"]);
    }
}
