//! The statistical differential tier for **Replicable** programs.
//!
//! Bit-identity is the wrong oracle for replica-mode sharding: every
//! shard runs a full sketch copy, so a packet's *in-stream estimate*
//! (the value it reads back from the sketch) sees only its shard's
//! slice of the trace. What replica mode does preserve — and what this
//! module asserts, in the spirit of comprehensive data-plane
//! verification — is the sketch's own contract:
//!
//! 1. **Spec-vs-execution replay** ([`predicted_state`]): replaying the
//!    [`ReplicaSpec`]'s extracted index/value slices over the input
//!    trace predicts every replica array of the final state
//!    *bit-exactly* — sum of wrapping increments per slot for `Sum`
//!    rows, constant-on-touch for `Max` rows. This is a differential
//!    between the layout analysis and the execution engine: if either
//!    mis-models the program, the arrays diverge.
//! 2. **Overestimate** (count-min's one-sided error): for every key,
//!    the estimate read from the sketch is ≥ the key's exact count.
//! 3. **Mass conservation**: each `Sum` row's total displacement
//!    equals the total of all per-packet updates — counts are never
//!    created or lost, serial or sharded.
//! 4. **The (ε, δ) bound from array geometry**: the fraction of keys
//!    whose min-over-rows estimate error exceeds `ε·N` is at most `δ`,
//!    with `ε = e/w` (narrowest `Sum` row) and `δ = e^(−d)` (`d` rows)
//!    — the guarantee the source algorithm already lives with.
//!
//! [`verify_sketch`] runs all four against a final [`StateStore`] — the
//! serial state, a sharded merged export, or a fault-salvage merge; the
//! caller chooses. [`parse_wire_trace`] lifts a byte-level trace into
//! the packet view so the same invariants cover the wire path.

use banzai::wire::{self, WireConfig};
use domino_ir::{MergeOp, Packet, ReplicaSpec, StateStore};
use std::collections::BTreeMap;

/// The packet-derived grouping key of the statistical invariants: the
/// values of the spec's steer-root fields. Packets sharing all roots
/// index every replica array identically, so they form one "flow" of
/// the sketch's contract. An empty root set (constant-indexed sketches)
/// makes the whole trace one key.
pub fn key_of(spec: &ReplicaSpec, pkt: &Packet) -> Vec<i32> {
    spec.steer_roots()
        .iter()
        .map(|r| pkt.get_or_zero(r))
        .collect()
}

/// Replays the spec's extracted slices over `trace` and returns, per
/// replica array, the predicted final contents.
pub fn predicted_state(spec: &ReplicaSpec, trace: &[Packet]) -> BTreeMap<String, Vec<i32>> {
    let mut predicted: BTreeMap<String, Vec<i32>> = spec
        .arrays()
        .iter()
        .map(|a| (a.name().to_string(), vec![a.init(); a.len() as usize]))
        .collect();
    for pkt in trace {
        for arr in spec.arrays() {
            let slots = predicted.get_mut(arr.name()).expect("array inserted above");
            let k = arr.slot_of(pkt);
            match arr.merge() {
                MergeOp::Sum => slots[k] = slots[k].wrapping_add(arr.update_of(pkt)),
                // A `Max` array stores one constant ≥ init: touched
                // slots hold it, untouched slots keep the initializer.
                MergeOp::Max => slots[k] = arr.update_of(pkt),
            }
        }
    }
    predicted
}

/// Asserts the replica-tier invariants of module docs against a final
/// state. `label` names the configuration in panic messages (e.g.
/// `"heavy_hitters@4 merged"`).
///
/// # Panics
///
/// Panics on any violation — like the rest of the harness, a completed
/// call is a correctness witness.
pub fn verify_sketch(spec: &ReplicaSpec, trace: &[Packet], state: &StateStore, label: &str) {
    // (1) Spec-vs-execution replay: predicted arrays are bit-exact.
    for (name, slots) in predicted_state(spec, trace) {
        for (k, &want) in slots.iter().enumerate() {
            let got = state.read_array(&name, k as i32);
            assert_eq!(
                got, want,
                "{label}: array `{name}`[{k}] is {got}, replaying the \
                 replica spec over the trace predicts {want}"
            );
        }
    }

    let sum_rows: Vec<_> = spec
        .arrays()
        .iter()
        .filter(|a| a.merge() == MergeOp::Sum)
        .collect();
    if sum_rows.is_empty() {
        return; // membership sketch: the replay above is the full check
    }

    // Exact per-key masses per row, from the spec's own value slices.
    // The statistical tier only speaks about monotone sketches; a row
    // with a negative update (legal for merging, but not a count) is
    // excluded from the overestimate/(ε, δ) claims.
    let mut keys: Vec<Vec<i32>> = Vec::new();
    let mut exact: BTreeMap<Vec<i32>, Vec<i64>> = BTreeMap::new();
    let mut slot_of_key: BTreeMap<Vec<i32>, Vec<usize>> = BTreeMap::new();
    let mut monotone = vec![true; sum_rows.len()];
    for pkt in trace {
        let key = key_of(spec, pkt);
        let masses = exact.entry(key.clone()).or_insert_with(|| {
            keys.push(key.clone());
            slot_of_key.insert(
                key.clone(),
                sum_rows.iter().map(|a| a.slot_of(pkt)).collect(),
            );
            vec![0i64; sum_rows.len()]
        });
        for (r, arr) in sum_rows.iter().enumerate() {
            let delta = arr.update_of(pkt);
            if delta < 0 {
                monotone[r] = false;
            }
            masses[r] += delta as i64;
        }
    }

    // (3) Mass conservation per row: total displacement == total updates.
    for (r, arr) in sum_rows.iter().enumerate() {
        let in_state: i64 = (0..arr.len() as i32)
            .map(|k| (state.read_array(arr.name(), k) as i64) - arr.init() as i64)
            .sum();
        let offered: i64 = exact.values().map(|m| m[r]).sum();
        assert_eq!(
            in_state,
            offered,
            "{label}: row `{}` holds total mass {in_state} but the trace \
             offered {offered} — counts were created or lost",
            arr.name()
        );
    }

    // (2) + (4): overestimate and the (ε, δ) bound, over monotone rows.
    if !monotone.iter().all(|&m| m) || keys.is_empty() {
        return;
    }
    let eps = spec.epsilon().expect("sum rows exist");
    let delta = spec.delta().expect("sum rows exist");
    let total_mass: i64 = exact
        .values()
        .map(|m| m.iter().copied().max().unwrap_or(0))
        .sum();
    let mut violations = 0usize;
    for key in &keys {
        let masses = &exact[key];
        let slots = &slot_of_key[key];
        let mut est_err = i64::MAX;
        for (r, arr) in sum_rows.iter().enumerate() {
            let displacement =
                (state.read_array(arr.name(), slots[r] as i32) as i64) - arr.init() as i64;
            assert!(
                displacement >= masses[r],
                "{label}: key {key:?} has exact count {} in row `{}` but the \
                 sketch reads {displacement} — count-min never underestimates",
                masses[r],
                arr.name()
            );
            est_err = est_err.min(displacement - masses[r]);
        }
        if (est_err as f64) > eps * total_mass as f64 {
            violations += 1;
        }
    }
    let fraction = violations as f64 / keys.len() as f64;
    assert!(
        fraction <= delta,
        "{label}: {violations}/{} keys exceed the ε·N = {:.1} error bound \
         (fraction {fraction:.4} > δ = {delta:.4}) — outside the sketch's \
         own (ε, δ) contract",
        keys.len(),
        eps * total_mass as f64,
    );
}

/// Parses a byte-level trace with the same parser the switch runs and
/// returns the packets of the frames that parse, in offered order —
/// the trace whose sketch contract a wire-path run must honor
/// (malformed frames never reach the pipeline, so they carry no mass).
pub fn parse_wire_trace<F: AsRef<[u8]>>(frames: &[F], cfg: &WireConfig) -> Vec<Packet> {
    frames
        .iter()
        .filter_map(|f| wire::parse(f.as_ref(), cfg).ok().map(|wp| wp.pkt))
        .collect()
}
