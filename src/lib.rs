//! Root integration-test/example package for the packet-transactions
//! workspace. The real functionality lives in the `crates/` members; this
//! crate only hosts `tests/` and `examples/` that span them.
