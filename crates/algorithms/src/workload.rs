//! Workload generators: seeded synthetic packet traces that exercise each
//! algorithm's interesting regimes.
//!
//! The paper's evaluation is about compilability and hardware cost, not
//! traffic statistics — these traces exist for *our* differential
//! correctness testing (compiled pipeline vs. reference implementation vs.
//! sequential interpreter) and for the throughput benchmarks. Each
//! generator is deterministic given its seed.

use domino_ir::Packet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a trace of `n` packets for the named algorithm.
///
/// # Panics
///
/// Panics on an unknown algorithm name.
pub fn trace_for(name: &str, n: usize, seed: u64) -> Vec<Packet> {
    match name {
        "bloom_filter" | "heavy_hitters" => flow_trace(n, seed),
        "flowlet" => flowlet_trace(n, seed),
        "rcp" => rcp_trace(n, seed),
        "sampled_netflow" => flow_trace(n, seed),
        "hull" | "avq" => queue_trace(n, seed),
        "stfq" => stfq_trace(n, seed),
        "dns_ttl_change" => dns_trace(n, seed),
        "conga" => conga_trace(n, seed),
        "codel" | "codel_lut" => codel_trace(n, seed),
        other => panic!("no workload generator for `{other}`"),
    }
}

/// Zipf-ish flow mix over (sport, dport): a few elephant flows plus many
/// mice, which is what Bloom filters, sketches, and samplers care about.
pub fn flow_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // 50%: one of 4 elephants; 30%: one of 32 medium; 20%: random mice.
            let roll: f64 = rng.gen();
            let (sport, dport) = if roll < 0.5 {
                (rng.gen_range(0..4), 80)
            } else if roll < 0.8 {
                (rng.gen_range(100..132), 443)
            } else {
                (rng.gen_range(1024..65536), rng.gen_range(1..1024))
            };
            Packet::new().with("sport", sport).with("dport", dport)
        })
        .collect()
}

/// Bursty flow arrivals: packets of a flow cluster in time (flowlets),
/// with inter-burst gaps exceeding the flowlet threshold.
pub fn flowlet_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock = 0i32;
    (0..n)
        .map(|_| {
            // Mostly back-to-back arrivals; occasionally a large gap that
            // opens a new flowlet.
            clock += if rng.gen_bool(0.15) {
                rng.gen_range(6..50)
            } else {
                rng.gen_range(0..3)
            };
            Packet::new()
                .with("sport", rng.gen_range(0..16))
                .with("dport", 80 + rng.gen_range(0..4))
                .with("arrival", clock)
                .with("new_hop", 0)
                .with("next_hop", 0)
                .with("id", 0)
        })
        .collect()
}

/// Packet sizes plus a bimodal RTT distribution straddling RCP's
/// max-allowable-RTT cutoff.
pub fn rcp_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let rtt = if rng.gen_bool(0.7) {
                rng.gen_range(1..30)
            } else {
                rng.gen_range(30..90)
            };
            Packet::new()
                .with("size_bytes", rng.gen_range(64..1500))
                .with("rtt", rtt)
        })
        .collect()
}

/// Arrivals with alternating overload/underload phases so virtual queues
/// (HULL, AVQ) actually build up and drain.
pub fn queue_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clock = 0i32;
    (0..n)
        .map(|i| {
            // Phase of 64 packets: overload (arrivals 1 tick apart) then
            // underload (up to 20 apart).
            let overload = (i / 64) % 2 == 0;
            clock += if overload { 1 } else { rng.gen_range(5..20) };
            Packet::new()
                .with("arrival", clock)
                .with("size_bytes", rng.gen_range(64..1500))
        })
        .collect()
}

/// Flows with lengths and a slowly advancing virtual time.
pub fn stfq_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vt = 0i32;
    (0..n)
        .map(|_| {
            vt += rng.gen_range(0..80);
            Packet::new()
                .with("flow", rng.gen_range(0..24))
                .with("length", rng.gen_range(64..1500))
                .with("vt", vt)
                .with("start", 0)
        })
        .collect()
}

/// DNS responses: stable domains with fixed TTLs plus fast-flux domains
/// whose TTLs churn.
pub fn dns_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let fast_flux = rng.gen_bool(0.3);
            let (domain, ttl) = if fast_flux {
                (rng.gen_range(1..8), rng.gen_range(1..300))
            } else {
                let d = rng.gen_range(100..164);
                (d, 3600 + d) // deterministic per-domain TTL
            };
            Packet::new().with("domain", domain).with("ttl", ttl)
        })
        .collect()
}

/// CONGA feedback packets: per-source path utilizations drifting over
/// time, so best paths keep changing hands.
pub fn conga_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Packet::new()
                .with("src", rng.gen_range(0..16))
                .with("path_id", rng.gen_range(0..8))
                .with("util", rng.gen_range(0..1000))
        })
        .collect()
}

/// Queue sojourn times with persistent-standing-queue episodes, which is
/// what drives CoDel into and out of its dropping state.
pub fn codel_trace(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut now = 0i32;
    (0..n)
        .map(|i| {
            now += rng.gen_range(1..4);
            // Alternate between low-delay and standing-queue phases.
            let congested = (i / 200) % 2 == 1;
            let sojourn = if congested {
                rng.gen_range(6..40)
            } else {
                rng.gen_range(0..5)
            };
            Packet::new()
                .with("now", now)
                .with("enq_ts", now - sojourn)
                .with("drop", 0)
                .with("ok_to_drop", 0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        assert_eq!(flow_trace(50, 1), flow_trace(50, 1));
        assert_ne!(flow_trace(50, 1), flow_trace(50, 2));
    }

    #[test]
    fn flowlet_arrivals_are_monotone() {
        let t = flowlet_trace(500, 3);
        let mut last = i32::MIN;
        for p in &t {
            let a = p.expect("arrival");
            assert!(a >= last);
            last = a;
        }
    }

    #[test]
    fn flowlet_trace_contains_gaps_beyond_threshold() {
        let t = flowlet_trace(1000, 4);
        let gaps = t
            .windows(2)
            .filter(|w| w[1].expect("arrival") - w[0].expect("arrival") > 5)
            .count();
        assert!(gaps > 20, "expected many flowlet gaps, got {gaps}");
    }

    #[test]
    fn rcp_trace_straddles_cutoff() {
        let t = rcp_trace(1000, 5);
        let below = t.iter().filter(|p| p.expect("rtt") < 30).count();
        assert!(below > 400 && below < 1000, "{below}");
    }

    #[test]
    fn codel_trace_has_congestion_episodes() {
        let t = codel_trace(1000, 6);
        let high = t
            .iter()
            .filter(|p| p.expect("now") - p.expect("enq_ts") >= 5)
            .count();
        assert!(high > 200, "{high}");
    }

    #[test]
    fn flow_trace_is_skewed() {
        let t = flow_trace(2000, 7);
        let elephants = t.iter().filter(|p| p.expect("dport") == 80).count();
        assert!(elephants > 700, "{elephants}");
    }
}
