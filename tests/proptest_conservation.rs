//! Property: **packet conservation**. Every packet offered to a switch is
//! accounted for exactly once — transmitted, counted under a typed
//! [`DropReason`], or (on a faulted sharded run) attributed to the fault
//! in the salvage accounting. No configuration, trace, scheduling
//! interleave, or injected fault may create or leak packets:
//!
//! * fault-free sharded runs: `offered == transmitted + drops.total()`
//!   across random traces, shard counts 1..=8, queue capacities (including
//!   the pathological 0), batch/ring geometries, and both backpressure
//!   policies;
//! * the wire path (`run_frames`): every frame — valid, truncated,
//!   or garbage — is transmitted or counted under queue-full/parse;
//! * seeded-fault runs: a faulted run's [`Accounting`] balances
//!   (`offered == transmitted + dropped + lost_in_fault`), and a run the
//!   fault missed still balances on the live counters.

use banzai::wire::{self, FrameSpec, WireConfig};
use banzai::{
    AtomKind, AtomPipeline, Backpressure, FaultPlan, FaultyEngine, PipelineEngine, ShardConfig,
    ShardedSwitch, SlotMachine, Switch, SwitchError, Target,
};
use domino_ir::Packet;
use proptest::prelude::*;

/// A per-flow counter (partitionable: real fan-out at every shard count).
const COUNTER: &str = "struct P { int flow; int c; };\nint counts[64] = {0};\n\
                       void count(struct P pkt) {\n\
                         counts[pkt.flow] = counts[pkt.flow] + 1;\n\
                         pkt.c = counts[pkt.flow];\n\
                       }";

fn counter_pipeline() -> AtomPipeline {
    domino_compiler::compile(COUNTER, &Target::banzai(AtomKind::Raw)).unwrap()
}

fn to_trace(flows: &[i32]) -> Vec<Packet> {
    flows
        .iter()
        .map(|&f| Packet::new().with("flow", f).with("c", 0))
        .collect()
}

fn capacity_of(sel: usize) -> usize {
    [0, 1, 4, 512][sel]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault-free threaded runs conserve for every geometry: transmitted
    /// packets plus counted drops equals the offered trace, and the
    /// output stream length equals the transmitted counter.
    #[test]
    fn sharded_run_conserves_packets(
        flows in proptest::collection::vec(0..64i32, 0..400),
        shards in 1..=8usize,
        cap in 0..=3usize,
        batch in 1..=64usize,
        ring in 1..=8usize,
        shed in any::<bool>(),
    ) {
        let ingress = counter_pipeline();
        let egress = AtomPipeline::passthrough("egress");
        let policy = if shed { Backpressure::Shed } else { Backpressure::Block };
        let cfg = ShardConfig::new(shards)
            .with_capacity(capacity_of(cap))
            .with_batch(batch)
            .with_ring(ring)
            .with_backpressure(policy);
        let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();

        let trace = to_trace(&flows);
        let out = sw.run(&trace).collect().expect("no faults armed");

        prop_assert_eq!(out.len() as u64, sw.transmitted());
        prop_assert_eq!(
            sw.transmitted() + sw.drops(),
            trace.len() as u64,
            "offered {} != transmitted {} + dropped {}",
            trace.len(), sw.transmitted(), sw.drops()
        );
        // Zero capacity tail-drops everything that reaches a shard queue.
        if capacity_of(cap) == 0 {
            prop_assert_eq!(sw.transmitted(), 0);
        }
    }
}

// Seeded one-victim fault plans: whether or not the fault actually
// fires (the seeded packet index may exceed what the victim is
// offered), the books must balance.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn faulted_run_accounting_balances(
        flows in proptest::collection::vec(0..64i32, 1..300),
        shards in 1..=8usize,
        batch in 1..=32usize,
        seed in 0..10_000i64,
    ) {
        let seed = seed as u64;
        let ingress = counter_pipeline();
        let egress = AtomPipeline::passthrough("egress");
        let trace = to_trace(&flows);
        let faults = FaultPlan::seeded(seed, shards, trace.len() as u64);
        let cfg = ShardConfig::new(shards).with_batch(batch);
        let mut sw = ShardedSwitch::new_with(&ingress, &egress, cfg, |s, ing, eg, cap| {
            let i = FaultyEngine::with_faults(ing, faults.faults_for(s).to_vec())?;
            let e = <FaultyEngine<SlotMachine>>::build(eg)?;
            Ok(Switch::from_engines(i, e, cap))
        })
        .unwrap();

        match sw.run(&trace).collect() {
            Ok(out) => {
                // The seeded fault landed past the victim's offered count.
                prop_assert_eq!(out.len() as u64 + sw.drops(), trace.len() as u64);
            }
            Err(SwitchError::Fault(report)) => {
                prop_assert_eq!(report.accounting.offered, trace.len() as u64);
                prop_assert!(
                    report.accounting.conserved(),
                    "books out of balance: {}", report.accounting
                );
                prop_assert_eq!(report.failures.len(), 1);
                // Salvage covers every shard exactly once, and per-shard
                // offered counts partition the trace.
                let offered_sum: u64 = report.salvage.iter().map(|s| s.offered).sum();
                prop_assert_eq!(offered_sum, trace.len() as u64);
            }
            Err(other) => prop_assert!(false, "unexpected error variant: {}", other),
        }
    }
}

/// A byte buffer that is sometimes a valid frame, sometimes a truncated
/// one, sometimes garbage — the wire path must account for all of them.
fn any_frame() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Valid TCP frame carrying a random sport.
        2 => (0..60_000i32).prop_map(|sport| {
            wire::encode(
                &Packet::new().with("sport", sport),
                &WireConfig::new(),
                &FrameSpec::default(),
            )
        }),
        // Truncation of a valid frame (hits every Truncated* verdict).
        2 => (0..60_000i32, 0..70usize).prop_map(|(sport, cut)| {
            let f = wire::encode(
                &Packet::new().with("sport", sport),
                &WireConfig::new(),
                &FrameSpec::default(),
            );
            let keep = cut.min(f.len());
            f[..keep].to_vec()
        }),
        // Raw garbage.
        1 => proptest::collection::vec(any::<u8>(), 0..80),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Wire-path conservation: frames out + typed drops == frames in,
    /// with malformed frames landing under parse verdicts, never lost.
    #[test]
    fn wire_trace_conserves_frames(
        frames in proptest::collection::vec(any_frame(), 0..40),
        cap in 0..=2usize,
    ) {
        let capacity = [0, 1, 256][cap];
        let mut sw = Switch::new(
            AtomPipeline::passthrough("in"),
            AtomPipeline::passthrough("out"),
            capacity,
        );
        let cfg = WireConfig::new();
        let out = sw
            .run_frames(&frames, &cfg)
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");
        prop_assert_eq!(out.len() as u64, sw.transmitted());
        prop_assert_eq!(
            sw.transmitted() + sw.drops(),
            frames.len() as u64,
            "offered {} != transmitted {} + dropped {}",
            frames.len(), sw.transmitted(), sw.drops()
        );
        // Drops split exactly into congestion + parse (no backpressure on
        // a serial switch).
        let c = sw.drop_counters();
        prop_assert_eq!(c.backpressure(), 0);
        prop_assert_eq!(c.queue_full() + c.parse_total(), c.total());
    }
}

/// A two-row count-min sketch with per-row salted hashes: distinct
/// index fields per row keep it out of the Exact tier, so it exercises
/// replica-mode sharding (full sketch copy per shard, merged at
/// collect).
const SKETCH: &str = "struct P { int sport; int dport; int h0; int h1; };\n\
                      int cms0[16] = {0};\n\
                      int cms1[32] = {0};\n\
                      void sketch(struct P pkt) {\n\
                        pkt.h0 = hash3(pkt.sport, pkt.dport, 1007) % 16;\n\
                        cms0[pkt.h0] = cms0[pkt.h0] + 1;\n\
                        pkt.h1 = hash3(pkt.sport, pkt.dport, 1014) % 32;\n\
                        cms1[pkt.h1] = cms1[pkt.h1] + 1;\n\
                      }";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replica-mode conservation: packets conserve exactly, and the
    /// merged sketch conserves *mass* — every update a packet carried
    /// is in the merged state, none created, none lost — plus the full
    /// sketch contract (`bench::sketch::verify_sketch`), at every
    /// geometry.
    #[test]
    fn replica_sharded_run_conserves_packets_and_mass(
        keys in proptest::collection::vec((0..9i32, 0..5i32), 0..300),
        shards in 1..=8usize,
        batch in 1..=64usize,
    ) {
        let ingress = domino_compiler::compile(SKETCH, &Target::banzai(AtomKind::Raw)).unwrap();
        let egress = AtomPipeline::passthrough("egress");
        let cfg = ShardConfig::new(shards).with_batch(batch);
        let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        prop_assert_eq!(sw.plan().tier(), banzai::ShardTier::Replicable);
        let spec = sw.plan().ingress_replica().unwrap().clone();

        let trace: Vec<Packet> = keys
            .iter()
            .map(|&(s, d)| {
                Packet::new()
                    .with("sport", s)
                    .with("dport", d)
                    .with("h0", 0)
                    .with("h1", 0)
            })
            .collect();
        let out = sw.run(&trace).collect().expect("no faults armed");
        prop_assert_eq!(out.len() as u64, sw.transmitted());
        prop_assert_eq!(sw.transmitted() + sw.drops(), trace.len() as u64);
        prop_assert_eq!(sw.drops(), 0, "line-rate run must not drop");

        // Mass conservation and the rest of the sketch contract on the
        // merged export (panics on violation).
        let merged = sw.export_merged_ingress_state().unwrap();
        bench::sketch::verify_sketch(&spec, &trace, &merged, "replica conservation");
    }
}
