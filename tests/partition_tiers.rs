//! Golden pinning of the state-partitioning tier decision for every
//! Table 4 algorithm (plus the `codel_lut` X1 variant).
//!
//! The tier (`Exact` / `Replicable` / `Fallback`) and the diagnostic
//! text are exported surface: `ShardedSwitch` plans shard counts from
//! them, `domc --emit flow-key` prints them, and the E10 baseline gate
//! trips when a workload regresses to a coarser tier. Like
//! `tests/drop_reasons.rs`, this table is **append-only**: new
//! algorithms append rows; an edit to the layout analysis that moves an
//! existing algorithm across tiers or rewrites its diagnostic must
//! update the golden row *deliberately* — a failure here is the
//! tripwire, with the exact delta in the message.

/// Which tier the analysis resolved, by diagnostic shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Keyed flow steering (`flow key = …`).
    Exact,
    /// Full sketch replica per shard (`replicable: …`).
    Replicable,
    /// Neither tier accepts; single-shard fallback with the two-tier
    /// diagnostic.
    Fallback,
}

/// The pinned decision: (algorithm, tier, substrings the diagnostic
/// must contain, in order of appearance). Paper order (Table 4), then
/// the X1 LUT variant. Append-only.
const GOLDEN: [(&str, Tier, &[&str]); 12] = [
    (
        "bloom_filter",
        Tier::Replicable,
        &[
            "replicable: full sketch replica per shard, elementwise merge",
            "steer roots: dport, sport",
            "filter1[1024] init 0: merge max, update 1",
            "filter2[1024] init 0: merge max, update 1",
            "filter3[1024] init 0: merge max, update 1",
        ],
    ),
    (
        "heavy_hitters",
        Tier::Replicable,
        &[
            "replicable: full sketch replica per shard, elementwise merge",
            "steer roots: dport, sport",
            "cms1[4096] init 0: merge sum, update 1",
            "cms2[4096] init 0: merge sum, update 1",
            "cms3[4096] init 0: merge sum, update 1",
            "(ε, δ) bound: ε = 6.636e-4 (3 sum rows), δ = 4.979e-2",
        ],
    ),
    (
        "flowlet",
        Tier::Exact,
        &[
            "flow key = pkt.id0 mod 8000",
            "roots: dport, sport",
            "pkt.id0 = hash2(pkt.sport, pkt.dport) % 8000;",
        ],
    ),
    (
        "rcp",
        Tier::Fallback,
        &[
            "not Exact-partitionable: scalar state `input_traffic_bytes` is a \
             global register (every packet read-modify-writes it); no flow \
             steering preserves serial semantics",
            "not Replicable: scalar state `input_traffic_bytes` is a global \
             register; per-shard replicas of it diverge and no elementwise \
             merge recovers the serial value",
        ],
    ),
    (
        "sampled_netflow",
        Tier::Exact,
        &[
            "flow key = pkt.bucket0 mod 4096",
            "roots: dport, sport",
            "pkt.bucket0 = hash2(pkt.sport, pkt.dport) % 4096;",
        ],
    ),
    (
        "hull",
        Tier::Fallback,
        &[
            "not Exact-partitionable: scalar state `last_update`",
            "not Replicable: scalar state `last_update`",
        ],
    ),
    (
        "avq",
        Tier::Fallback,
        &[
            "not Exact-partitionable: scalar state `last_update`",
            "not Replicable: scalar state `last_update`",
        ],
    ),
    (
        "stfq",
        Tier::Exact,
        &[
            "flow key = pkt.idx0 mod 2048",
            "roots: flow",
            "pkt.idx0 = pkt.flow & 2047;",
        ],
    ),
    (
        "dns_ttl_change",
        Tier::Exact,
        &[
            "flow key = pkt.d0 mod 4096",
            "roots: domain",
            "pkt.d0 = hash2(pkt.domain, 12289) % 4096;",
        ],
    ),
    (
        "conga",
        Tier::Exact,
        &[
            "flow key = pkt.s0 mod 256",
            "roots: src",
            "pkt.s0 = pkt.src & 255;",
        ],
    ),
    (
        "codel",
        Tier::Fallback,
        &[
            "not Exact-partitionable: scalar state `first_above_time`",
            "not Replicable: scalar state `first_above_time`",
        ],
    ),
    (
        "codel_lut",
        Tier::Fallback,
        &[
            "not Exact-partitionable: scalar state `first_above_time`",
            "not Replicable: scalar state `first_above_time`",
        ],
    ),
];

/// Classifies one algorithm the way `domc --emit flow-key` does:
/// normalize, then run the layout analysis (no lowering — even `codel`,
/// which maps to no standard target, still gets a tier).
fn classify(name: &str) -> (Tier, String) {
    let a = algorithms::by_name(name).unwrap_or_else(|| panic!("unknown algorithm `{name}`"));
    let c = domino_compiler::normalize(a.source).unwrap();
    match domino_compiler::flow_key(&c) {
        Ok(p) => {
            let text = p.to_string();
            let tier = if text.starts_with("replicable") {
                Tier::Replicable
            } else {
                Tier::Exact
            };
            (tier, text)
        }
        Err(why) => (Tier::Fallback, why),
    }
}

#[test]
fn tier_decisions_are_pinned_for_all_table4_algorithms() {
    // The golden table covers exactly Table 4 + the LUT variant; an
    // algorithm added to the registry must be appended here too.
    let mut expected: Vec<&str> = algorithms::TABLE4.iter().map(|a| a.name).collect();
    expected.push("codel_lut");
    let golden_names: Vec<&str> = GOLDEN.iter().map(|&(n, _, _)| n).collect();
    assert_eq!(
        golden_names, expected,
        "golden table out of sync with the algorithm registry (append-only)"
    );

    for (name, tier, pins) in GOLDEN {
        let (got_tier, text) = classify(name);
        assert_eq!(
            got_tier, tier,
            "{name}: tier moved (diagnostic now: {text})"
        );
        let mut cursor = 0usize;
        for pin in pins {
            match text[cursor..].find(pin) {
                Some(at) => cursor += at + pin.len(),
                None => panic!(
                    "{name}: diagnostic no longer contains `{pin}` (after \
                     byte {cursor}); full text:\n{text}"
                ),
            }
        }
    }
}

/// The tier split is exhaustive and matches the paper's locality
/// argument: 5 keyed, 2 replicable sketches, 5 global-register
/// fallbacks (codel twice, with and without the LUT).
#[test]
fn tier_census_is_pinned() {
    let mut exact = 0;
    let mut replicable = 0;
    let mut fallback = 0;
    for (name, _, _) in GOLDEN {
        match classify(name).0 {
            Tier::Exact => exact += 1,
            Tier::Replicable => replicable += 1,
            Tier::Fallback => fallback += 1,
        }
    }
    assert_eq!(
        (exact, replicable, fallback),
        (5, 2, 5),
        "tier census changed — update the golden table deliberately"
    );
}
