//! Compile-time field layout: interned fields, flat packets, flat state.
//!
//! The map-based [`Packet`] is the *semantic reference*: a
//! `BTreeMap` from field name to value, convenient and order-deterministic
//! but string-keyed on every access. Real switch pipelines resolve header
//! layouts at compile time — a PHV container is a fixed offset, not a
//! dictionary lookup. This module provides that layout-resolution step:
//!
//! * [`FieldTable`] — an interner assigning every packet field a dense
//!   [`FieldId`] (its PHV slot), keeping reverse names for diagnostics;
//! * [`FlatPacket`] — a fixed `i32` slab keyed by [`FieldId`], with a
//!   presence bitmask replicating the map packet's has/absent semantics;
//! * [`StateLayout`] / [`FlatState`] — every state variable resolved to a
//!   base offset into one flat register file (scalars take one slot,
//!   arrays `size` slots).
//!
//! The slot-compiled execution engine in `banzai` lowers atom pipelines
//! onto these layouts once, then executes packets with pure integer
//! indexing — no per-packet string hashing or tree walks. Differential
//! tests assert the fast path is bit-identical to the map path.
//!
//! The layout is also where **shard-partitionability** is decided:
//! [`StateLayout::flow_key`] inspects how a program indexes its state and,
//! when every access goes through one packet-derived index field, extracts
//! a [`FlowKeySpec`] — the RSS-style steering rule under which per-shard
//! execution is bit-identical to serial execution (see `banzai::shard`).

use crate::packet::Packet;
use crate::state::{StateStore, StateValue};
use crate::tac::{Operand, StateRef, TacRhs, TacStmt};
use domino_ast::{StateKind, StateVar};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A dense identifier for an interned packet field — the field's slot in a
/// [`FlatPacket`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(u32);

impl FieldId {
    /// The slot index this id addresses.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw slot number.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

/// An interner mapping packet field names to dense [`FieldId`]s.
///
/// Slots are assigned in first-intern order, so a table built by walking a
/// pipeline deterministically is itself deterministic. The table keeps the
/// reverse mapping (`id → name`) so fast-path diagnostics can still name
/// the field — matching [`Packet::expect`]'s contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl FieldTable {
    /// An empty table.
    pub fn new() -> Self {
        FieldTable::default()
    }

    /// Interns `name`, returning its (new or existing) [`FieldId`].
    pub fn intern(&mut self, name: &str) -> FieldId {
        if let Some(&id) = self.index.get(name) {
            return FieldId(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        FieldId(id)
    }

    /// Looks up an already-interned field.
    pub fn lookup(&self, name: &str) -> Option<FieldId> {
        self.index.get(name).copied().map(FieldId)
    }

    /// The name behind a [`FieldId`] (reverse mapping, for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: FieldId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned fields (== the slot count of a [`FlatPacket`]).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no field has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (FieldId(i as u32), n.as_str()))
    }
}

impl fmt::Display for FieldTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, name) in self.iter() {
            writeln!(f, "{id} = pkt.{name}")?;
        }
        Ok(())
    }
}

/// Number of 64-bit words needed for a presence bitmask over `slots` slots.
fn mask_words(slots: usize) -> usize {
    slots.div_ceil(64)
}

/// A packet laid out flat: one `i32` per interned field plus a presence
/// bitmask.
///
/// Invariant: an absent slot always holds 0, so the hot path may read raw
/// slot values directly — `get_or_zero` semantics for free. Presence only
/// matters at the edges ([`FlatPacket::has`], [`FlatPacket::expect`],
/// [`FlatPacket::to_packet`]), exactly like uninitialized PHV containers in
/// a real pipeline reading as zero.
#[derive(Debug, Clone)]
pub struct FlatPacket {
    table: Arc<FieldTable>,
    vals: Box<[i32]>,
    present: Box<[u64]>,
}

impl FlatPacket {
    /// An empty packet over `table`'s layout (all slots absent).
    pub fn new(table: Arc<FieldTable>) -> Self {
        let slots = table.len();
        FlatPacket {
            table,
            vals: vec![0; slots].into_boxed_slice(),
            present: vec![0; mask_words(slots)].into_boxed_slice(),
        }
    }

    /// Converts a map packet onto `table`'s layout.
    ///
    /// Fields of `pkt` not present in the table are *not* representable and
    /// are skipped; callers that must preserve pass-through fields keep the
    /// original packet and merge written slots back (see the slot engine).
    pub fn from_packet(pkt: &Packet, table: &Arc<FieldTable>) -> Self {
        let mut flat = FlatPacket::new(Arc::clone(table));
        for (name, value) in pkt.iter() {
            if let Some(id) = table.lookup(name) {
                flat.set(id, value);
            }
        }
        flat
    }

    /// The layout this packet is keyed by.
    pub fn table(&self) -> &Arc<FieldTable> {
        &self.table
    }

    /// Reads a slot, `None` if no write has marked it present.
    pub fn get(&self, id: FieldId) -> Option<i32> {
        if self.has(id) {
            Some(self.vals[id.index()])
        } else {
            None
        }
    }

    /// Reads a slot, absent slots read as 0 (the hot-path read).
    #[inline]
    pub fn get_or_zero(&self, id: FieldId) -> i32 {
        self.vals[id.index()]
    }

    /// Reads a slot that the execution model guarantees was written.
    ///
    /// # Panics
    ///
    /// Panics with the *field name* (via the table's reverse mapping), not
    /// a bare slot index — same contract as [`Packet::expect`]: a missing
    /// field is a compiler bug and the diagnostic must name it.
    pub fn expect(&self, id: FieldId) -> i32 {
        match self.get(id) {
            Some(v) => v,
            None => panic!(
                "internal error: packet field `{}` ({id}) read before any write; \
                 fields present: [{}]",
                self.table.name(id),
                self.field_names().collect::<Vec<_>>().join(", ")
            ),
        }
    }

    /// True if the slot has been written.
    #[inline]
    pub fn has(&self, id: FieldId) -> bool {
        let i = id.index();
        self.present[i / 64] >> (i % 64) & 1 == 1
    }

    /// Writes a slot and marks it present.
    #[inline]
    pub fn set(&mut self, id: FieldId, value: i32) {
        let i = id.index();
        self.vals[i] = value;
        self.present[i / 64] |= 1 << (i % 64);
    }

    /// Raw value slab (hot-path accessor for the slot engine). Writes via
    /// this slice do *not* update presence; the engine restores the
    /// invariant by OR-ing its static written-slot mask afterwards.
    #[inline]
    pub fn slots_mut(&mut self) -> &mut [i32] {
        &mut self.vals
    }

    /// Raw value slab (read side).
    #[inline]
    pub fn slots(&self) -> &[i32] {
        &self.vals
    }

    /// OR-s a precomputed presence mask into this packet (the engine's
    /// static set of written slots; statements are straight-line, so the
    /// written set per pipeline is a compile-time constant).
    #[inline]
    pub fn mark_present(&mut self, mask: &[u64]) {
        debug_assert_eq!(mask.len(), self.present.len());
        for (word, m) in self.present.iter_mut().zip(mask) {
            *word |= m;
        }
    }

    /// Names of present fields, in slot order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.table
            .iter()
            .filter(|(id, _)| self.has(*id))
            .map(|(_, n)| n)
    }

    /// Converts back to a map packet (present fields only).
    pub fn to_packet(&self) -> Packet {
        self.table
            .iter()
            .filter(|(id, _)| self.has(*id))
            .map(|(id, n)| (n.to_string(), self.vals[id.index()]))
            .collect()
    }
}

impl PartialEq for FlatPacket {
    /// Two flat packets are equal when they agree on layout, presence, and
    /// every present value (tables compare by content, so packets from two
    /// identical lowerings compare equal).
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.table, &other.table) || self.table == other.table)
            && self.present == other.present
            && self.vals == other.vals
    }
}

impl Eq for FlatPacket {}

/// Where one state variable lives in the flat register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSlot {
    /// The variable's name (kept for diagnostics and state export).
    pub name: String,
    /// First slot of the variable in the register file.
    pub base: u32,
    /// Number of slots (1 for a scalar, the array size otherwise).
    pub len: u32,
    /// True if the variable is a register array.
    pub is_array: bool,
    /// Initial value of every slot.
    pub init: i32,
}

/// The compile-time layout of all state variables: each resolved to a base
/// offset into one flat `i32` register file, in declaration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateLayout {
    entries: Vec<StateSlot>,
    total: u32,
}

impl StateLayout {
    /// Builds the layout from checked state declarations.
    pub fn from_decls(decls: &[StateVar]) -> Self {
        let mut entries = Vec::with_capacity(decls.len());
        let mut total = 0u32;
        for d in decls {
            let (len, is_array) = match d.kind {
                StateKind::Scalar => (1, false),
                StateKind::Array { size } => (size, true),
            };
            entries.push(StateSlot {
                name: d.name.clone(),
                base: total,
                len,
                is_array,
                init: d.init,
            });
            total += len;
        }
        StateLayout { entries, total }
    }

    /// The layout entry for a variable, if declared.
    pub fn slot(&self, name: &str) -> Option<&StateSlot> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Total register-file slots.
    pub fn total_slots(&self) -> usize {
        self.total as usize
    }

    /// All entries in declaration (base-offset) order.
    pub fn entries(&self) -> &[StateSlot] {
        &self.entries
    }
}

impl fmt::Display for StateLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            if e.is_array {
                writeln!(
                    f,
                    "state[{}..{}] = {}[{}]",
                    e.base,
                    e.base + e.len,
                    e.name,
                    e.len
                )?;
            } else {
                writeln!(f, "state[{}] = {}", e.base, e.name)?;
            }
        }
        Ok(())
    }
}

/// All state variables of a program as one flat register file.
///
/// Array indexing wraps modulo the array size with the same `rem_euclid`
/// rule as [`StateStore`] — the two representations are observably
/// identical, which [`FlatState::export`] lets tests assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatState {
    layout: StateLayout,
    slots: Box<[i32]>,
}

impl FlatState {
    /// Initializes the register file from a layout (every slot of a
    /// variable starts at the variable's initializer).
    pub fn new(layout: StateLayout) -> Self {
        let mut slots = vec![0; layout.total_slots()].into_boxed_slice();
        for e in layout.entries() {
            for s in &mut slots[e.base as usize..(e.base + e.len) as usize] {
                *s = e.init;
            }
        }
        FlatState { layout, slots }
    }

    /// The layout this register file was built from.
    pub fn layout(&self) -> &StateLayout {
        &self.layout
    }

    /// Reads the scalar at `base`.
    #[inline]
    pub fn read(&self, base: u32) -> i32 {
        self.slots[base as usize]
    }

    /// Writes the scalar at `base`.
    #[inline]
    pub fn write(&mut self, base: u32, value: i32) {
        self.slots[base as usize] = value;
    }

    /// Reads an array element (index reduced modulo `len`, like a hardware
    /// address decoder — identical to [`StateStore`]'s rule).
    #[inline]
    pub fn read_array(&self, base: u32, len: u32, index: i32) -> i32 {
        self.slots[base as usize + Self::wrap(index, len)]
    }

    /// Writes an array element (index reduced modulo `len`).
    #[inline]
    pub fn write_array(&mut self, base: u32, len: u32, index: i32, value: i32) {
        self.slots[base as usize + Self::wrap(index, len)] = value;
    }

    #[inline]
    fn wrap(index: i32, len: u32) -> usize {
        (index as i64).rem_euclid(len as i64) as usize
    }

    /// Imports variables from a map snapshot — the inverse of
    /// [`FlatState::export`], used to warm-start a partition from a serial
    /// checkpoint.
    ///
    /// Variables of the snapshot missing from this layout, or arrays whose
    /// sizes disagree, indicate a partitioning bug upstream.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot variable is unknown to the layout or has the
    /// wrong kind/size.
    pub fn import(&mut self, snapshot: &StateStore) {
        for (name, value) in snapshot.iter() {
            let (base, len, is_array) = {
                let e = self
                    .layout
                    .slot(name)
                    .unwrap_or_else(|| panic!("internal error: unknown state variable `{name}`"));
                (e.base as usize, e.len as usize, e.is_array)
            };
            match value {
                StateValue::Scalar(v) if !is_array => self.slots[base] = *v,
                StateValue::Array(vs) if is_array && vs.len() == len => {
                    self.slots[base..base + len].copy_from_slice(vs);
                }
                _ => panic!("internal error: state variable `{name}` has the wrong shape"),
            }
        }
    }

    /// Exports the register file as a map-based [`StateStore`] for
    /// comparison against the reference path.
    pub fn export(&self) -> StateStore {
        let mut store = StateStore::new();
        for e in self.layout.entries() {
            let window = &self.slots[e.base as usize..(e.base + e.len) as usize];
            if e.is_array {
                store.insert_array(&e.name, e.len as usize, 0);
                // insert_array fills with one init value; overwrite with
                // the live contents.
                for (i, v) in window.iter().enumerate() {
                    store.write_array(&e.name, i as i32, *v);
                }
            } else {
                store.insert_scalar(&e.name, window[0]);
            }
        }
        store
    }
}

impl fmt::Display for FlatState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.export())
    }
}

/// How a program's state indexing partitions across parallel shards.
///
/// Extracted by [`StateLayout::flow_key`]. `Keyed` is the software
/// analogue of the paper's stateful-atom locality argument: all persistent
/// state is per-flow (indexed by one packet-derived key), so flows can be
/// steered to independent shards with no cross-shard coordination — the
/// same partitioning RSS NICs and multi-pipeline P4 targets rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitionability {
    /// The program touches no persistent state: any flow-consistent
    /// steering reproduces serial execution.
    Stateless,
    /// Every state access is an array access through one common index
    /// field; the extracted spec steers packets so that packets that can
    /// touch the same state slot always land on the same shard.
    Keyed(FlowKeySpec),
    /// State is not exactly partitionable, but every update is a
    /// commutative fold (increments / constant stores into hashed
    /// arrays): each shard runs a full replica and the replicas merge
    /// elementwise — serial state is reproduced bit for bit, per-packet
    /// sketch reads keep only the sketch's own (ε, δ) contract.
    Replicable(ReplicaSpec),
}

impl fmt::Display for Partitionability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitionability::Stateless => {
                writeln!(
                    f,
                    "stateless: no persistent state, any flow steering is sound"
                )
            }
            Partitionability::Keyed(spec) => write!(f, "{spec}"),
            Partitionability::Replicable(spec) => write!(f, "{spec}"),
        }
    }
}

/// The flow key a shard-partitionable program steers by.
///
/// Invariant (established by [`StateLayout::flow_key`]): two packets that
/// can read or write a common state slot have equal keys. The key is the
/// program's own array-index value reduced modulo the gcd of every
/// accessed array's size — equal slots imply congruent indices, congruent
/// indices imply equal keys — and it is computed by a *stateless*
/// straight-line slice of the program, so a dispatcher can evaluate it
/// before any pipeline runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowKeySpec {
    /// Stateless slice computing `key_field` from input fields, in
    /// program order.
    stmts: Vec<TacStmt>,
    /// The common index field whose value (mod `modulus`) is the key.
    key_field: String,
    /// gcd of the sizes of every array the program indexes.
    modulus: u32,
    /// Input fields the key depends on (the slice's free variables).
    roots: Vec<String>,
}

impl FlowKeySpec {
    /// The field whose value the key is derived from.
    pub fn key_field(&self) -> &str {
        &self.key_field
    }

    /// Number of key classes (gcd of all accessed array sizes).
    pub fn modulus(&self) -> u32 {
        self.modulus
    }

    /// The input fields the key depends on.
    pub fn roots(&self) -> &[String] {
        &self.roots
    }

    /// The stateless slice that computes the key field.
    pub fn stmts(&self) -> &[TacStmt] {
        &self.stmts
    }

    /// Evaluates the key of an input packet by running the stateless slice
    /// and reducing the key field modulo [`FlowKeySpec::modulus`].
    ///
    /// Only the root fields are copied into the evaluation scratch — this
    /// runs once per packet on the dispatcher's hot path. (The scratch is
    /// still a fresh map packet per call; when the steering lane becomes
    /// the critical path at high shard counts, the next step is lowering
    /// the slice onto a slot layout like the execution engine does.)
    pub fn key_of(&self, pkt: &Packet) -> u32 {
        let mut scratch = Packet::new();
        for root in &self.roots {
            if let Some(v) = pkt.get(root) {
                scratch.set(root, v);
            }
        }
        // The slice is stateless by construction; the store is never read.
        let mut no_state = StateStore::new();
        for stmt in &self.stmts {
            crate::interp::exec_tac_stmt(stmt, &mut no_state, &mut scratch);
        }
        (scratch.get_or_zero(&self.key_field) as i64).rem_euclid(self.modulus as i64) as u32
    }

    /// The shard an input packet steers to.
    pub fn shard_of(&self, pkt: &Packet, shards: usize) -> usize {
        FlowKeySpec::shard_of_class(self.key_of(pkt), shards)
    }

    /// The shard that owns a key class. Array slot `k` of any accessed
    /// array belongs to class `k % modulus`, so this is also the state
    /// partition: only the owning shard ever touches that slot.
    pub fn shard_of_class(class: u32, shards: usize) -> usize {
        if shards <= 1 {
            return 0;
        }
        (mix64(class as u64) % shards as u64) as usize
    }
}

impl fmt::Display for FlowKeySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "flow key = pkt.{} mod {}", self.key_field, self.modulus)?;
        writeln!(f, "roots: {}", self.roots.join(", "))?;
        if !self.stmts.is_empty() {
            writeln!(f, "slice:")?;
            for s in &self.stmts {
                writeln!(f, "  {s}")?;
            }
        }
        Ok(())
    }
}

/// The elementwise fold that reconciles per-shard replicas of one state
/// array back into the serial array (see [`ReplicaSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// `merged[k] = init + Σ_shard (replica[k] − init)`, wrapping like the
    /// interpreter's `+`. Sound when every write is `slot = slot + δ` with
    /// a state-independent δ: addition commutes and associates, so
    /// splitting the trace across replicas and summing the per-replica
    /// displacements reproduces the serial array bit for bit.
    Sum,
    /// `merged[k] = max over shards of replica[k]`. Sound when every write
    /// stores one constant `c ≥ init` (membership bits): a slot holds `c`
    /// exactly when some shard stored it, on any split of the trace.
    Max,
}

impl fmt::Display for MergeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeOp::Sum => write!(f, "sum"),
            MergeOp::Max => write!(f, "max"),
        }
    }
}

/// One mergeable state array of a [`ReplicaSpec`]: its geometry, merge
/// op, and the stateless slices recovering the per-packet slot index and
/// update value — what the statistical differential harness replays to
/// compute exact per-key masses without re-running the program.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaArray {
    name: String,
    len: u32,
    init: i32,
    merge: MergeOp,
    /// Stateless slice computing the index operand (empty when the index
    /// is a constant or a raw input field).
    index_stmts: Vec<TacStmt>,
    index: Operand,
    index_roots: Vec<String>,
    /// For [`MergeOp::Sum`], the per-packet increment; for
    /// [`MergeOp::Max`], the stored constant.
    value_stmts: Vec<TacStmt>,
    value: Operand,
    value_roots: Vec<String>,
}

impl ReplicaArray {
    /// The declared array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Array length (the sketch row width `w`; ε = e/w for `Sum` rows).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the array has zero slots (never true for declared state).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The declared initializer every replica starts from.
    pub fn init(&self) -> i32 {
        self.init
    }

    /// How per-shard replicas of this array fold back together.
    pub fn merge(&self) -> MergeOp {
        self.merge
    }

    /// Input fields the slot index depends on.
    pub fn index_roots(&self) -> &[String] {
        &self.index_roots
    }

    /// Evaluates a stateless slice on a fresh scratch packet seeded with
    /// the roots, then reads the operand (mirrors [`FlowKeySpec::key_of`]).
    fn eval(stmts: &[TacStmt], roots: &[String], op: &Operand, pkt: &Packet) -> i32 {
        match op {
            Operand::Const(c) => *c,
            Operand::Field(f) => {
                let mut scratch = Packet::new();
                for root in roots {
                    if let Some(v) = pkt.get(root) {
                        scratch.set(root, v);
                    }
                }
                let mut no_state = StateStore::new();
                for stmt in stmts {
                    crate::interp::exec_tac_stmt(stmt, &mut no_state, &mut scratch);
                }
                scratch.get_or_zero(f)
            }
        }
    }

    /// The slot an input packet's update lands in (the program's own index
    /// arithmetic, reduced like the state store reduces indices).
    pub fn slot_of(&self, pkt: &Packet) -> usize {
        (Self::eval(&self.index_stmts, &self.index_roots, &self.index, pkt) as i64)
            .rem_euclid(self.len as i64) as usize
    }

    /// The per-packet update value: the increment added ([`MergeOp::Sum`])
    /// or the constant stored ([`MergeOp::Max`]).
    pub fn update_of(&self, pkt: &Packet) -> i32 {
        Self::eval(&self.value_stmts, &self.value_roots, &self.value, pkt)
    }
}

impl fmt::Display for ReplicaArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] init {}: merge {}, update {}",
            self.name, self.len, self.init, self.merge, self.value
        )
    }
}

/// Witness that a program's state is **replicable**: every state update
/// commutes and associates, so each shard may run a *full copy* of the
/// state under any packet steering, and the per-shard copies fold back
/// into the serial state elementwise ([`ReplicaSpec::merge_states`]).
///
/// This is the tier below [`FlowKeySpec`]'s exact partitioning. The
/// merged *state* is still bit-identical to serial execution, but
/// per-packet *outputs* that read sketch state (post-increment estimates)
/// are not — they obey the sketch's own approximation contract instead,
/// which the statistical differential harness checks as overestimate,
/// mass-conservation, and (ε, δ) error-bound invariants (the count-min
/// guarantees the source algorithm already lives with).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSpec {
    arrays: Vec<ReplicaArray>,
    steer_roots: Vec<String>,
}

impl ReplicaSpec {
    /// The mergeable (written) arrays, in declaration-independent
    /// name order.
    pub fn arrays(&self) -> &[ReplicaArray] {
        &self.arrays
    }

    /// Looks up one mergeable array by name.
    pub fn array(&self, name: &str) -> Option<&ReplicaArray> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Input fields replica steering hashes: the union of every index
    /// slice's roots. Steering never affects merge correctness (updates
    /// commute); hashing these keeps packets of one flow on one shard so
    /// per-flow output order survives. Empty for constant-indexed
    /// sketches — any deterministic steering then works.
    pub fn steer_roots(&self) -> &[String] {
        &self.steer_roots
    }

    /// Count-min depth `d`: the number of `Sum`-merged rows.
    pub fn sum_rows(&self) -> usize {
        self.arrays
            .iter()
            .filter(|a| a.merge == MergeOp::Sum)
            .count()
    }

    /// ε of the sketch's (ε, δ) contract — `e / w` for the narrowest
    /// `Sum` row — or `None` when the sketch has no `Sum` rows.
    pub fn epsilon(&self) -> Option<f64> {
        self.arrays
            .iter()
            .filter(|a| a.merge == MergeOp::Sum)
            .map(|a| a.len)
            .min()
            .map(|w| std::f64::consts::E / w as f64)
    }

    /// δ of the (ε, δ) contract: the probability that the min-over-rows
    /// estimate of any key exceeds `exact + ε·N`, bounded by `e^(−d)`.
    pub fn delta(&self) -> Option<f64> {
        let d = self.sum_rows();
        (d > 0).then(|| (-(d as f64)).exp())
    }

    /// Folds per-shard exported snapshots into one state **bit-identical**
    /// to the serial run's: `Sum` arrays by summed displacement from the
    /// initializer (wrapping, like the interpreter), `Max` arrays by
    /// elementwise max. Everything else — read-only arrays, declared but
    /// untouched state — is identical in every replica and is taken from
    /// the first snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `snaps` is empty or a snapshot is missing one of the
    /// spec's arrays.
    pub fn merge_states(&self, snaps: &[StateStore]) -> StateStore {
        assert!(
            !snaps.is_empty(),
            "merge_states needs at least one snapshot"
        );
        let mut merged = snaps[0].clone();
        for arr in &self.arrays {
            for k in 0..arr.len as i32 {
                let folded = match arr.merge {
                    MergeOp::Sum => snaps.iter().fold(arr.init, |acc, s| {
                        acc.wrapping_add(s.read_array(&arr.name, k).wrapping_sub(arr.init))
                    }),
                    MergeOp::Max => snaps
                        .iter()
                        .map(|s| s.read_array(&arr.name, k))
                        .max()
                        .expect("snaps is non-empty"),
                };
                merged.write_array(&arr.name, k, folded);
            }
        }
        merged
    }
}

impl fmt::Display for ReplicaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "replicable: full sketch replica per shard, elementwise merge"
        )?;
        if self.steer_roots.is_empty() {
            writeln!(f, "steer roots: (none; any deterministic steering)")?;
        } else {
            writeln!(f, "steer roots: {}", self.steer_roots.join(", "))?;
        }
        for a in &self.arrays {
            writeln!(f, "  {a}")?;
        }
        if let (Some(eps), Some(delta)) = (self.epsilon(), self.delta()) {
            writeln!(
                f,
                "(ε, δ) bound: ε = {eps:.3e} ({} sum rows), δ = {delta:.3e}",
                self.sum_rows()
            )?;
        }
        Ok(())
    }
}

/// SplitMix64 finalizer: spreads key classes uniformly over shards so
/// steering stays balanced even when keys cluster. Deterministic across
/// runs and platforms (steering must be reproducible).
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Backward slice of `targets` over stateless, singly-assigned defs,
/// walking `stmts` in reverse. Returns the slice (in program order) and
/// its free input fields. Errors — named after `what`, e.g. "the flow
/// key" or "array `cms1`'s index" — if the slice passes through state or
/// a multiply-assigned field.
fn stateless_slice(
    stmts: &[TacStmt],
    defs: &HashMap<&str, usize>,
    targets: &[&str],
    what: &str,
) -> Result<(Vec<TacStmt>, Vec<String>), String> {
    let mut need: BTreeSet<String> = targets.iter().map(|t| t.to_string()).collect();
    let mut slice: Vec<TacStmt> = Vec::new();
    for stmt in stmts.iter().rev() {
        match stmt {
            TacStmt::Assign { dst, rhs } if need.contains(dst.as_str()) => {
                if defs.get(dst.as_str()).copied().unwrap_or(0) > 1 {
                    return Err(format!(
                        "field `{dst}` feeding {what} is assigned more \
                         than once; the key has no unique pre-execution value"
                    ));
                }
                need.remove(dst.as_str());
                for op in rhs.operands() {
                    if let Operand::Field(f) = op {
                        need.insert(f.clone());
                    }
                }
                slice.push(stmt.clone());
            }
            TacStmt::ReadState { dst, state } if need.contains(dst.as_str()) => {
                return Err(format!(
                    "{what} depends on state `{}` (via field `{dst}`); \
                     it cannot be computed before execution",
                    state.name()
                ));
            }
            _ => {}
        }
    }
    slice.reverse();
    Ok((slice, need.into_iter().collect()))
}

/// Per-`dst` definition counts (assignments and state-read destinations)
/// — the single-assignment witness both tiers' slices rely on.
fn def_counts(stmts: &[TacStmt]) -> HashMap<&str, usize> {
    let mut defs: HashMap<&str, usize> = HashMap::new();
    for stmt in stmts {
        match stmt {
            TacStmt::Assign { dst, .. } | TacStmt::ReadState { dst, .. } => {
                *defs.entry(dst.as_str()).or_insert(0) += 1;
            }
            TacStmt::WriteState { .. } => {}
        }
    }
    defs
}

/// Rejects programs that access state through `field` *before* its
/// assignment: the access would index by the field's input value while
/// the extracted slice computes the assigned value — two different index
/// values in one pipeline. (Compiler-emitted TAC is SSA, so this only
/// bites hand-built pipelines — but those reach this API too.)
fn index_defined_before_access(stmts: &[TacStmt], field: &str) -> Result<(), String> {
    if let Some(def_pos) = stmts
        .iter()
        .position(|s| matches!(s, TacStmt::Assign { dst, .. } if dst == field))
    {
        let early_access = stmts[..def_pos].iter().any(|s| {
            matches!(s,
                TacStmt::ReadState { state, .. } | TacStmt::WriteState { state, .. }
                    if matches!(state, StateRef::Array { index: Operand::Field(f), .. }
                        if f == field))
        });
        if early_access {
            return Err(format!(
                "state is accessed through `{field}` before that field is \
                 assigned; the flow key has no single pre-execution value"
            ));
        }
    }
    Ok(())
}

impl StateLayout {
    /// Decides how a program's state indexing partitions across shards,
    /// trying the strongest tier first:
    ///
    /// 1. **Exact** ([`Partitionability::Keyed`] / `Stateless`) — one
    ///    common index field keys every access; steering by it reproduces
    ///    serial execution bit for bit.
    /// 2. **Replicable** ([`Partitionability::Replicable`]) — every state
    ///    update is a commutative fold into an array slot, so full
    ///    per-shard replicas merge back into the serial state.
    ///
    /// When both tiers reject, the error names the tier decision and the
    /// specific analysis step each tier failed on — the single-shard
    /// fallback diagnostic `banzai`'s sharded switch surfaces.
    pub fn flow_key(&self, stmts: &[TacStmt]) -> Result<Partitionability, String> {
        let exact_why = match self.exact_flow_key(stmts) {
            Ok(part) => return Ok(part),
            Err(why) => why,
        };
        match self.replica_spec(stmts) {
            Ok(spec) => Ok(Partitionability::Replicable(spec)),
            Err(replica_why) => Err(format!(
                "not Exact-partitionable: {exact_why}; \
                 not Replicable: {replica_why}"
            )),
        }
    }

    /// The **exact** tier: extracts the [`FlowKeySpec`] witnessing that
    /// flow steering reproduces serial execution bit for bit.
    ///
    /// `stmts` is the program's straight-line TAC in execution order (for
    /// a compiled pipeline: every atom's codelet, stage by stage). The
    /// rule:
    ///
    /// * **scalar state** is a global register every packet read-modify-
    ///   writes — not partitionable (e.g. `rcp.domino`);
    /// * **array state** must be indexed by *one* common packet field
    ///   across all accesses (e.g. `flowlet.domino`'s `pkt.id`); arrays
    ///   indexed by distinct hash fields couple packets through slot
    ///   collisions (e.g. `heavy_hitters.domino`'s three sketch rows —
    ///   which the [`StateLayout::replica_spec`] tier covers instead);
    /// * the index field's computation must be a **stateless** slice of
    ///   the program (a dispatcher steers *before* execution);
    /// * the key is the index reduced modulo the **gcd of the array
    ///   sizes**, so congruent indices — the only ones that can alias a
    ///   slot — share a key class.
    fn exact_flow_key(&self, stmts: &[TacStmt]) -> Result<Partitionability, String> {
        let mut index_fields: BTreeSet<&str> = BTreeSet::new();
        let mut modulus = 0u32;
        for stmt in stmts {
            let sref = match stmt {
                TacStmt::ReadState { state, .. } | TacStmt::WriteState { state, .. } => state,
                TacStmt::Assign { .. } => continue,
            };
            let entry = self
                .slot(sref.name())
                .ok_or_else(|| format!("state variable `{}` is not declared", sref.name()))?;
            match sref {
                StateRef::Scalar(name) => {
                    return Err(format!(
                        "scalar state `{name}` is a global register (every packet \
                         read-modify-writes it); no flow steering preserves serial \
                         semantics"
                    ));
                }
                StateRef::Array { name, index } => match index {
                    Operand::Const(c) => {
                        return Err(format!(
                            "array `{name}` is indexed by the constant {c}; every \
                             packet touches the same slot"
                        ));
                    }
                    Operand::Field(f) => {
                        index_fields.insert(f);
                        modulus = gcd(modulus, entry.len);
                    }
                },
            }
        }

        if index_fields.is_empty() {
            return Ok(Partitionability::Stateless);
        }
        if index_fields.len() > 1 {
            let fields: Vec<&str> = index_fields.into_iter().collect();
            return Err(format!(
                "state arrays are indexed by {} distinct fields (`{}`); packets \
                 couple through slot collisions, so no single flow key covers them",
                fields.len(),
                fields.join("`, `")
            ));
        }
        if modulus <= 1 {
            return Err(
                "the accessed arrays' sizes share no common factor; the flow key \
                 has a single class"
                    .to_string(),
            );
        }
        let key_field = index_fields.into_iter().next().unwrap().to_string();

        // The key field must be defined before any state access indexes
        // by it, and its computation must be a stateless, singly-assigned
        // slice — the dispatcher evaluates it before any pipeline runs.
        index_defined_before_access(stmts, &key_field)?;
        let defs = def_counts(stmts);
        let (slice, roots) = stateless_slice(stmts, &defs, &[&key_field], "the flow key")?;
        Ok(Partitionability::Keyed(FlowKeySpec {
            stmts: slice,
            key_field,
            modulus,
            roots,
        }))
    }

    /// The **replicable** tier: proves every state update is a
    /// commutative, associative, state-independent fold into one array
    /// slot, and builds the [`ReplicaSpec`] naming each mergeable array
    /// and its merge op.
    ///
    /// Accepted update grammar, per written array (one write site; the
    /// resolution follows unique copy chains):
    ///
    /// * `arr[i] = c` with constant `c ≥ init` → merge [`MergeOp::Max`]
    ///   (membership bits, e.g. `bloom_filter.domino`);
    /// * `arr[i] = arr[i] + δ`, optionally guarded
    ///   (`cond ? arr[i] + δ : arr[i]`), where δ's and `cond`'s backward
    ///   slices are stateless → merge [`MergeOp::Sum`] (count-min rows,
    ///   e.g. `heavy_hitters.domino`'s three differently-hashed sketches);
    /// * a bare copy-back `arr[i] = arr[i]` → `Sum` with δ = 0.
    ///
    /// Everything else is rejected with the specific failing step: scalar
    /// accesses (replicas of a global register diverge), reads and writes
    /// of one array at different slots (cross-slot moves do not commute),
    /// packet-dependent overwrites (last-writer-wins depends on the
    /// split), updates whose δ or index reads *any* state (read-modify-
    /// write coupling across arrays). Reads that feed only packet outputs
    /// are unconstrained — those are the per-packet sketch estimates the
    /// statistical harness covers.
    fn replica_spec(&self, stmts: &[TacStmt]) -> Result<ReplicaSpec, String> {
        let defs = def_counts(stmts);

        // Group accesses per array; scalars cannot be replicated.
        #[derive(Default)]
        struct Accesses {
            reads: Vec<(String, Operand)>,
            writes: Vec<(Operand, Operand)>,
        }
        let mut access: BTreeMap<String, Accesses> = BTreeMap::new();
        for stmt in stmts {
            let sref = match stmt {
                TacStmt::ReadState { state, .. } | TacStmt::WriteState { state, .. } => state,
                TacStmt::Assign { .. } => continue,
            };
            self.slot(sref.name())
                .ok_or_else(|| format!("state variable `{}` is not declared", sref.name()))?;
            if let StateRef::Scalar(name) = sref {
                return Err(format!(
                    "scalar state `{name}` is a global register; per-shard \
                     replicas of it diverge and no elementwise merge recovers \
                     the serial value"
                ));
            }
            let StateRef::Array { name, index } = sref else {
                unreachable!("scalars returned above")
            };
            let entry = access.entry(name.clone()).or_default();
            match stmt {
                TacStmt::ReadState { dst, .. } => entry.reads.push((dst.clone(), index.clone())),
                TacStmt::WriteState { src, .. } => entry.writes.push((src.clone(), index.clone())),
                TacStmt::Assign { .. } => unreachable!("assigns were skipped above"),
            }
        }

        // Resolves an operand through unique single-assignment copy
        // chains to its terminal operand.
        let resolve = |op: &Operand| -> Operand {
            let mut op = op.clone();
            loop {
                let Operand::Field(ref f) = op else { return op };
                if defs.get(f.as_str()).copied().unwrap_or(0) != 1 {
                    return op;
                }
                let copied = stmts.iter().find_map(|s| match s {
                    TacStmt::Assign {
                        dst,
                        rhs: TacRhs::Copy(inner),
                    } if dst == f => Some(inner.clone()),
                    _ => None,
                });
                match copied {
                    Some(inner) => op = inner,
                    None => return op,
                }
            }
        };
        // The unique non-copy Assign rhs ultimately defining `op`, if any.
        let rhs_of = |op: &Operand| -> Option<TacRhs> {
            let Operand::Field(f) = resolve(op) else {
                return None;
            };
            if defs.get(f.as_str()).copied().unwrap_or(0) != 1 {
                return None;
            }
            stmts.iter().find_map(|s| match s {
                TacStmt::Assign { dst, rhs } if *dst == f => Some(rhs.clone()),
                _ => None,
            })
        };

        /// A classified commutative update.
        enum Update {
            /// `arr[i] = c` — constant store, max-merge.
            Store(i32),
            /// `arr[i] = arr[i] + δ`, `guard ? … : arr[i]` — sum-merge.
            /// `negated` marks the `guard ? arr[i] : arr[i] + δ` arm order.
            Increment {
                delta: Operand,
                guard: Option<(Operand, bool)>,
            },
        }

        let mut arrays: Vec<ReplicaArray> = Vec::new();
        let mut steer_roots: BTreeSet<String> = BTreeSet::new();
        for (name, acc) in &access {
            if acc.writes.is_empty() {
                continue; // read-only: every replica stays bit-identical
            }
            if acc.writes.len() > 1 {
                return Err(format!(
                    "array `{name}` is written at {} sites; a replica needs a \
                     single commutative update per packet",
                    acc.writes.len()
                ));
            }
            let (src, widx) = acc.writes[0].clone();
            let entry = self.slot(name).expect("declared above");

            // Is `op` this array's own read value? A read feeding the
            // write must use the write's own index — a cross-slot move
            // (`arr[i] = arr[j] + δ`) does not commute.
            let own_read = |op: &Operand| -> Result<bool, String> {
                let Operand::Field(f) = resolve(op) else {
                    return Ok(false);
                };
                let Some((_, ridx)) = acc.reads.iter().find(|(dst, _)| *dst == f) else {
                    return Ok(false);
                };
                if *ridx != widx {
                    return Err(format!(
                        "array `{name}` is read at index `{ridx}` but written \
                         at index `{widx}`; cross-slot moves do not commute"
                    ));
                }
                Ok(true)
            };
            // `arr[i] + δ` (either operand order) → δ.
            let increment_of = |op: &Operand| -> Result<Option<Operand>, String> {
                match rhs_of(op) {
                    Some(TacRhs::Binary(domino_ast::BinOp::Add, a, b)) => {
                        if own_read(&a)? {
                            Ok(Some(b))
                        } else if own_read(&b)? {
                            Ok(Some(a))
                        } else {
                            Ok(None)
                        }
                    }
                    _ => Ok(None),
                }
            };
            // The taken arm of a guarded update: the slot kept (δ = 0) or
            // incremented.
            let arm_of = |op: &Operand| -> Result<Option<Operand>, String> {
                if own_read(op)? {
                    Ok(Some(Operand::Const(0)))
                } else {
                    increment_of(op)
                }
            };

            let update = if let Operand::Const(c) = resolve(&src) {
                Update::Store(c)
            } else if own_read(&src)? {
                Update::Increment {
                    delta: Operand::Const(0),
                    guard: None,
                }
            } else if let Some(delta) = increment_of(&src)? {
                Update::Increment { delta, guard: None }
            } else if let Some(TacRhs::Ternary(cond, then_, else_)) = rhs_of(&src) {
                // Guarded increment: one arm keeps the slot, the other
                // increments it — `cond ? arr[i] + δ : arr[i]` or mirrored.
                let taken = if own_read(&else_)? {
                    arm_of(&then_)?.map(|delta| (delta, false))
                } else if own_read(&then_)? {
                    arm_of(&else_)?.map(|delta| (delta, true))
                } else {
                    None
                };
                match taken {
                    Some((delta, negated)) => Update::Increment {
                        delta,
                        guard: Some((cond, negated)),
                    },
                    None => {
                        return Err(format!(
                            "array `{name}` is overwritten with a \
                             packet-dependent value; last-writer-wins depends \
                             on the trace split, so replicas cannot be merged"
                        ))
                    }
                }
            } else {
                return Err(format!(
                    "array `{name}` is overwritten with a packet-dependent \
                     value; last-writer-wins depends on the trace split, so \
                     replicas cannot be merged"
                ));
            };

            // The slot index must be a pre-execution value: stateless,
            // singly assigned, never accessed before its definition.
            let (index_stmts, index_roots) = match &widx {
                Operand::Const(_) => (Vec::new(), Vec::new()),
                Operand::Field(f) => {
                    index_defined_before_access(stmts, f)?;
                    stateless_slice(stmts, &defs, &[f], &format!("array `{name}`'s index"))?
                }
            };

            let arr = match update {
                Update::Store(c) => {
                    if c < entry.init {
                        return Err(format!(
                            "array `{name}` stores the constant {c} below its \
                             initializer {}; max-merge cannot reproduce it",
                            entry.init
                        ));
                    }
                    ReplicaArray {
                        name: name.clone(),
                        len: entry.len,
                        init: entry.init,
                        merge: MergeOp::Max,
                        index_stmts,
                        index: widx.clone(),
                        index_roots,
                        value_stmts: Vec::new(),
                        value: Operand::Const(c),
                        value_roots: Vec::new(),
                    }
                }
                Update::Increment { delta, guard } => {
                    // δ and the guard must be stateless: a δ read from
                    // another array would couple the sketches' evolution
                    // across the split (read-modify-write coupling).
                    let mut targets: Vec<&str> = Vec::new();
                    if let Operand::Field(f) = &delta {
                        targets.push(f);
                    }
                    if let Some((Operand::Field(f), _)) = &guard {
                        targets.push(f);
                    }
                    let (mut value_stmts, value_roots) = stateless_slice(
                        stmts,
                        &defs,
                        &targets,
                        &format!("array `{name}`'s update value"),
                    )?;
                    let value = match guard {
                        None => delta,
                        Some((cond, negated)) => {
                            // Synthesize `cond ? δ : 0` (arms swapped for
                            // the negated form) so `update_of` evaluates
                            // the guard exactly as the program does.
                            let dst = format!("__replica_update_{name}");
                            let (then_, else_) = if negated {
                                (Operand::Const(0), delta)
                            } else {
                                (delta, Operand::Const(0))
                            };
                            value_stmts.push(TacStmt::Assign {
                                dst: dst.clone(),
                                rhs: TacRhs::Ternary(cond, then_, else_),
                            });
                            Operand::Field(dst)
                        }
                    };
                    ReplicaArray {
                        name: name.clone(),
                        len: entry.len,
                        init: entry.init,
                        merge: MergeOp::Sum,
                        index_stmts,
                        index: widx.clone(),
                        index_roots,
                        value_stmts,
                        value,
                        value_roots,
                    }
                }
            };
            steer_roots.extend(arr.index_roots.iter().cloned());
            arrays.push(arr);
        }

        Ok(ReplicaSpec {
            arrays,
            steer_roots: steer_roots.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_abc() -> Arc<FieldTable> {
        let mut t = FieldTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        Arc::new(t)
    }

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut t = FieldTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.lookup("b"), Some(b));
        assert_eq!(t.lookup("ghost"), None);
    }

    #[test]
    fn flat_packet_roundtrips_through_map_packet() {
        let table = table_abc();
        let pkt = Packet::new().with("a", 5).with("c", -2);
        let flat = FlatPacket::from_packet(&pkt, &table);
        assert_eq!(flat.get(table.lookup("a").unwrap()), Some(5));
        assert_eq!(flat.get(table.lookup("b").unwrap()), None);
        assert_eq!(flat.get_or_zero(table.lookup("b").unwrap()), 0);
        assert_eq!(flat.to_packet(), pkt);
    }

    #[test]
    fn absent_slots_read_zero_until_masked_present() {
        let table = table_abc();
        let mut flat = FlatPacket::new(Arc::clone(&table));
        let b = table.lookup("b").unwrap();
        flat.slots_mut()[b.index()] = 7; // raw engine write, no presence
        assert!(!flat.has(b));
        assert_eq!(flat.get_or_zero(b), 7);
        let mut mask = vec![0u64; 1];
        mask[0] |= 1 << b.index();
        flat.mark_present(&mask);
        assert!(flat.has(b));
        assert_eq!(flat.to_packet().get("b"), Some(7));
    }

    #[test]
    #[should_panic(expected = "packet field `b` (slot#1) read before any write")]
    fn expect_panics_with_field_name_not_bare_index() {
        let table = table_abc();
        let mut flat = FlatPacket::new(Arc::clone(&table));
        flat.set(table.lookup("a").unwrap(), 1);
        flat.expect(table.lookup("b").unwrap());
    }

    #[test]
    fn state_layout_assigns_contiguous_bases() {
        let decls = vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
            StateVar {
                name: "d".into(),
                kind: StateKind::Scalar,
                init: 0,
            },
        ];
        let layout = StateLayout::from_decls(&decls);
        assert_eq!(layout.total_slots(), 6);
        assert_eq!(layout.slot("c").unwrap().base, 0);
        assert_eq!(layout.slot("arr").unwrap().base, 1);
        assert_eq!(layout.slot("arr").unwrap().len, 4);
        assert_eq!(layout.slot("d").unwrap().base, 5);
        assert!(layout.slot("ghost").is_none());
    }

    #[test]
    fn flat_state_matches_state_store_semantics() {
        let decls = vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
        ];
        let mut flat = FlatState::new(StateLayout::from_decls(&decls));
        let mut store = StateStore::from_decls(&decls);

        let arr = flat.layout().slot("arr").unwrap().clone();
        let c = flat.layout().slot("c").unwrap().clone();
        assert_eq!(flat.read(c.base), 7);
        flat.write(c.base, 42);
        store.write_scalar("c", 42);
        // Wrapping behaviour must match rem_euclid on both sides.
        for idx in [0, 2, 6, -1] {
            flat.write_array(arr.base, arr.len, idx, 10 + idx);
            store.write_array("arr", idx, 10 + idx);
        }
        assert_eq!(flat.export(), store);
    }

    #[test]
    fn flat_state_import_roundtrips_export() {
        let decls = vec![
            StateVar {
                name: "c".into(),
                kind: StateKind::Scalar,
                init: 7,
            },
            StateVar {
                name: "arr".into(),
                kind: StateKind::Array { size: 4 },
                init: -1,
            },
        ];
        let mut a = FlatState::new(StateLayout::from_decls(&decls));
        a.write(0, 42);
        a.write_array(1, 4, 3, 9);
        let mut b = FlatState::new(StateLayout::from_decls(&decls));
        b.import(&a.export());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown state variable `ghost`")]
    fn flat_state_import_rejects_unknown_variables() {
        let mut flat = FlatState::new(StateLayout::from_decls(&[]));
        let mut snap = StateStore::new();
        snap.insert_scalar("ghost", 1);
        flat.import(&snap);
    }

    // --- flow-key extraction -------------------------------------------

    use crate::tac::{Operand, StateRef, TacRhs, TacStmt};

    fn arr_decl(name: &str, size: u32) -> StateVar {
        StateVar {
            name: name.into(),
            kind: StateKind::Array { size },
            init: 0,
        }
    }

    /// `pkt.idx = pkt.sport % 8; a[pkt.idx] read+write` — partitionable.
    fn keyed_stmts() -> Vec<TacStmt> {
        vec![
            TacStmt::Assign {
                dst: "idx".into(),
                rhs: TacRhs::Binary(
                    domino_ast::BinOp::Mod,
                    Operand::Field("sport".into()),
                    Operand::Const(8),
                ),
            },
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
                src: Operand::Field("old".into()),
            },
        ]
    }

    #[test]
    fn flow_key_extracts_single_index_field() {
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let part = layout.flow_key(&keyed_stmts()).unwrap();
        let Partitionability::Keyed(spec) = part else {
            panic!("expected Keyed, got {part:?}");
        };
        assert_eq!(spec.key_field(), "idx");
        assert_eq!(spec.modulus(), 8);
        assert_eq!(spec.roots(), ["sport".to_string()]);
        assert_eq!(spec.stmts().len(), 1); // just the idx assignment
                                           // Keys follow the program's own index arithmetic.
        let k = spec.key_of(&Packet::new().with("sport", 13));
        assert_eq!(k, 5);
        // Equal keys steer to equal shards; classes cover all shards' ids.
        assert_eq!(
            spec.shard_of(&Packet::new().with("sport", 13), 4),
            FlowKeySpec::shard_of_class(5, 4)
        );
        assert!(spec.to_string().contains("flow key = pkt.idx mod 8"));
    }

    #[test]
    fn flow_key_modulus_is_gcd_of_array_sizes() {
        let layout = StateLayout::from_decls(&[arr_decl("a", 8), arr_decl("b", 12)]);
        let mut stmts = keyed_stmts();
        stmts.push(TacStmt::WriteState {
            state: StateRef::Array {
                name: "b".into(),
                index: Operand::Field("idx".into()),
            },
            src: Operand::Const(1),
        });
        let Partitionability::Keyed(spec) = layout.flow_key(&stmts).unwrap() else {
            panic!("expected Keyed");
        };
        assert_eq!(spec.modulus(), 4); // gcd(8, 12)
    }

    #[test]
    fn flow_key_rejects_scalars_with_two_tier_diagnostic() {
        let layout = StateLayout::from_decls(&[
            arr_decl("a", 8),
            StateVar {
                name: "s".into(),
                kind: StateKind::Scalar,
                init: 0,
            },
        ]);
        // Scalar access: a global register fails both tiers, and the
        // diagnostic names each tier's rejection.
        let err = layout
            .flow_key(&[TacStmt::WriteState {
                state: StateRef::Scalar("s".into()),
                src: Operand::Const(1),
            }])
            .unwrap_err();
        assert!(err.contains("not Exact-partitionable:"), "{err}");
        assert!(err.contains("not Replicable:"), "{err}");
        assert!(err.contains("scalar state `s`"), "{err}");
    }

    #[test]
    fn multi_field_indexing_demotes_to_replicable() {
        // Two arrays indexed by different fields: not exactly
        // partitionable (slot-collision coupling), but both updates
        // commute, so the program lands in the replica tier.
        let layout = StateLayout::from_decls(&[arr_decl("a", 8), arr_decl("b", 8)]);
        let mut stmts = keyed_stmts();
        stmts.push(TacStmt::WriteState {
            state: StateRef::Array {
                name: "b".into(),
                index: Operand::Field("other".into()),
            },
            src: Operand::Const(1),
        });
        let Partitionability::Replicable(spec) = layout.flow_key(&stmts).unwrap() else {
            panic!("expected Replicable");
        };
        // `a` keeps its own read value (δ = 0); `b` stores a constant.
        assert_eq!(spec.array("a").unwrap().merge(), MergeOp::Sum);
        assert_eq!(spec.array("b").unwrap().merge(), MergeOp::Max);
        assert_eq!(spec.steer_roots(), ["other".to_string(), "sport".into()]);
        let rendered = spec.to_string();
        assert!(
            rendered.contains("full sketch replica per shard"),
            "{rendered}"
        );
    }

    #[test]
    fn constant_index_store_is_replicable_via_max_merge() {
        // Everyone writes 1 into slot 3: max-merge reproduces the serial
        // slot on any trace split, so this is Replicable, not a fallback.
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let part = layout
            .flow_key(&[TacStmt::WriteState {
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Const(3),
                },
                src: Operand::Const(1),
            }])
            .unwrap();
        let Partitionability::Replicable(spec) = part else {
            panic!("expected Replicable, got {part:?}");
        };
        let arr = spec.array("a").unwrap();
        assert_eq!(arr.merge(), MergeOp::Max);
        assert!(spec.steer_roots().is_empty());
        assert_eq!(arr.slot_of(&Packet::new()), 3);
        assert_eq!(arr.update_of(&Packet::new()), 1);
        // No Sum rows → no (ε, δ) contract to state.
        assert_eq!(spec.epsilon(), None);
        assert_eq!(spec.delta(), None);
    }

    /// Count-min-style row: idx = sport % 8; row[idx] = row[idx] + 1.
    fn sketch_row(arr: &str, idx_field: &str, root: &str) -> Vec<TacStmt> {
        vec![
            TacStmt::Assign {
                dst: idx_field.into(),
                rhs: TacRhs::Binary(
                    domino_ast::BinOp::Mod,
                    Operand::Field(root.into()),
                    Operand::Const(8),
                ),
            },
            TacStmt::ReadState {
                dst: format!("{arr}_old"),
                state: StateRef::Array {
                    name: arr.into(),
                    index: Operand::Field(idx_field.into()),
                },
            },
            TacStmt::Assign {
                dst: format!("{arr}_new"),
                rhs: TacRhs::Binary(
                    domino_ast::BinOp::Add,
                    Operand::Field(format!("{arr}_old")),
                    Operand::Const(1),
                ),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: arr.into(),
                    index: Operand::Field(idx_field.into()),
                },
                src: Operand::Field(format!("{arr}_new")),
            },
        ]
    }

    #[test]
    fn replica_spec_classifies_count_min_rows_as_sum() {
        let layout = StateLayout::from_decls(&[arr_decl("r1", 8), arr_decl("r2", 16)]);
        let mut stmts = sketch_row("r1", "i1", "sport");
        stmts.extend(sketch_row("r2", "i2", "dport"));
        let Partitionability::Replicable(spec) = layout.flow_key(&stmts).unwrap() else {
            panic!("expected Replicable");
        };
        assert_eq!(spec.sum_rows(), 2);
        // ε from the narrowest Sum row, δ from the row count.
        assert!((spec.epsilon().unwrap() - std::f64::consts::E / 8.0).abs() < 1e-12);
        assert!((spec.delta().unwrap() - (-2.0f64).exp()).abs() < 1e-12);
        // slot_of follows the program's own index arithmetic (incl. the
        // store's rem_euclid wrap) and update_of yields the increment.
        let pkt = Packet::new().with("sport", 13).with("dport", -3);
        let r1 = spec.array("r1").unwrap();
        let r2 = spec.array("r2").unwrap();
        assert_eq!(r1.slot_of(&pkt), 5);
        assert_eq!(r2.slot_of(&pkt), (-3i64).rem_euclid(16) as usize);
        assert_eq!(r1.update_of(&pkt), 1);
        assert_eq!(spec.steer_roots(), ["dport".to_string(), "sport".into()]);
    }

    #[test]
    fn replica_merge_is_bit_identical_to_serial_state() {
        // Split a trace across 3 replicas; the sum/max folds must land
        // exactly on the serial state, including wrapping adds.
        let decls = [arr_decl("r1", 8), arr_decl("r2", 16), arr_decl("b", 8)];
        let layout = StateLayout::from_decls(&decls);
        let mut stmts = sketch_row("r1", "i1", "sport");
        stmts.extend(sketch_row("r2", "i2", "dport"));
        stmts.push(TacStmt::WriteState {
            state: StateRef::Array {
                name: "b".into(),
                index: Operand::Field("i1".into()),
            },
            src: Operand::Const(1),
        });
        let Partitionability::Replicable(spec) = layout.flow_key(&stmts).unwrap() else {
            panic!("expected Replicable");
        };

        let trace: Vec<Packet> = (0..50)
            .map(|i| Packet::new().with("sport", i * 7 + 3).with("dport", i * 11))
            .collect();
        let run = |pkts: &[&Packet]| -> StateStore {
            let mut st = StateStore::from_decls(&decls);
            for pkt in pkts {
                let mut p = (*pkt).clone();
                for s in &stmts {
                    crate::interp::exec_tac_stmt(s, &mut st, &mut p);
                }
            }
            st
        };
        let serial = run(&trace.iter().collect::<Vec<_>>());
        let snaps: Vec<StateStore> = (0..3)
            .map(|shard| {
                run(&trace
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 == shard)
                    .map(|(_, p)| p)
                    .collect::<Vec<_>>())
            })
            .collect();
        assert_eq!(spec.merge_states(&snaps), serial);
        // Merging a single full-trace snapshot is the identity.
        assert_eq!(spec.merge_states(std::slice::from_ref(&serial)), serial);
    }

    #[test]
    fn replica_spec_accepts_guarded_increments() {
        // r[idx] = pkt.cond ? r[idx] + 2 : r[idx]  (and the mirrored arm
        // order) — a guarded increment still commutes. A second array on
        // a different field keeps the exact tier from claiming this.
        let layout = StateLayout::from_decls(&[arr_decl("r", 8), arr_decl("b", 8)]);
        let stmts = |negated: bool| {
            let (then_, else_) = if negated {
                (
                    Operand::Field("r_old".into()),
                    Operand::Field("r_new".into()),
                )
            } else {
                (
                    Operand::Field("r_new".into()),
                    Operand::Field("r_old".into()),
                )
            };
            vec![
                TacStmt::ReadState {
                    dst: "r_old".into(),
                    state: StateRef::Array {
                        name: "r".into(),
                        index: Operand::Field("sport".into()),
                    },
                },
                TacStmt::Assign {
                    dst: "r_new".into(),
                    rhs: TacRhs::Binary(
                        domino_ast::BinOp::Add,
                        Operand::Field("r_old".into()),
                        Operand::Const(2),
                    ),
                },
                TacStmt::Assign {
                    dst: "picked".into(),
                    rhs: TacRhs::Ternary(Operand::Field("cond".into()), then_, else_),
                },
                TacStmt::WriteState {
                    state: StateRef::Array {
                        name: "r".into(),
                        index: Operand::Field("sport".into()),
                    },
                    src: Operand::Field("picked".into()),
                },
                TacStmt::WriteState {
                    state: StateRef::Array {
                        name: "b".into(),
                        index: Operand::Field("dport".into()),
                    },
                    src: Operand::Const(1),
                },
            ]
        };
        for negated in [false, true] {
            let Partitionability::Replicable(spec) = layout.flow_key(&stmts(negated)).unwrap()
            else {
                panic!("expected Replicable (negated = {negated})");
            };
            let arr = spec.array("r").unwrap();
            assert_eq!(arr.merge(), MergeOp::Sum);
            // When the guard takes the increment arm δ = 2, else δ = 0 —
            // regardless of which ternary arm held the update.
            let hit = Packet::new()
                .with("sport", 1)
                .with("cond", if negated { 0 } else { 1 });
            let miss = Packet::new()
                .with("sport", 1)
                .with("cond", if negated { 1 } else { 0 });
            assert_eq!(arr.update_of(&hit), 2, "negated = {negated}");
            assert_eq!(arr.update_of(&miss), 0, "negated = {negated}");
        }
    }

    #[test]
    fn replica_spec_rejects_non_commutative_updates() {
        let layout = StateLayout::from_decls(&[arr_decl("r", 8), arr_decl("q", 8)]);
        // Cross-slot move: read at the input index, write at another.
        let cross = vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Array {
                    name: "r".into(),
                    index: Operand::Field("src_idx".into()),
                },
            },
            TacStmt::Assign {
                dst: "bump".into(),
                rhs: TacRhs::Binary(
                    domino_ast::BinOp::Add,
                    Operand::Field("old".into()),
                    Operand::Const(1),
                ),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "r".into(),
                    index: Operand::Field("dst_idx".into()),
                },
                src: Operand::Field("bump".into()),
            },
        ];
        let err = layout.flow_key(&cross).unwrap_err();
        assert!(err.contains("not Replicable:"), "{err}");
        assert!(err.contains("cross-slot moves do not commute"), "{err}");

        // Packet-dependent overwrite: last-writer-wins. (The `q` write on
        // a second field keeps the exact tier from claiming the program.)
        let overwrite = vec![
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "q".into(),
                    index: Operand::Field("j".into()),
                },
                src: Operand::Const(1),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "r".into(),
                    index: Operand::Field("idx".into()),
                },
                src: Operand::Field("payload".into()),
            },
        ];
        let err = layout.flow_key(&overwrite).unwrap_err();
        assert!(err.contains("last-writer-wins"), "{err}");

        // Read-modify-write coupling across arrays: δ for `r` is read
        // from `q` at an unrelated index, so the sketches' evolutions
        // are entangled across any trace split.
        let coupled = vec![
            TacStmt::ReadState {
                dst: "qv".into(),
                state: StateRef::Array {
                    name: "q".into(),
                    index: Operand::Field("j".into()),
                },
            },
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Array {
                    name: "r".into(),
                    index: Operand::Field("idx".into()),
                },
            },
            TacStmt::Assign {
                dst: "bump".into(),
                rhs: TacRhs::Binary(
                    domino_ast::BinOp::Add,
                    Operand::Field("old".into()),
                    Operand::Field("qv".into()),
                ),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "r".into(),
                    index: Operand::Field("idx".into()),
                },
                src: Operand::Field("bump".into()),
            },
        ];
        let err = layout.flow_key(&coupled).unwrap_err();
        assert!(err.contains("depends on state `q`"), "{err}");

        // A constant store below the initializer: max-merge cannot
        // reproduce a downward write.
        let layout_hi = StateLayout::from_decls(&[StateVar {
            name: "r".into(),
            kind: StateKind::Array { size: 8 },
            init: 5,
        }]);
        let down = vec![TacStmt::WriteState {
            state: StateRef::Array {
                name: "r".into(),
                index: Operand::Const(0),
            },
            src: Operand::Const(1),
        }];
        let err = layout_hi.flow_key(&down).unwrap_err();
        assert!(err.contains("below its initializer"), "{err}");
    }

    #[test]
    fn flow_key_rejects_state_dependent_index() {
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let stmts = vec![
            TacStmt::ReadState {
                dst: "idx".into(),
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
                src: Operand::Const(1),
            },
        ];
        let err = layout.flow_key(&stmts).unwrap_err();
        assert!(err.contains("depends on state"), "{err}");
    }

    #[test]
    fn flow_key_rejects_state_access_before_key_definition() {
        // a[idx] is read while `idx` still holds its input value; the
        // assignment below would give the slice a different key.
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let stmts = vec![
            TacStmt::ReadState {
                dst: "old".into(),
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
            },
            TacStmt::Assign {
                dst: "idx".into(),
                rhs: TacRhs::Binary(
                    domino_ast::BinOp::Mod,
                    Operand::Field("sport".into()),
                    Operand::Const(8),
                ),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "a".into(),
                    index: Operand::Field("idx".into()),
                },
                src: Operand::Field("old".into()),
            },
        ];
        let err = layout.flow_key(&stmts).unwrap_err();
        assert!(err.contains("before that field is assigned"), "{err}");
    }

    #[test]
    fn flow_key_stateless_when_no_state_touched() {
        let layout = StateLayout::from_decls(&[arr_decl("a", 8)]);
        let part = layout
            .flow_key(&[TacStmt::Assign {
                dst: "x".into(),
                rhs: TacRhs::Copy(Operand::Const(1)),
            }])
            .unwrap();
        assert_eq!(part, Partitionability::Stateless);
    }

    #[test]
    fn mix64_spreads_consecutive_classes() {
        // Consecutive keys should not all collapse onto one shard.
        let shards: BTreeSet<usize> = (0..16u32)
            .map(|k| FlowKeySpec::shard_of_class(k, 4))
            .collect();
        assert!(shards.len() > 1, "{shards:?}");
    }

    #[test]
    fn flat_packet_equality_compares_layout_and_contents() {
        let table = table_abc();
        let p1 = FlatPacket::from_packet(&Packet::new().with("a", 1), &table);
        let p2 = FlatPacket::from_packet(&Packet::new().with("a", 1), &table);
        let p3 = FlatPacket::from_packet(&Packet::new().with("a", 2), &table);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        // Same content, different (but equal) table instances.
        let other = Arc::new((*table).clone());
        let p4 = FlatPacket::from_packet(&Packet::new().with("a", 1), &other);
        assert_eq!(p1, p4);
    }
}
