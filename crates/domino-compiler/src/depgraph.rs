//! Pipelining step 1+2 — dependency graph and SCC condensation (Figure 9,
//! §4.2).
//!
//! Nodes are TAC statements. Edges are:
//!
//! 1. a **pair of edges in both directions** between the read and the
//!    write of the same state variable — state must stay internal to one
//!    codelet/atom;
//! 2. **read-after-write** edges `(def → use)` for packet fields.
//!
//! Only RAW edges are needed because branch removal eliminated control
//! dependencies and SSA eliminated WAR/WAW dependencies. Condensing the
//! strongly connected components yields the DAG that critical-path
//! scheduling turns into a pipeline; every SCC becomes one codelet.

use domino_ir::TacStmt;
use std::collections::BTreeMap;

/// The statement-level dependency graph.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Adjacency: `succs[i]` = statements depending on statement `i`.
    pub succs: Vec<Vec<usize>>,
    /// Number of nodes (== number of statements).
    pub n: usize,
}

impl DepGraph {
    /// Builds the dependency graph for a TAC statement list.
    pub fn build(stmts: &[TacStmt]) -> DepGraph {
        let n = stmts.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add_edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>| {
            if from != to && !succs[from].contains(&to) {
                succs[from].push(to);
            }
        };

        // Read-after-write edges via the (unique, SSA) definition of each
        // field.
        let mut def: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, s) in stmts.iter().enumerate() {
            if let Some(f) = s.field_written() {
                def.insert(f, i);
            }
        }
        for (j, s) in stmts.iter().enumerate() {
            for f in s.fields_read() {
                if let Some(&i) = def.get(f) {
                    add_edge(i, j, &mut succs);
                }
            }
        }

        // Pairing edges between the read and write of each state variable.
        let mut reads: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut writes: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, s) in stmts.iter().enumerate() {
            if let Some(v) = s.state_read() {
                reads.entry(v).or_default().push(i);
            }
            if let Some(v) = s.state_written() {
                writes.entry(v).or_default().push(i);
            }
        }
        for (var, rs) in &reads {
            if let Some(ws) = writes.get(var) {
                for &r in rs {
                    for &w in ws {
                        add_edge(r, w, &mut succs);
                        add_edge(w, r, &mut succs);
                    }
                }
            }
        }

        DepGraph { succs, n }
    }

    /// Tarjan's algorithm: strongly connected components in reverse
    /// topological order (callees first); we re-sort by minimum statement
    /// index for determinism.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let mut state = TarjanState {
            graph: self,
            index: vec![usize::MAX; self.n],
            low: vec![0; self.n],
            on_stack: vec![false; self.n],
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
        };
        for v in 0..self.n {
            if state.index[v] == usize::MAX {
                state.strongconnect(v);
            }
        }
        let mut components = state.components;
        for c in &mut components {
            c.sort_unstable();
        }
        components.sort_by_key(|c| c[0]);
        components
    }

    /// Condenses the graph into a DAG over SCCs.
    ///
    /// Returns `(scc_of_statement, dag_successors)` where SCC ids index
    /// into the vector returned by [`DepGraph::sccs`].
    pub fn condense(&self, sccs: &[Vec<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
        let mut scc_of = vec![0usize; self.n];
        for (id, comp) in sccs.iter().enumerate() {
            for &v in comp {
                scc_of[v] = id;
            }
        }
        let mut dag: Vec<Vec<usize>> = vec![Vec::new(); sccs.len()];
        for v in 0..self.n {
            for &w in &self.succs[v] {
                let (a, b) = (scc_of[v], scc_of[w]);
                if a != b && !dag[a].contains(&b) {
                    dag[a].push(b);
                }
            }
        }
        (scc_of, dag)
    }

    /// Renders the statement-level graph in Graphviz DOT format (Figure 9a
    /// view), marking state reads/writes.
    pub fn to_dot(&self, stmts: &[TacStmt]) -> String {
        let mut out = String::from("digraph deps {\n  rankdir=TB;\n  node [shape=box];\n");
        for (i, s) in stmts.iter().enumerate() {
            let shape = if s.state_read().is_some() || s.state_written().is_some() {
                ", style=filled, fillcolor=lightgrey"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{i} [label=\"{}\"{shape}];\n",
                escape(&s.to_string())
            ));
        }
        for (v, ws) in self.succs.iter().enumerate() {
            for w in ws {
                out.push_str(&format!("  n{v} -> n{w};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct TarjanState<'a> {
    graph: &'a DepGraph,
    index: Vec<usize>,
    low: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    components: Vec<Vec<usize>>,
}

impl TarjanState<'_> {
    fn strongconnect(&mut self, v: usize) {
        // Iterative Tarjan (explicit work stack) so deep dependency chains
        // cannot overflow the call stack.
        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        let mut work = vec![Frame::Enter(v)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    self.index[v] = self.next_index;
                    self.low[v] = self.next_index;
                    self.next_index += 1;
                    self.stack.push(v);
                    self.on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let mut descended = false;
                    while i < self.graph.succs[v].len() {
                        let w = self.graph.succs[v][i];
                        i += 1;
                        if self.index[w] == usize::MAX {
                            work.push(Frame::Resume(v, i));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if self.on_stack[w] {
                            self.low[v] = self.low[v].min(self.index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if self.low[v] == self.index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = self.stack.pop().expect("tarjan stack");
                            self.on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        self.components.push(comp);
                    }
                    // Propagate lowlink to parent (if any).
                    if let Some(Frame::Resume(p, _)) = work.last() {
                        let p = *p;
                        self.low[p] = self.low[p].min(self.low[v]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ast::BinOp;
    use domino_ir::{Operand, StateRef, TacRhs};

    fn fld(n: &str) -> Operand {
        Operand::Field(n.into())
    }

    /// The flowlet TAC of Figure 8 (post cleanup).
    fn flowlet_tac() -> Vec<TacStmt> {
        vec![
            /* 0 */
            TacStmt::Assign {
                dst: "id0".into(),
                rhs: TacRhs::Intrinsic {
                    name: "hash2".into(),
                    args: vec![fld("sport"), fld("dport")],
                    modulo: Some(8000),
                },
            },
            /* 1 */
            TacStmt::ReadState {
                dst: "saved_hop0".into(),
                state: StateRef::Array {
                    name: "saved_hop".into(),
                    index: fld("id0"),
                },
            },
            /* 2 */
            TacStmt::ReadState {
                dst: "last_time0".into(),
                state: StateRef::Array {
                    name: "last_time".into(),
                    index: fld("id0"),
                },
            },
            /* 3 */
            TacStmt::Assign {
                dst: "new_hop0".into(),
                rhs: TacRhs::Intrinsic {
                    name: "hash3".into(),
                    args: vec![fld("sport"), fld("dport"), fld("arrival")],
                    modulo: Some(10),
                },
            },
            /* 4 */
            TacStmt::Assign {
                dst: "tmp".into(),
                rhs: TacRhs::Binary(BinOp::Sub, fld("arrival"), fld("last_time0")),
            },
            /* 5 */
            TacStmt::Assign {
                dst: "tmp2".into(),
                rhs: TacRhs::Binary(BinOp::Gt, fld("tmp"), Operand::Const(5)),
            },
            /* 6 */
            TacStmt::Assign {
                dst: "next_hop0".into(),
                rhs: TacRhs::Ternary(fld("tmp2"), fld("new_hop0"), fld("saved_hop1")),
            },
            /* 7 */
            TacStmt::Assign {
                dst: "saved_hop1".into(),
                rhs: TacRhs::Ternary(fld("tmp2"), fld("new_hop0"), fld("saved_hop0")),
            },
            /* 8 */
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "saved_hop".into(),
                    index: fld("id0"),
                },
                src: fld("saved_hop1"),
            },
            /* 9 */
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "last_time".into(),
                    index: fld("id0"),
                },
                src: fld("arrival"),
            },
        ]
    }

    #[test]
    fn raw_edges_follow_defs() {
        let tac = flowlet_tac();
        let g = DepGraph::build(&tac);
        // id0 (0) feeds both read flanks and both write flanks.
        assert!(g.succs[0].contains(&1));
        assert!(g.succs[0].contains(&2));
        assert!(g.succs[0].contains(&8));
        assert!(g.succs[0].contains(&9));
        // tmp (4) feeds tmp2 (5); tmp2 feeds 6 and 7.
        assert!(g.succs[4].contains(&5));
        assert!(g.succs[5].contains(&6));
        assert!(g.succs[5].contains(&7));
    }

    #[test]
    fn pairing_edges_are_bidirectional() {
        let tac = flowlet_tac();
        let g = DepGraph::build(&tac);
        // saved_hop read (1) ↔ write (8).
        assert!(g.succs[1].contains(&8));
        assert!(g.succs[8].contains(&1));
        // last_time read (2) ↔ write (9).
        assert!(g.succs[2].contains(&9));
        assert!(g.succs[9].contains(&2));
    }

    #[test]
    fn sccs_match_figure9b() {
        let tac = flowlet_tac();
        let g = DepGraph::build(&tac);
        let sccs = g.sccs();
        // Expected components:
        //   {1,7,8} saved_hop codelet (read + ternary + write),
        //   {2,9}   last_time codelet,
        //   singletons: 0, 3, 4, 5, 6.
        assert_eq!(sccs.len(), 7);
        assert!(sccs.contains(&vec![1, 7, 8]), "{sccs:?}");
        assert!(sccs.contains(&vec![2, 9]), "{sccs:?}");
        assert!(sccs.contains(&vec![0]));
        assert!(sccs.contains(&vec![6]));
    }

    #[test]
    fn condensed_graph_is_acyclic() {
        let tac = flowlet_tac();
        let g = DepGraph::build(&tac);
        let sccs = g.sccs();
        let (_, dag) = g.condense(&sccs);
        // Kahn's algorithm must consume every node.
        let n = dag.len();
        let mut indeg = vec![0usize; n];
        for vs in &dag {
            for &w in vs {
                indeg[w] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &w in &dag[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        assert_eq!(seen, n, "condensation left a cycle");
    }

    #[test]
    fn independent_statements_have_no_edges() {
        let tac = vec![
            TacStmt::Assign {
                dst: "a".into(),
                rhs: TacRhs::Copy(fld("x")),
            },
            TacStmt::Assign {
                dst: "b".into(),
                rhs: TacRhs::Copy(fld("y")),
            },
        ];
        let g = DepGraph::build(&tac);
        assert!(g.succs[0].is_empty());
        assert!(g.succs[1].is_empty());
        assert_eq!(g.sccs().len(), 2);
    }

    #[test]
    fn dot_output_marks_stateful_nodes() {
        let tac = flowlet_tac();
        let g = DepGraph::build(&tac);
        let dot = g.to_dot(&tac);
        assert!(dot.contains("digraph deps"), "{dot}");
        assert!(dot.contains("lightgrey"), "{dot}");
        assert!(dot.contains("n1 -> n8"), "{dot}");
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        // 20k-statement dependency chain — iterative Tarjan must cope.
        let mut tac = vec![TacStmt::Assign {
            dst: "f0".into(),
            rhs: TacRhs::Copy(fld("in")),
        }];
        for i in 1..20_000 {
            tac.push(TacStmt::Assign {
                dst: format!("f{i}"),
                rhs: TacRhs::Binary(BinOp::Add, fld(&format!("f{}", i - 1)), Operand::Const(1)),
            });
        }
        let g = DepGraph::build(&tac);
        assert_eq!(g.sccs().len(), 20_000);
    }
}
