//! Programmable packet scheduling: PIFO (push-in-first-out) queues whose
//! ranks are computed by packet transactions.
//!
//! The paper's switch model stops at a drop-tail FIFO; the same authors'
//! *Programmable Packet Scheduling at Line Rate* shows that a single
//! primitive — a priority queue that admits packets at an arbitrary rank
//! and releases them in rank order — expresses WFQ, strict priority,
//! token-bucket shaping, and hierarchies thereof, with the rank itself
//! computed by an ordinary Domino program (STFQ's virtual start time,
//! CoDel's deadline). This module provides that primitive:
//!
//! * [`Scheduler`] — the queue discipline contract the switch drives; the
//!   drop-tail FIFO the switch always had is the [`Fifo`] implementation,
//! * [`Pifo`] — the binary-heap PIFO block: pop in ascending
//!   [`SchedKey`] order with a **stable FIFO tie-break on arrival
//!   order**, bounded capacity,
//! * [`HierPifo`] — hierarchical composition (PIFO-of-PIFOs): a root PIFO
//!   of class tokens ranked by class picks *which* leaf transmits next,
//!   and that class's leaf PIFO picks *what* — strict priority across
//!   classes over rank order (e.g. per-class WFQ) within each,
//! * [`SchedSpec`] — the switch-facing policy: which packet fields feed
//!   the key, which queue shape to build, and which
//!   [`DropReason`](crate::switch::DropReason) a rejected packet counts
//!   under ([`DropReason::SchedFull`](crate::switch::DropReason) for every
//!   rank scheduler; the FIFO keeps its historical
//!   [`DropReason::QueueFull`](crate::switch::DropReason)).
//!
//! The contracts here are pinned by `tests/scheduling.rs` (golden
//! invariants: WFQ fairness, strict-priority exactness, shaping departure
//! times) and `tests/proptest_scheduling.rs` (pop order equals a
//! stable-sort oracle across random rank streams × capacities × tie
//! patterns).

use domino_ir::Packet;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// The scheduling key of one packet: `(class, rank)`, compared
/// lexicographically — class is the outer (strict-priority) level, rank
/// the inner one. Flat policies leave `class` at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchedKey {
    /// Outer strict-priority level (lower departs first).
    pub class: i64,
    /// Inner rank (lower departs first within a class). Under a shaping
    /// policy this is an earliest-departure cycle rather than a priority.
    pub rank: i64,
}

impl SchedKey {
    /// A flat (class 0) key.
    pub fn rank(rank: i64) -> SchedKey {
        SchedKey { class: 0, rank }
    }
}

/// A queue discipline the switch can drive: push with a [`SchedKey`],
/// pop whatever the discipline says departs next.
///
/// Implementations are bounded: `push` hands the item back instead of
/// growing past [`Scheduler::capacity`], and the caller decides which
/// drop counter the rejection bumps.
pub trait Scheduler<T> {
    /// Admits an item under a key, or returns it if the queue is full.
    #[allow(clippy::result_large_err)] // Err is the caller's own item, returned by design.
    fn push(&mut self, key: SchedKey, item: T) -> Result<(), T>;

    /// Removes and returns the next item to depart, with its key.
    fn pop(&mut self) -> Option<(SchedKey, T)>;

    /// The key [`Scheduler::pop`] would return next, without removing it.
    fn peek_key(&self) -> Option<SchedKey>;

    /// Current occupancy.
    fn len(&self) -> usize;

    /// Maximum occupancy.
    fn capacity(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The drop-tail FIFO the switch always had, as a [`Scheduler`]: keys are
/// recorded but ignored for ordering — departure order is arrival order.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<(SchedKey, T)>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// An empty FIFO bounded at `capacity` items.
    pub fn bounded(capacity: usize) -> Fifo<T> {
        Fifo {
            items: VecDeque::new(),
            capacity,
        }
    }
}

impl<T> Scheduler<T> for Fifo<T> {
    fn push(&mut self, key: SchedKey, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(item);
        }
        self.items.push_back((key, item));
        Ok(())
    }

    fn pop(&mut self) -> Option<(SchedKey, T)> {
        self.items.pop_front()
    }

    fn peek_key(&self) -> Option<SchedKey> {
        self.items.front().map(|(k, _)| *k)
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One heap entry: the key plus a monotone arrival sequence number that
/// breaks rank ties FIFO — two packets with equal keys depart in arrival
/// order, which is what makes PIFO order a *stable* sort of the pushes.
#[derive(Debug, Clone)]
struct Entry<T> {
    key: SchedKey,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Entry<T>) -> std::cmp::Ordering {
        (self.key, self.seq).cmp(&(other.key, other.seq))
    }
}

/// A push-in-first-out queue: admits at any [`SchedKey`], pops in
/// ascending key order, ties broken by arrival order (stable).
///
/// ```
/// use banzai::pifo::{Pifo, SchedKey, Scheduler};
///
/// let mut q: Pifo<&str> = Pifo::bounded(8);
/// q.push(SchedKey::rank(30), "c").unwrap();
/// q.push(SchedKey::rank(10), "a").unwrap();
/// q.push(SchedKey::rank(10), "b").unwrap(); // same rank, arrives later
/// assert_eq!(q.pop().unwrap().1, "a"); // lowest rank first
/// assert_eq!(q.pop().unwrap().1, "b"); // FIFO within a rank
/// assert_eq!(q.pop().unwrap().1, "c");
/// ```
#[derive(Debug, Clone)]
pub struct Pifo<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    capacity: usize,
    next_seq: u64,
}

impl<T> Pifo<T> {
    /// An empty PIFO bounded at `capacity` items.
    pub fn bounded(capacity: usize) -> Pifo<T> {
        Pifo {
            heap: BinaryHeap::new(),
            capacity,
            next_seq: 0,
        }
    }

    /// An empty PIFO with no occupancy bound (`usize::MAX`).
    pub fn unbounded() -> Pifo<T> {
        Pifo::bounded(usize::MAX)
    }
}

impl<T> Scheduler<T> for Pifo<T> {
    fn push(&mut self, key: SchedKey, item: T) -> Result<(), T> {
        if self.heap.len() >= self.capacity {
            return Err(item);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { key, seq, item }));
        Ok(())
    }

    fn pop(&mut self) -> Option<(SchedKey, T)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.item))
    }

    fn peek_key(&self) -> Option<SchedKey> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Hierarchical PIFO-of-PIFOs: a root PIFO of **class tokens** (one per
/// enqueued item, ranked by class) decides which class transmits next;
/// that class's **leaf PIFO** (ranked by the item's rank) decides which
/// item. The net order is strict priority across classes, rank order —
/// e.g. per-class WFQ — within each, exactly what a flat PIFO over the
/// composite `(class, rank)` key yields; the two are differentially
/// tested against each other, and the hierarchy is the shape hardware
/// composes (the root picks a leaf *without* inspecting leaf occupants).
///
/// ```
/// use banzai::pifo::{HierPifo, Pifo, SchedKey, Scheduler};
///
/// let mut q: HierPifo<u32> = HierPifo::bounded(16);
/// q.push(SchedKey { class: 1, rank: 5 }, 15).unwrap();
/// q.push(SchedKey { class: 0, rank: 9 }, 9).unwrap();
/// q.push(SchedKey { class: 0, rank: 7 }, 7).unwrap();
/// // Class 0 drains first (in rank order), then class 1.
/// let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
/// assert_eq!(order, [7, 9, 15]);
/// ```
#[derive(Debug, Clone)]
pub struct HierPifo<T> {
    /// One token per enqueued item, keyed `(class, class)` so the root's
    /// order is pure strict priority.
    root: Pifo<()>,
    /// Per-class leaf PIFOs, keyed `(0, rank)`.
    leaves: BTreeMap<i64, Pifo<T>>,
    /// Total-occupancy bound across every leaf.
    capacity: usize,
    len: usize,
}

impl<T> HierPifo<T> {
    /// An empty hierarchy bounded at `capacity` total items.
    pub fn bounded(capacity: usize) -> HierPifo<T> {
        HierPifo {
            root: Pifo::unbounded(),
            leaves: BTreeMap::new(),
            capacity,
            len: 0,
        }
    }
}

impl<T> Scheduler<T> for HierPifo<T> {
    fn push(&mut self, key: SchedKey, item: T) -> Result<(), T> {
        if self.len >= self.capacity {
            return Err(item);
        }
        let leaf = self.leaves.entry(key.class).or_insert_with(Pifo::unbounded);
        leaf.push(SchedKey::rank(key.rank), item)
            .unwrap_or_else(|_| unreachable!("leaf PIFOs are unbounded"));
        self.root
            .push(
                SchedKey {
                    class: key.class,
                    rank: key.class,
                },
                (),
            )
            .unwrap_or_else(|()| unreachable!("root PIFO is unbounded"));
        self.len += 1;
        Ok(())
    }

    fn pop(&mut self) -> Option<(SchedKey, T)> {
        let (token, ()) = self.root.pop()?;
        let leaf = self
            .leaves
            .get_mut(&token.class)
            .expect("root token for an empty class");
        let (leaf_key, item) = leaf.pop().expect("leaf empty despite root token");
        self.len -= 1;
        Some((
            SchedKey {
                class: token.class,
                rank: leaf_key.rank,
            },
            item,
        ))
    }

    fn peek_key(&self) -> Option<SchedKey> {
        let token = self.root.peek_key()?;
        let leaf = self.leaves.get(&token.class)?;
        Some(SchedKey {
            class: token.class,
            rank: leaf.peek_key()?.rank,
        })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The switch's queue, dispatching over the discipline the
/// [`SchedSpec`] selected. (An enum, not a `Box<dyn Scheduler>`: the
/// switch derives `Clone`, and the FIFO arm keeps the historical
/// drop-tail path monomorphic.)
#[derive(Debug, Clone)]
pub enum SchedQueue<T> {
    /// Drop-tail FIFO (the default — bit-identical to the pre-PIFO switch).
    Fifo(Fifo<T>),
    /// Flat binary-heap PIFO.
    Pifo(Pifo<T>),
    /// Hierarchical PIFO-of-PIFOs.
    Hier(HierPifo<T>),
}

impl<T> Scheduler<T> for SchedQueue<T> {
    fn push(&mut self, key: SchedKey, item: T) -> Result<(), T> {
        match self {
            SchedQueue::Fifo(q) => q.push(key, item),
            SchedQueue::Pifo(q) => q.push(key, item),
            SchedQueue::Hier(q) => q.push(key, item),
        }
    }

    fn pop(&mut self) -> Option<(SchedKey, T)> {
        match self {
            SchedQueue::Fifo(q) => q.pop(),
            SchedQueue::Pifo(q) => q.pop(),
            SchedQueue::Hier(q) => q.pop(),
        }
    }

    fn peek_key(&self) -> Option<SchedKey> {
        match self {
            SchedQueue::Fifo(q) => q.peek_key(),
            SchedQueue::Pifo(q) => q.peek_key(),
            SchedQueue::Hier(q) => q.peek_key(),
        }
    }

    fn len(&self) -> usize {
        match self {
            SchedQueue::Fifo(q) => q.len(),
            SchedQueue::Pifo(q) => q.len(),
            SchedQueue::Hier(q) => q.len(),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            SchedQueue::Fifo(q) => q.capacity(),
            SchedQueue::Pifo(q) => q.capacity(),
            SchedQueue::Hier(q) => q.capacity(),
        }
    }
}

/// The scheduling policy a switch runs: which discipline, and which packet
/// fields — written by the ingress pipeline, i.e. by the rank *program* —
/// feed the [`SchedKey`]. The fields are read after ingress, so STFQ's
/// `start`, CoDel's deadline, or a shaper's send time program the
/// scheduler end-to-end.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SchedSpec {
    /// Drop-tail FIFO (the historical switch; keys ignored).
    #[default]
    Fifo,
    /// Flat PIFO ranked by the named field — WFQ when the field is an
    /// STFQ virtual start time.
    Pifo {
        /// Packet field supplying the rank.
        rank: String,
    },
    /// Flat PIFO ranked by the named field, with pops **gated**: a packet
    /// does not depart before the cycle its rank names (rank =
    /// earliest-departure cycle). Token-bucket / pacing shapers.
    Shaping {
        /// Packet field supplying the earliest-departure cycle.
        rank: String,
    },
    /// Hierarchical: strict priority by the class field, rank order (per
    /// the rank field) within each class.
    Priority {
        /// Packet field supplying the strict-priority class.
        class: String,
        /// Packet field supplying the within-class rank.
        rank: String,
    },
}

impl SchedSpec {
    /// Reads this policy's [`SchedKey`] off an (ingress-processed) packet.
    /// Missing fields read as 0, matching the engines' semantics.
    pub fn key_of(&self, pkt: &Packet) -> SchedKey {
        match self {
            SchedSpec::Fifo => SchedKey::rank(0),
            SchedSpec::Pifo { rank } | SchedSpec::Shaping { rank } => {
                SchedKey::rank(pkt.get_or_zero(rank) as i64)
            }
            SchedSpec::Priority { class, rank } => SchedKey {
                class: pkt.get_or_zero(class) as i64,
                rank: pkt.get_or_zero(rank) as i64,
            },
        }
    }

    /// Builds the queue this policy runs, bounded at `capacity`.
    pub fn build_queue<T>(&self, capacity: usize) -> SchedQueue<T> {
        match self {
            SchedSpec::Fifo => SchedQueue::Fifo(Fifo::bounded(capacity)),
            SchedSpec::Pifo { .. } | SchedSpec::Shaping { .. } => {
                SchedQueue::Pifo(Pifo::bounded(capacity))
            }
            SchedSpec::Priority { .. } => SchedQueue::Hier(HierPifo::bounded(capacity)),
        }
    }

    /// The drop reason a packet rejected by a full queue counts under:
    /// the FIFO keeps its historical
    /// [`DropReason::QueueFull`](crate::switch::DropReason); every rank
    /// scheduler drops under
    /// [`DropReason::SchedFull`](crate::switch::DropReason), so congestion
    /// on a programmed scheduler is distinguishable in the counters.
    pub fn full_drop_reason(&self) -> crate::switch::DropReason {
        match self {
            SchedSpec::Fifo => crate::switch::DropReason::QueueFull,
            _ => crate::switch::DropReason::SchedFull,
        }
    }

    /// Whether pops are gated on the rank as an earliest-departure cycle.
    pub fn is_shaping(&self) -> bool {
        matches!(self, SchedSpec::Shaping { .. })
    }

    /// Whether this is the default FIFO policy.
    pub fn is_fifo(&self) -> bool {
        matches!(self, SchedSpec::Fifo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pops everything, asserting `peek_key` agrees with each pop.
    fn drain<T, S: Scheduler<T>>(q: &mut S) -> Vec<(SchedKey, T)> {
        let mut out = Vec::new();
        while let Some(peeked) = q.peek_key() {
            let (key, item) = q.pop().expect("peek said non-empty");
            assert_eq!(key, peeked);
            out.push((key, item));
        }
        assert!(q.is_empty());
        out
    }

    #[test]
    fn fifo_ignores_keys_and_bounds_occupancy() {
        let mut q: Fifo<u32> = Fifo::bounded(3);
        for (i, rank) in [50i64, 10, 30].iter().enumerate() {
            q.push(SchedKey::rank(*rank), i as u32).unwrap();
        }
        assert_eq!(q.push(SchedKey::rank(0), 99), Err(99));
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, [0, 1, 2], "FIFO departs in arrival order");
    }

    #[test]
    fn pifo_pops_in_rank_order_with_stable_ties() {
        let mut q: Pifo<usize> = Pifo::bounded(64);
        let ranks = [5i64, 3, 5, 1, 3, 3, 9, 1];
        for (i, r) in ranks.iter().enumerate() {
            q.push(SchedKey::rank(*r), i).unwrap();
        }
        // Oracle: stable sort of (rank, arrival).
        let mut expect: Vec<(i64, usize)> = ranks.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(r, i)| (r, i));
        let got: Vec<(i64, usize)> = drain(&mut q)
            .into_iter()
            .map(|(k, v)| (k.rank, v))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pifo_rejects_when_full_without_displacing() {
        let mut q: Pifo<&str> = Pifo::bounded(2);
        q.push(SchedKey::rank(10), "a").unwrap();
        q.push(SchedKey::rank(20), "b").unwrap();
        // Even a better-ranked packet is rejected: drop-tail admission,
        // like the hardware PIFO block's bounded SRAM.
        assert_eq!(q.push(SchedKey::rank(1), "urgent"), Err("urgent"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn hierarchy_matches_flat_composite_key_pifo() {
        let keys = [(2i64, 7i64), (0, 9), (1, 1), (0, 2), (2, 7), (1, 1), (0, 9)];
        let mut hier: HierPifo<usize> = HierPifo::bounded(64);
        let mut flat: Pifo<usize> = Pifo::bounded(64);
        for (i, &(class, rank)) in keys.iter().enumerate() {
            hier.push(SchedKey { class, rank }, i).unwrap();
            flat.push(SchedKey { class, rank }, i).unwrap();
        }
        assert_eq!(drain(&mut hier), drain(&mut flat));
    }

    #[test]
    fn hierarchy_interleaved_push_pop_still_pops_global_min() {
        let mut q: HierPifo<&str> = HierPifo::bounded(16);
        q.push(SchedKey { class: 1, rank: 0 }, "low-a").unwrap();
        q.push(SchedKey { class: 0, rank: 5 }, "hi-a").unwrap();
        assert_eq!(q.pop().unwrap().1, "hi-a");
        // A high-class packet arriving *after* pops began still preempts.
        q.push(SchedKey { class: 0, rank: 9 }, "hi-b").unwrap();
        assert_eq!(q.pop().unwrap().1, "hi-b");
        assert_eq!(q.pop().unwrap().1, "low-a");
        assert!(q.pop().is_none());
    }

    #[test]
    fn hierarchy_capacity_is_total_across_leaves() {
        let mut q: HierPifo<u32> = HierPifo::bounded(2);
        q.push(SchedKey { class: 0, rank: 0 }, 0).unwrap();
        q.push(SchedKey { class: 5, rank: 0 }, 1).unwrap();
        assert_eq!(q.push(SchedKey { class: 9, rank: 0 }, 2), Err(2));
    }

    #[test]
    fn spec_reads_keys_and_picks_drop_reason() {
        use crate::switch::DropReason;

        let pkt = Packet::new().with("start", 42).with("class", 3);
        assert_eq!(SchedSpec::Fifo.key_of(&pkt), SchedKey::rank(0));
        let wfq = SchedSpec::Pifo {
            rank: "start".into(),
        };
        assert_eq!(wfq.key_of(&pkt), SchedKey::rank(42));
        assert_eq!(wfq.full_drop_reason(), DropReason::SchedFull);
        let prio = SchedSpec::Priority {
            class: "class".into(),
            rank: "start".into(),
        };
        assert_eq!(prio.key_of(&pkt), SchedKey { class: 3, rank: 42 });
        let missing = SchedSpec::Pifo {
            rank: "absent".into(),
        };
        assert_eq!(missing.key_of(&pkt), SchedKey::rank(0));
        assert_eq!(SchedSpec::Fifo.full_drop_reason(), DropReason::QueueFull);
        assert!(SchedSpec::Shaping { rank: "dl".into() }.is_shaping());
    }
}
