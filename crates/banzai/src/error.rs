//! Typed errors and fault reports for the execution stack.
//!
//! The paper's contract is that a packet transaction either executes
//! atomically or is cleanly rejected — nothing in between. This module
//! extends that discipline from the per-packet level to the *runtime*
//! level: a switch that loses a worker must fail **partially** and report
//! **faithfully**, instead of taking the whole process down with an
//! `expect`. Three layers:
//!
//! * [`SwitchError`] — the one error type every fallible public entry
//!   point of [`Switch`](crate::switch::Switch) and
//!   [`ShardedSwitch`](crate::shard::ShardedSwitch) returns;
//! * [`ShardError`] / [`FaultCause`] — which shard failed, on which
//!   packet, and why (panic payload, watchdog stall, or a silent
//!   disconnect);
//! * [`FaultReport`] — everything salvageable from a faulted sharded run:
//!   per-shard output prefixes and state snapshots
//!   ([`ShardSalvage`]), plus exact packet-conservation
//!   [`Accounting`] (`offered == transmitted + dropped + lost_in_fault`).
//!
//! The report is deliberately *rich*: fabric-scale composition (ROADMAP)
//! needs a failing switch to hand its supervisor enough state to reroute
//! or restart, the same way the static checks of "Comprehensive
//! Verification of Packet Processing" hand the operator a counterexample
//! rather than a crash.

use crate::stream::SourceError;
use crate::switch::DropCounters;
use domino_ir::{Packet, StateStore};
use std::fmt;

/// Why a shard worker failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCause {
    /// The worker's engine panicked; the payload is rendered to a string
    /// (non-string payloads become `"<non-string panic payload>"`).
    Panic(String),
    /// The worker made no observable progress within the watchdog window
    /// (its ring stayed full, or it never reported an outcome). The
    /// thread is abandoned, not joined — a hung worker must never hang
    /// the caller.
    Stall {
        /// The watchdog window that expired, in milliseconds.
        watchdog_ms: u64,
    },
    /// The worker's channels disconnected without an outcome report —
    /// the thread died without panicking through the supervised path.
    Disconnected,
    /// The worker's engine returned a typed error mid-run (rendered to a
    /// string) rather than panicking.
    Error(String),
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::Panic(payload) => write!(f, "panicked: {payload}"),
            FaultCause::Stall { watchdog_ms } => {
                write!(f, "stalled (no progress within {watchdog_ms}ms watchdog)")
            }
            FaultCause::Disconnected => write!(f, "disconnected without an outcome report"),
            FaultCause::Error(msg) => write!(f, "failed: {msg}"),
        }
    }
}

/// One shard's failure: which shard, which packet, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// The failed shard's index.
    pub shard: usize,
    /// Global input index (the arrival stamp) of the packet being
    /// processed when the fault hit, when it could be determined. A
    /// stalled worker reports `None` — it never said where it stopped.
    pub packet: Option<u64>,
    /// What happened.
    pub cause: FaultCause,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} ", self.shard)?;
        match self.packet {
            Some(i) => write!(f, "{} at packet {i}", self.cause),
            None => write!(f, "{}", self.cause),
        }
    }
}

/// What was recovered from one shard after a faulted run.
///
/// For a **surviving** shard this is everything: its complete output
/// subsequence, its drop counters, and its state snapshot — bit-identical
/// to what a serial switch would hold for that shard's flows. For a
/// **failed** shard it is the exact prefix that completed before the
/// fault: outputs of fully processed batches, counters up to the fault,
/// and no state (a panic mid-transaction can leave engine state half
/// written, so a faulted shard's state is never reported as authoritative).
#[derive(Debug, Clone)]
pub struct ShardSalvage {
    /// The shard this snapshot came from.
    pub shard: usize,
    /// Whether this shard failed (see the matching
    /// [`FaultReport::failures`] entry for the cause).
    pub failed: bool,
    /// Packets steered to this shard (whether or not they reached it).
    pub offered: u64,
    /// The outputs this shard produced: complete for survivors, the
    /// completed-batch prefix for failed shards.
    pub output: Vec<Packet>,
    /// Per-reason drops attributed to this shard, feeder-side
    /// backpressure sheds included. A stalled shard reports only its
    /// feeder-side sheds — its internal counters were unreachable.
    pub drops: DropCounters,
    /// `(ingress, egress)` state snapshot — `Some` only for survivors.
    pub state: Option<(StateStore, StateStore)>,
}

impl ShardSalvage {
    /// Packets offered to this shard that are neither in [`output`] nor
    /// counted in [`drops`] — lost to the fault (in-flight in the ring,
    /// mid-batch at the panic, or steered after the worker died).
    ///
    /// [`output`]: ShardSalvage::output
    /// [`drops`]: ShardSalvage::drops
    pub fn lost(&self) -> u64 {
        self.offered
            .saturating_sub(self.output.len() as u64)
            .saturating_sub(self.drops.total())
    }
}

/// Exact packet-conservation accounting for one (possibly faulted) run.
///
/// Every offered packet is in exactly one bucket; [`Accounting::conserved`]
/// checks the books balance. A fault-free run always has
/// `lost_in_fault == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accounting {
    /// Packets offered to the switch (the input trace length).
    pub offered: u64,
    /// Packets whose outputs were delivered back to the caller (merged
    /// survivor streams plus failed shards' salvaged prefixes).
    pub transmitted: u64,
    /// Packets dropped under a counted [`DropReason`]
    /// (queue-full, parse, backpressure shed).
    ///
    /// [`DropReason`]: crate::switch::DropReason
    pub dropped: u64,
    /// Packets unaccounted for because a worker faulted.
    pub lost_in_fault: u64,
}

impl Accounting {
    /// `offered == transmitted + dropped + lost_in_fault`.
    pub fn conserved(&self) -> bool {
        self.offered == self.transmitted + self.dropped + self.lost_in_fault
    }
}

impl fmt::Display for Accounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offered {} = transmitted {} + dropped {} + lost_in_fault {}",
            self.offered, self.transmitted, self.dropped, self.lost_in_fault
        )
    }
}

/// An ingestion failure that ended a run early: the
/// [`PacketSource`](crate::stream::PacketSource) (or
/// [`FrameSource`](crate::stream::FrameSource)) errored mid-stream.
///
/// Everything pulled before the failure was processed and accounted
/// normally — the switch drains its queues and closes the books
/// (`lost_in_fault == 0` when no worker also faulted), so a torn
/// capture file degrades into an exact partial run, not a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFault {
    /// Items the source yielded successfully before failing — equal to
    /// the report's [`Accounting::offered`] when the source was the only
    /// fault.
    pub at: u64,
    /// The ingestion error itself.
    pub error: SourceError,
}

impl fmt::Display for SourceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "source failed after {} packet(s): {}",
            self.at, self.error
        )
    }
}

/// The structured report a faulted run returns instead of crashing: who
/// failed and why, everything salvaged, and where every single offered
/// packet went.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Every failed shard's error, in shard order (empty only when the
    /// fault was the source's — see [`FaultReport::source`]).
    pub failures: Vec<ShardError>,
    /// The ingestion failure that cut the run short, if the source (not
    /// a worker) was what faulted.
    pub source: Option<SourceFault>,
    /// Per-shard salvage, in shard order — one entry per shard,
    /// surviving shards included.
    pub salvage: Vec<ShardSalvage>,
    /// The deterministic seeded round-robin merge of the **surviving**
    /// shards' complete output streams (failed shards' partial prefixes
    /// stay in [`FaultReport::salvage`], where their incompleteness is
    /// explicit).
    pub merged: Vec<Packet>,
    /// The books: every offered packet is transmitted, dropped, or
    /// attributed to the fault.
    pub accounting: Accounting,
}

impl FaultReport {
    /// The salvage entry for one shard.
    pub fn shard(&self, shard: usize) -> Option<&ShardSalvage> {
        self.salvage.iter().find(|s| s.shard == shard)
    }

    /// Indices of the shards that survived and drained cleanly.
    pub fn survivors(&self) -> Vec<usize> {
        self.salvage
            .iter()
            .filter(|s| !s.failed)
            .map(|s| s.shard)
            .collect()
    }
}

/// The typed error for every fallible switch-stack entry point.
///
/// Construction failures, unsupported configurations, and runtime worker
/// faults all land here, so callers can match on *what went wrong*
/// instead of parsing strings — and a worker fault carries the full
/// [`FaultReport`] rather than discarding the run.
#[derive(Debug, Clone)]
pub enum SwitchError {
    /// An engine or plan could not be built (lowering failure, bad
    /// layout). The string is the builder's diagnostic.
    Build(String),
    /// The requested operation is not supported in this configuration
    /// (e.g. stamped execution on an oversubscribed link).
    Unsupported(String),
    /// The steering mode defines no state partition, so a merged state
    /// snapshot cannot be reconstructed.
    StatePartition(String),
    /// One or more shard workers faulted during a run; the report holds
    /// everything salvaged. Boxed: the report carries packet vectors.
    Fault(Box<FaultReport>),
}

impl SwitchError {
    /// Shorthand used by engine builders.
    pub(crate) fn build(msg: impl Into<String>) -> SwitchError {
        SwitchError::Build(msg.into())
    }

    /// The fault report, when this error is a worker fault.
    pub fn fault(&self) -> Option<&FaultReport> {
        match self {
            SwitchError::Fault(report) => Some(report),
            _ => None,
        }
    }
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::Build(msg) => write!(f, "cannot build switch: {msg}"),
            SwitchError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
            SwitchError::StatePartition(msg) => write!(f, "no state partition: {msg}"),
            SwitchError::Fault(report) => {
                if !report.failures.is_empty() {
                    let failures: Vec<String> =
                        report.failures.iter().map(ShardError::to_string).collect();
                    write!(
                        f,
                        "{} of {} shard worker(s) faulted [{}]",
                        report.failures.len(),
                        report.salvage.len(),
                        failures.join("; "),
                    )?;
                    if let Some(src) = &report.source {
                        write!(f, "; {src}")?;
                    }
                } else if let Some(src) = &report.source {
                    write!(f, "{src}")?;
                } else {
                    write!(f, "run faulted")?;
                }
                write!(f, "; {}", report.accounting)
            }
        }
    }
}

impl std::error::Error for SwitchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_conservation_check() {
        let ok = Accounting {
            offered: 10,
            transmitted: 6,
            dropped: 3,
            lost_in_fault: 1,
        };
        assert!(ok.conserved());
        let bad = Accounting {
            offered: 10,
            transmitted: 6,
            dropped: 3,
            lost_in_fault: 2,
        };
        assert!(!bad.conserved());
        assert!(ok.to_string().contains("lost_in_fault 1"));
    }

    #[test]
    fn shard_error_display_names_shard_packet_and_cause() {
        let e = ShardError {
            shard: 3,
            packet: Some(41),
            cause: FaultCause::Panic("boom".into()),
        };
        let s = e.to_string();
        assert!(s.contains("shard 3"), "{s}");
        assert!(s.contains("packet 41"), "{s}");
        assert!(s.contains("boom"), "{s}");

        let stall = ShardError {
            shard: 0,
            packet: None,
            cause: FaultCause::Stall { watchdog_ms: 250 },
        };
        assert!(stall.to_string().contains("250ms"), "{stall}");
    }

    #[test]
    fn salvage_lost_never_underflows() {
        let s = ShardSalvage {
            shard: 0,
            failed: true,
            offered: 2,
            output: vec![Packet::new(); 3],
            drops: DropCounters::new(),
            state: None,
        };
        assert_eq!(s.lost(), 0);
    }

    #[test]
    fn switch_error_display_summarizes_fault() {
        let report = FaultReport {
            failures: vec![ShardError {
                shard: 1,
                packet: Some(7),
                cause: FaultCause::Panic("injected".into()),
            }],
            source: None,
            salvage: vec![
                ShardSalvage {
                    shard: 0,
                    failed: false,
                    offered: 5,
                    output: vec![Packet::new(); 5],
                    drops: DropCounters::new(),
                    state: Some((StateStore::new(), StateStore::new())),
                },
                ShardSalvage {
                    shard: 1,
                    failed: true,
                    offered: 5,
                    output: Vec::new(),
                    drops: DropCounters::new(),
                    state: None,
                },
            ],
            merged: vec![Packet::new(); 5],
            accounting: Accounting {
                offered: 10,
                transmitted: 5,
                dropped: 0,
                lost_in_fault: 5,
            },
        };
        assert_eq!(report.survivors(), vec![0]);
        assert_eq!(report.shard(1).unwrap().lost(), 5);
        let e = SwitchError::Fault(Box::new(report));
        let s = e.to_string();
        assert!(s.contains("1 of 2 shard worker(s) faulted"), "{s}");
        assert!(s.contains("shard 1"), "{s}");
        assert!(e.fault().is_some());
    }
}
