//! Pass 1 — branch removal (Figure 5, §4.1).
//!
//! Converts (possibly nested) `if`/`else` statements into straight-line
//! code using the conditional operator, starting from the innermost `if`
//! and recursing outwards:
//!
//! ```text
//! if (C) { x = A; } else { y = B; }
//! ⇒
//! pkt.__br0 = C;
//! x = pkt.__br0 ? A : x;       // rewritten
//! y = pkt.__br0 ? y : B;       // rewritten
//! ```
//!
//! The condition is hoisted into a temporary packet field *before* the
//! branch bodies run, because the bodies may overwrite fields the
//! condition reads. Straight-line code simplifies everything downstream:
//! only read-after-write dependencies remain after SSA, and control
//! dependencies are gone entirely (this is the if-conversion analogue
//! noted in Table 2, simpler here because Domino has no backward control
//! transfer).

use crate::fresh::FreshNames;
use domino_ast::ast::{Expr, LValue, Stmt};
use domino_ast::Span;

/// An assignment-only statement (the output of this pass).
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Target (packet field or state location).
    pub lhs: LValue,
    /// Value expression (may contain conditionals).
    pub rhs: Expr,
}

/// Removes all branches from a transaction body, yielding straight-line
/// assignments.
pub fn remove_branches(body: &[Stmt], fresh: &mut FreshNames) -> Vec<Assign> {
    let mut out = Vec::new();
    lower_block(body, fresh, &mut out);
    out
}

fn lower_block(stmts: &[Stmt], fresh: &mut FreshNames, out: &mut Vec<Assign>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { lhs, rhs, .. } => out.push(Assign {
                lhs: lhs.clone(),
                rhs: rhs.clone(),
            }),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                // Hoist the condition (evaluated before either branch).
                let cond_field = fresh.fresh("__br");
                out.push(Assign {
                    lhs: LValue::Field("pkt".into(), cond_field.clone(), Span::SYNTH),
                    rhs: cond.clone(),
                });
                let cond_expr = Expr::Field("pkt".into(), cond_field, Span::SYNTH);

                // Innermost-first: recursively flatten each branch...
                let mut then_flat = Vec::new();
                lower_block(then_branch, fresh, &mut then_flat);
                let mut else_flat = Vec::new();
                lower_block(else_branch, fresh, &mut else_flat);

                // ...then guard every assignment with the hoisted condition.
                for a in then_flat {
                    let keep = lvalue_as_expr(&a.lhs);
                    out.push(Assign {
                        lhs: a.lhs,
                        rhs: Expr::Ternary(
                            Box::new(cond_expr.clone()),
                            Box::new(a.rhs),
                            Box::new(keep),
                            Span::SYNTH,
                        ),
                    });
                }
                for a in else_flat {
                    let keep = lvalue_as_expr(&a.lhs);
                    out.push(Assign {
                        lhs: a.lhs,
                        rhs: Expr::Ternary(
                            Box::new(cond_expr.clone()),
                            Box::new(keep),
                            Box::new(a.rhs),
                            Span::SYNTH,
                        ),
                    });
                }
            }
        }
    }
}

/// The "keep the old value" expression for an assignment target.
pub fn lvalue_as_expr(lv: &LValue) -> Expr {
    match lv {
        LValue::Field(b, f, s) => Expr::Field(b.clone(), f.clone(), *s),
        LValue::Scalar(n, s) => Expr::Ident(n.clone(), *s),
        LValue::Array(n, i, s) => Expr::Index(n.clone(), i.clone(), *s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ast::parse_and_check;

    fn run(src: &str) -> Vec<String> {
        let p = parse_and_check(src).unwrap();
        let mut fresh = FreshNames::new(p.packet_fields.iter().cloned());
        remove_branches(&p.body, &mut fresh)
            .into_iter()
            .map(|a| {
                format!(
                    "{} = {};",
                    domino_ast::pretty::lvalue_to_string(&a.lhs),
                    a.rhs
                )
            })
            .collect()
    }

    #[test]
    fn flowlet_branch_matches_figure5() {
        let lines = run("#define THRESHOLD 5\n\
             struct P { int arrival; int new_hop; int id; };\n\
             int last_time[8] = {0};\nint saved_hop[8] = {0};\n\
             void f(struct P pkt) {\n\
               if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {\n\
                 saved_hop[pkt.id] = pkt.new_hop;\n\
               }\n\
             }");
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "pkt.__br = ((pkt.arrival - last_time[pkt.id]) > 5);"
        );
        assert_eq!(
            lines[1],
            "saved_hop[pkt.id] = (pkt.__br ? pkt.new_hop : saved_hop[pkt.id]);"
        );
    }

    #[test]
    fn else_branch_keeps_then_value() {
        let lines = run("struct P { int a; int r; };\n\
             void f(struct P pkt) { if (pkt.a) { pkt.r = 1; } else { pkt.r = 2; } }");
        assert_eq!(lines[1], "pkt.r = (pkt.__br ? 1 : pkt.r);");
        assert_eq!(lines[2], "pkt.r = (pkt.__br ? pkt.r : 2);");
    }

    #[test]
    fn condition_hoisted_before_body_mutation() {
        // The branch body overwrites the field the condition reads.
        let lines = run("struct P { int a; int b; };\n\
             void f(struct P pkt) { if (pkt.a > 0) { pkt.a = 0; pkt.b = pkt.a; } }");
        assert_eq!(lines[0], "pkt.__br = (pkt.a > 0);");
        assert_eq!(lines[1], "pkt.a = (pkt.__br ? 0 : pkt.a);");
        // pkt.b reads the *updated* pkt.a, preserving sequential semantics.
        assert_eq!(lines[2], "pkt.b = (pkt.__br ? pkt.a : pkt.b);");
    }

    #[test]
    fn nested_ifs_recurse_innermost_first() {
        let lines = run("struct P { int a; int b; int r; };\n\
             void f(struct P pkt) {\n\
               if (pkt.a) { if (pkt.b) { pkt.r = 1; } }\n\
             }");
        // __br = a; __br_1 = __br ? b : __br_1; r = __br ? (__br_1 ? 1 : r) : r
        assert_eq!(lines.len(), 3);
        assert!(
            lines[2].contains("pkt.__br ? (pkt.__br_1 ? 1 : pkt.r) : pkt.r"),
            "{}",
            lines[2]
        );
    }

    #[test]
    fn else_if_chains_flatten() {
        let lines = run("struct P { int a; int b; int r; };\n\
             void f(struct P pkt) {\n\
               if (pkt.a) { pkt.r = 1; } else if (pkt.b) { pkt.r = 2; } else { pkt.r = 3; }\n\
             }");
        // cond0; r(then); cond1 (guarded); r(elif-then); r(else)
        assert_eq!(lines.len(), 5);
        assert!(lines[4].contains("pkt.__br ?"), "{}", lines[4]);
    }

    #[test]
    fn straight_line_is_untouched() {
        let lines = run("struct P { int a; int r; };\nvoid f(struct P pkt) { pkt.r = pkt.a + 1; }");
        assert_eq!(lines, vec!["pkt.r = (pkt.a + 1);"]);
    }

    #[test]
    fn fresh_names_avoid_user_fields() {
        let lines = run("struct P { int __br; int a; };\n\
             void f(struct P pkt) { if (pkt.a) { pkt.a = 0; } }");
        // The user already has a field named __br; the temp must differ.
        assert!(lines[0].starts_with("pkt.__br_1 ="), "{}", lines[0]);
    }
}
