//! Pass 4 — flattening to three-address code (Figure 8, §4.1).
//!
//! Expression trees are decomposed into single-operation statements on
//! packet fields (`pkt.f1 = pkt.f2 op pkt.f3`), introducing temporaries
//! where needed. State statements become explicit
//! [`TacStmt::ReadState`]/[`TacStmt::WriteState`] flanks. A `% CONST`
//! applied to a hash intrinsic is folded into the intrinsic call (the hash
//! unit delivers a bounded value), matching Figure 3b where
//! `hash2(...) % NUM_FLOWLETS` is a single statement.

use crate::branch_removal::Assign;
use crate::fresh::FreshNames;
use domino_ast::ast::{BinOp, Expr, LValue};
use domino_ir::{Operand, StateRef, TacRhs, TacStmt};
use std::fmt;

/// Errors from flattening (internal invariant violations surfaced with
/// context).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlattenError {
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FlattenError {}

/// Flattens SSA statements into TAC.
pub fn flatten(stmts: &[Assign], fresh: &mut FreshNames) -> Result<Vec<TacStmt>, FlattenError> {
    let mut out = Vec::new();
    for a in stmts {
        flatten_assign(a, fresh, &mut out)?;
    }
    Ok(out)
}

fn flatten_assign(
    a: &Assign,
    fresh: &mut FreshNames,
    out: &mut Vec<TacStmt>,
) -> Result<(), FlattenError> {
    match &a.lhs {
        LValue::Field(_, dst, _) => match &a.rhs {
            // Read flanks: pkt.tmp = state
            Expr::Ident(var, _) => {
                out.push(TacStmt::ReadState {
                    dst: dst.clone(),
                    state: StateRef::Scalar(var.clone()),
                });
                Ok(())
            }
            Expr::Index(var, idx, _) => {
                let index = flatten_operand(idx, fresh, out)?;
                out.push(TacStmt::ReadState {
                    dst: dst.clone(),
                    state: StateRef::Array {
                        name: var.clone(),
                        index,
                    },
                });
                Ok(())
            }
            rhs => {
                let tac_rhs = flatten_rhs(rhs, fresh, out)?;
                out.push(TacStmt::Assign {
                    dst: dst.clone(),
                    rhs: tac_rhs,
                });
                Ok(())
            }
        },
        // Write flanks.
        LValue::Scalar(var, _) => {
            let src = flatten_operand(&a.rhs, fresh, out)?;
            out.push(TacStmt::WriteState {
                state: StateRef::Scalar(var.clone()),
                src,
            });
            Ok(())
        }
        LValue::Array(var, idx, _) => {
            let index = flatten_operand(idx, fresh, out)?;
            let src = flatten_operand(&a.rhs, fresh, out)?;
            out.push(TacStmt::WriteState {
                state: StateRef::Array {
                    name: var.clone(),
                    index,
                },
                src,
            });
            Ok(())
        }
    }
}

/// Produces a top-level TAC right-hand side for an expression (one
/// operation; operands flattened recursively).
fn flatten_rhs(
    e: &Expr,
    fresh: &mut FreshNames,
    out: &mut Vec<TacStmt>,
) -> Result<TacRhs, FlattenError> {
    match e {
        Expr::Int(v, _) => Ok(TacRhs::Copy(Operand::Const(*v))),
        Expr::Field(_, f, _) => Ok(TacRhs::Copy(Operand::Field(f.clone()))),
        Expr::Unary(op, inner, _) => {
            let o = flatten_operand(inner, fresh, out)?;
            Ok(TacRhs::Unary(*op, o))
        }
        // hash(...) % CONST folds into the intrinsic call.
        Expr::Binary(BinOp::Mod, lhs, rhs, _)
            if matches!(lhs.as_ref(), Expr::Call(..)) && matches!(rhs.as_ref(), Expr::Int(..)) =>
        {
            let Expr::Call(name, args, _) = lhs.as_ref() else {
                unreachable!()
            };
            let Expr::Int(m, _) = rhs.as_ref() else {
                unreachable!()
            };
            let args = args
                .iter()
                .map(|arg| flatten_operand(arg, fresh, out))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(TacRhs::Intrinsic {
                name: name.clone(),
                args,
                modulo: Some(*m),
            })
        }
        Expr::Binary(op, a, b, _) => {
            let fa = flatten_operand(a, fresh, out)?;
            let fb = flatten_operand(b, fresh, out)?;
            Ok(TacRhs::Binary(*op, fa, fb))
        }
        Expr::Ternary(c, t, els, _) => {
            let fc = flatten_operand(c, fresh, out)?;
            let ft = flatten_operand(t, fresh, out)?;
            let fe = flatten_operand(els, fresh, out)?;
            Ok(TacRhs::Ternary(fc, ft, fe))
        }
        Expr::Call(name, args, _) => {
            let args = args
                .iter()
                .map(|arg| flatten_operand(arg, fresh, out))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(TacRhs::Intrinsic {
                name: name.clone(),
                args,
                modulo: None,
            })
        }
        Expr::Ident(var, _) | Expr::Index(var, _, _) => Err(FlattenError {
            message: format!(
                "internal error: state variable `{var}` appears outside a flank \
                 after the state-rewriting pass"
            ),
        }),
    }
}

/// Reduces an expression to a single operand, emitting temporaries for
/// anything that is not already a field or constant.
fn flatten_operand(
    e: &Expr,
    fresh: &mut FreshNames,
    out: &mut Vec<TacStmt>,
) -> Result<Operand, FlattenError> {
    match e {
        Expr::Int(v, _) => Ok(Operand::Const(*v)),
        Expr::Field(_, f, _) => Ok(Operand::Field(f.clone())),
        Expr::Ident(var, _) | Expr::Index(var, _, _) => Err(FlattenError {
            message: format!(
                "internal error: state variable `{var}` appears outside a flank \
                 after the state-rewriting pass"
            ),
        }),
        other => {
            let rhs = flatten_rhs(other, fresh, out)?;
            let tmp = fresh.fresh("__t");
            out.push(TacStmt::Assign {
                dst: tmp.clone(),
                rhs,
            });
            Ok(Operand::Field(tmp))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_removal::remove_branches;
    use crate::ssa::to_ssa;
    use crate::state_flank::rewrite_state_ops;
    use domino_ast::parse_and_check;

    fn run(src: &str) -> Vec<String> {
        let p = parse_and_check(src).unwrap();
        let mut fresh = FreshNames::new(p.packet_fields.iter().cloned());
        let straight = remove_branches(&p.body, &mut fresh);
        let (flanked, _) = rewrite_state_ops(&straight, &p, &mut fresh).unwrap();
        let ssa = to_ssa(&flanked, &mut fresh);
        flatten(&ssa.stmts, &mut fresh)
            .unwrap()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn binary_expression_flattens_directly() {
        let lines = run("struct P { int a; int b; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.a + pkt.b; }");
        assert_eq!(lines, vec!["pkt.r0 = pkt.a + pkt.b;"]);
    }

    #[test]
    fn nested_expression_introduces_temp() {
        let lines = run("struct P { int a; int b; int c; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.a + pkt.b - pkt.c; }");
        assert_eq!(
            lines,
            vec!["pkt.__t = pkt.a + pkt.b;", "pkt.r0 = pkt.__t - pkt.c;"]
        );
    }

    #[test]
    fn hash_modulo_folds_into_intrinsic() {
        let lines = run("struct P { int sport; int dport; int id; };\n\
             void f(struct P pkt) { pkt.id = hash2(pkt.sport, pkt.dport) % 8000; }");
        assert_eq!(lines, vec!["pkt.id0 = hash2(pkt.sport, pkt.dport) % 8000;"]);
    }

    #[test]
    fn unfolded_hash_stays_plain_intrinsic() {
        let lines = run("struct P { int sport; int dport; int id; };\n\
             void f(struct P pkt) { pkt.id = hash2(pkt.sport, pkt.dport); }");
        assert_eq!(lines, vec!["pkt.id0 = hash2(pkt.sport, pkt.dport);"]);
    }

    #[test]
    fn flanks_become_state_statements() {
        let lines = run("struct P { int x; };\nint c = 0;\n\
             void f(struct P pkt) { c = c + pkt.x; }");
        assert_eq!(
            lines,
            vec!["pkt.c0 = c;", "pkt.c1 = pkt.c0 + pkt.x;", "c = pkt.c1;",]
        );
    }

    #[test]
    fn flowlet_flattens_like_figure8() {
        let lines = run(
            "#define NUM_FLOWLETS 8000\n#define THRESHOLD 5\n#define NUM_HOPS 10\n\
             struct Packet { int sport; int dport; int new_hop; int arrival; int next_hop; int id; };\n\
             int last_time[NUM_FLOWLETS] = {0};\nint saved_hop[NUM_FLOWLETS] = {0};\n\
             void flowlet(struct Packet pkt) {\n\
               pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;\n\
               pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;\n\
               if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {\n\
                 saved_hop[pkt.id] = pkt.new_hop;\n\
               }\n\
               last_time[pkt.id] = pkt.arrival;\n\
               pkt.next_hop = saved_hop[pkt.id];\n\
             }",
        );
        let text = lines.join("\n");
        assert!(
            text.contains("pkt.new_hop0 = hash3(pkt.sport, pkt.dport, pkt.arrival) % 10;"),
            "{text}"
        );
        assert!(
            text.contains("pkt.id0 = hash2(pkt.sport, pkt.dport) % 8000;"),
            "{text}"
        );
        assert!(
            text.contains("pkt.last_time0 = last_time[pkt.id0];"),
            "{text}"
        );
        assert!(
            text.contains("pkt.saved_hop0 = saved_hop[pkt.id0];"),
            "{text}"
        );
        // The comparison flattens into subtract then relational (paper
        // lines 5-6).
        assert!(
            text.contains("pkt.__t = pkt.arrival - pkt.last_time0;"),
            "{text}"
        );
        assert!(text.contains("pkt.__br0 = pkt.__t > 5;"), "{text}");
        // Write flanks address the same index field.
        assert!(
            text.contains("last_time[pkt.id0] = pkt.last_time1;"),
            "{text}"
        );
        assert!(
            text.contains("saved_hop[pkt.id0] = pkt.saved_hop1;"),
            "{text}"
        );
    }

    #[test]
    fn ternary_flattens_with_three_operands() {
        let lines = run("struct P { int c; int a; int b; int r; };\n\
             void f(struct P pkt) { pkt.r = pkt.c ? pkt.a : pkt.b; }");
        assert_eq!(lines, vec!["pkt.r0 = pkt.c ? pkt.a : pkt.b;"]);
    }

    #[test]
    fn unary_not_flattens() {
        let lines = run("struct P { int a; int r; };\nvoid f(struct P pkt) { pkt.r = !pkt.a; }");
        assert_eq!(lines, vec!["pkt.r0 = !pkt.a;"]);
    }
}
