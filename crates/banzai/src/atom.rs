//! Atom configurations — the "filled-in templates" of §4.3.
//!
//! An atom template (Figure 2b) is a program with *holes* (configuration
//! parameters). The synthesizer fills the holes, producing a
//! [`StatefulConfig`]: per state variable, a predication tree whose guards
//! are single relational operations and whose leaves are single-ALU updates
//! (`x = v`, `x = x + v`, `x = x − v`, or keep). This mirrors the circuits
//! of Table 6: operand muxes feeding a relational unit and an adder, with
//! result muxes selecting the update.
//!
//! The configuration serves three purposes:
//!
//! 1. it is the *proof* that a codelet fits a given [`AtomKind`],
//! 2. it drives the hardware cost model (every hole is a mux input),
//! 3. it can be executed, and is differentially tested against the
//!    codelet's sequential body.

use crate::kind::AtomKind;
use domino_ir::interp::eval_operand;
use domino_ir::{Operand, Packet, StateRef, StateStore};
use std::fmt;

/// Relational operators available to atom guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are their C spellings
pub enum RelOp {
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
}

impl RelOp {
    /// Evaluates the relation.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            RelOp::Lt => a < b,
            RelOp::Gt => a > b,
            RelOp::Le => a <= b,
            RelOp::Ge => a >= b,
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
        }
    }

    /// C spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            RelOp::Lt => "<",
            RelOp::Gt => ">",
            RelOp::Le => "<=",
            RelOp::Ge => ">=",
            RelOp::Eq => "==",
            RelOp::Ne => "!=",
        }
    }

    /// The relation with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Gt,
            RelOp::Gt => RelOp::Lt,
            RelOp::Le => RelOp::Ge,
            RelOp::Ge => RelOp::Le,
            RelOp::Eq => RelOp::Eq,
            RelOp::Ne => RelOp::Ne,
        }
    }

    /// The negated relation (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Ge,
            RelOp::Gt => RelOp::Le,
            RelOp::Le => RelOp::Gt,
            RelOp::Ge => RelOp::Lt,
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
        }
    }
}

/// An operand of a guard: a packet field, a constant, or one of the atom's
/// state variables (only predicated atoms from PRAW up have guards, and
/// Pairs guards may read both variables).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GuardOperand {
    /// Packet field.
    Field(String),
    /// Immediate constant.
    Const(i32),
    /// The atom's `i`-th state variable (pre-update value).
    State(usize),
}

impl GuardOperand {
    fn eval(&self, olds: &[i32], pkt: &Packet) -> i32 {
        match self {
            GuardOperand::Field(f) => pkt.get_or_zero(f),
            GuardOperand::Const(c) => *c,
            GuardOperand::State(i) => olds[*i],
        }
    }

    /// True if this operand reads atom state.
    pub fn reads_state(&self) -> bool {
        matches!(self, GuardOperand::State(_))
    }
}

impl fmt::Display for GuardOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardOperand::Field(n) => write!(f, "pkt.{n}"),
            GuardOperand::Const(c) => write!(f, "{c}"),
            GuardOperand::State(i) => write!(f, "state[{i}]"),
        }
    }
}

/// A guard: one relational operation (the RELOP unit of Table 6's
/// circuits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The relational operator.
    pub op: RelOp,
    /// Left operand.
    pub lhs: GuardOperand,
    /// Right operand.
    pub rhs: GuardOperand,
}

impl Guard {
    /// Evaluates the guard against pre-update state values and the packet.
    pub fn eval(&self, olds: &[i32], pkt: &Packet) -> bool {
        self.op
            .eval(self.lhs.eval(olds, pkt), self.rhs.eval(olds, pkt))
    }

    /// True if either operand reads atom state.
    pub fn reads_state(&self) -> bool {
        self.lhs.reads_state() || self.rhs.reads_state()
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// A leaf update applied to one state variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Update {
    /// Leave the state variable unchanged.
    Keep,
    /// `x = v`
    Write(Operand),
    /// `x = x + v`
    Add(Operand),
    /// `x = x - v`
    Sub(Operand),
}

impl Update {
    /// Applies the update to the variable's old value.
    pub fn apply(&self, old: i32, pkt: &Packet) -> i32 {
        match self {
            Update::Keep => old,
            Update::Write(o) => eval_operand(o, pkt),
            Update::Add(o) => old.wrapping_add(eval_operand(o, pkt)),
            Update::Sub(o) => old.wrapping_sub(eval_operand(o, pkt)),
        }
    }

    /// True if this update is expressible with the given capabilities.
    pub fn allowed_by(&self, caps: &crate::kind::StatefulCaps) -> bool {
        match self {
            Update::Keep | Update::Write(_) => true,
            Update::Add(_) => caps.allow_add,
            Update::Sub(_) => caps.allow_sub,
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Keep => write!(f, "x = x"),
            Update::Write(o) => write!(f, "x = {o}"),
            Update::Add(o) => write!(f, "x = x + {o}"),
            Update::Sub(o) => write!(f, "x = x - {o}"),
        }
    }
}

/// A predication tree over one state variable: depth 0 is an unconditional
/// update, depth 1 is PRAW/IfElseRAW-style 2-way predication, depth 2 is
/// Nested's 4-way predication.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Tree {
    /// Unconditional update.
    Leaf(Update),
    /// `if (guard) then else els`.
    Branch {
        /// The predicate.
        guard: Guard,
        /// Taken when the guard holds.
        then: Box<Tree>,
        /// Taken otherwise.
        els: Box<Tree>,
    },
}

impl Tree {
    /// Depth of the tree (0 for a leaf).
    pub fn depth(&self) -> u8 {
        match self {
            Tree::Leaf(_) => 0,
            Tree::Branch { then, els, .. } => 1 + then.depth().max(els.depth()),
        }
    }

    /// Computes the variable's new value.
    pub fn eval(&self, var_idx: usize, olds: &[i32], pkt: &Packet) -> i32 {
        match self {
            Tree::Leaf(u) => u.apply(olds[var_idx], pkt),
            Tree::Branch { guard, then, els } => {
                if guard.eval(olds, pkt) {
                    then.eval(var_idx, olds, pkt)
                } else {
                    els.eval(var_idx, olds, pkt)
                }
            }
        }
    }

    /// Iterates all leaf updates.
    pub fn leaves(&self) -> Vec<&Update> {
        match self {
            Tree::Leaf(u) => vec![u],
            Tree::Branch { then, els, .. } => {
                let mut v = then.leaves();
                v.extend(els.leaves());
                v
            }
        }
    }

    /// Iterates all guards.
    pub fn guards(&self) -> Vec<&Guard> {
        match self {
            Tree::Leaf(_) => vec![],
            Tree::Branch { guard, then, els } => {
                let mut v = vec![guard];
                v.extend(then.guards());
                v.extend(els.guards());
                v
            }
        }
    }

    /// The `els` subtree at depth 1, if this is a branch (used for the PRAW
    /// "else leave unchanged" capability check).
    fn else_is_keep(&self) -> bool {
        match self {
            Tree::Leaf(_) => true,
            Tree::Branch { els, .. } => matches!(els.as_ref(), Tree::Leaf(Update::Keep)),
        }
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Tree::Leaf(u) => writeln!(f, "{pad}{u}"),
            Tree::Branch { guard, then, els } => {
                writeln!(f, "{pad}if ({guard})")?;
                then.render(f, depth + 1)?;
                writeln!(f, "{pad}else")?;
                els.render(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// A fully configured stateful atom: bound state references, one predication
/// tree per state variable, and the packet fields receiving the pre-update
/// state values (read flanks are free register reads in hardware).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatefulConfig {
    /// The state variables this atom owns (1, or 2 for Pairs).
    pub state_refs: Vec<StateRef>,
    /// `trees[i]` computes the new value of `state_refs[i]`.
    pub trees: Vec<Tree>,
    /// `(field, i)`: deliver the pre-update value of `state_refs[i]` into
    /// packet field `field`.
    pub outputs: Vec<(String, usize)>,
}

impl StatefulConfig {
    /// Executes the atom for one packet: read old values, expose them to the
    /// packet, evaluate the trees, write back — all within one "cycle".
    pub fn execute(&self, state: &mut StateStore, pkt: &mut Packet) {
        let olds: Vec<i32> = self
            .state_refs
            .iter()
            .map(|r| domino_ir::interp::read_state(r, state, pkt))
            .collect();
        for (field, i) in &self.outputs {
            pkt.set(field, olds[*i]);
        }
        let news: Vec<i32> = self
            .trees
            .iter()
            .enumerate()
            .map(|(i, t)| t.eval(i, &olds, pkt))
            .collect();
        for (r, v) in self.state_refs.iter().zip(news) {
            domino_ir::interp::write_state(r, v, state, pkt);
        }
    }

    /// Checks whether this configuration is within the capabilities of
    /// `kind` (the containment-hierarchy check of §5.3).
    pub fn fits(&self, kind: AtomKind) -> bool {
        let caps = kind.caps();
        if self.state_refs.len() > caps.max_state_vars as usize {
            return false;
        }
        for tree in &self.trees {
            if tree.depth() > caps.max_tree_depth {
                return false;
            }
            if !caps.else_may_update && !tree.else_is_keep() {
                return false;
            }
            if !tree.leaves().iter().all(|u| u.allowed_by(&caps)) {
                return false;
            }
        }
        true
    }

    /// The least expressive kind that can hold this configuration, if any.
    pub fn minimal_kind(&self) -> Option<AtomKind> {
        AtomKind::ALL.into_iter().find(|k| self.fits(*k))
    }
}

impl fmt::Display for StatefulConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (r, t)) in self.state_refs.iter().zip(&self.trees).enumerate() {
            writeln!(f, "state[{i}] = {r}:")?;
            write!(f, "{t}")?;
        }
        for (field, i) in &self.outputs {
            writeln!(f, "pkt.{field} <- old(state[{i}])")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ast::{StateKind, StateVar};

    fn scalar_store(name: &str, init: i32) -> StateStore {
        StateStore::from_decls(&[StateVar {
            name: name.into(),
            kind: StateKind::Scalar,
            init,
        }])
    }

    fn counter_config() -> StatefulConfig {
        // The wrap-around counter of §2.3:
        //   if (counter < 99) counter++; else counter = 0;
        StatefulConfig {
            state_refs: vec![StateRef::Scalar("counter".into())],
            trees: vec![Tree::Branch {
                guard: Guard {
                    op: RelOp::Lt,
                    lhs: GuardOperand::State(0),
                    rhs: GuardOperand::Const(99),
                },
                then: Box::new(Tree::Leaf(Update::Add(Operand::Const(1)))),
                els: Box::new(Tree::Leaf(Update::Write(Operand::Const(0)))),
            }],
            outputs: vec![],
        }
    }

    #[test]
    fn relop_eval_and_inverses() {
        assert!(RelOp::Lt.eval(1, 2));
        assert!(!RelOp::Lt.eval(2, 2));
        for op in [
            RelOp::Lt,
            RelOp::Gt,
            RelOp::Le,
            RelOp::Ge,
            RelOp::Eq,
            RelOp::Ne,
        ] {
            for a in [-2, 0, 3] {
                for b in [-2, 0, 3] {
                    assert_eq!(op.eval(a, b), op.flipped().eval(b, a), "{op:?} flip");
                    assert_eq!(op.eval(a, b), !op.negated().eval(a, b), "{op:?} neg");
                }
            }
        }
    }

    #[test]
    fn wraparound_counter_executes_like_the_paper() {
        let cfg = counter_config();
        let mut state = scalar_store("counter", 98);
        let mut pkt = Packet::new();
        cfg.execute(&mut state, &mut pkt);
        assert_eq!(state.read_scalar("counter"), 99);
        cfg.execute(&mut state, &mut pkt);
        assert_eq!(state.read_scalar("counter"), 0); // wrapped
        cfg.execute(&mut state, &mut pkt);
        assert_eq!(state.read_scalar("counter"), 1);
    }

    #[test]
    fn counter_needs_ifelse_raw() {
        // Both branches update (add vs write), so PRAW is not enough.
        let cfg = counter_config();
        assert!(!cfg.fits(AtomKind::Write));
        assert!(!cfg.fits(AtomKind::Raw));
        assert!(!cfg.fits(AtomKind::Praw));
        assert!(cfg.fits(AtomKind::IfElseRaw));
        assert_eq!(cfg.minimal_kind(), Some(AtomKind::IfElseRaw));
    }

    #[test]
    fn praw_accepts_guarded_update_with_keep_else() {
        let cfg = StatefulConfig {
            state_refs: vec![StateRef::Scalar("x".into())],
            trees: vec![Tree::Branch {
                guard: Guard {
                    op: RelOp::Gt,
                    lhs: GuardOperand::Field("a".into()),
                    rhs: GuardOperand::Const(0),
                },
                then: Box::new(Tree::Leaf(Update::Add(Operand::Field("a".into())))),
                els: Box::new(Tree::Leaf(Update::Keep)),
            }],
            outputs: vec![],
        };
        assert_eq!(cfg.minimal_kind(), Some(AtomKind::Praw));
    }

    #[test]
    fn sub_required_for_subtraction() {
        let cfg = StatefulConfig {
            state_refs: vec![StateRef::Scalar("x".into())],
            trees: vec![Tree::Leaf(Update::Sub(Operand::Const(1)))],
            outputs: vec![],
        };
        // Depth 0, but subtraction first appears in the Sub atom.
        assert_eq!(cfg.minimal_kind(), Some(AtomKind::Sub));
    }

    #[test]
    fn two_vars_require_pairs() {
        let keep = Tree::Leaf(Update::Keep);
        let cfg = StatefulConfig {
            state_refs: vec![StateRef::Scalar("a".into()), StateRef::Scalar("b".into())],
            trees: vec![keep.clone(), keep],
            outputs: vec![],
        };
        assert_eq!(cfg.minimal_kind(), Some(AtomKind::Pairs));
    }

    #[test]
    fn depth_two_requires_nested() {
        let inner = Tree::Branch {
            guard: Guard {
                op: RelOp::Eq,
                lhs: GuardOperand::Field("a".into()),
                rhs: GuardOperand::Const(1),
            },
            then: Box::new(Tree::Leaf(Update::Write(Operand::Const(5)))),
            els: Box::new(Tree::Leaf(Update::Keep)),
        };
        let cfg = StatefulConfig {
            state_refs: vec![StateRef::Scalar("x".into())],
            trees: vec![Tree::Branch {
                guard: Guard {
                    op: RelOp::Ne,
                    lhs: GuardOperand::Field("b".into()),
                    rhs: GuardOperand::Const(0),
                },
                then: Box::new(inner),
                els: Box::new(Tree::Leaf(Update::Keep)),
            }],
            outputs: vec![],
        };
        assert_eq!(cfg.minimal_kind(), Some(AtomKind::Nested));
    }

    #[test]
    fn outputs_deliver_pre_update_value() {
        let cfg = StatefulConfig {
            state_refs: vec![StateRef::Scalar("x".into())],
            trees: vec![Tree::Leaf(Update::Add(Operand::Const(1)))],
            outputs: vec![("old_x".into(), 0)],
        };
        let mut state = scalar_store("x", 41);
        let mut pkt = Packet::new();
        cfg.execute(&mut state, &mut pkt);
        assert_eq!(pkt.get("old_x"), Some(41)); // pre-update
        assert_eq!(state.read_scalar("x"), 42);
    }

    #[test]
    fn array_state_ref_uses_packet_index() {
        let mut state = StateStore::new();
        state.insert_array("tbl", 8, 0);
        let cfg = StatefulConfig {
            state_refs: vec![StateRef::Array {
                name: "tbl".into(),
                index: Operand::Field("id".into()),
            }],
            trees: vec![Tree::Leaf(Update::Write(Operand::Field("v".into())))],
            outputs: vec![],
        };
        let mut pkt = Packet::new().with("id", 3).with("v", 7);
        cfg.execute(&mut state, &mut pkt);
        assert_eq!(state.read_array("tbl", 3), 7);
        assert_eq!(state.read_array("tbl", 2), 0);
    }

    #[test]
    fn display_renders_tree() {
        let cfg = counter_config();
        let text = cfg.to_string();
        assert!(text.contains("if (state[0] < 99)"), "{text}");
        assert!(text.contains("x = x + 1"), "{text}");
    }

    #[test]
    fn guard_state_detection() {
        let g = Guard {
            op: RelOp::Lt,
            lhs: GuardOperand::Field("util".into()),
            rhs: GuardOperand::State(0),
        };
        assert!(g.reads_state());
        let g2 = Guard {
            op: RelOp::Lt,
            lhs: GuardOperand::Field("a".into()),
            rhs: GuardOperand::Const(1),
        };
        assert!(!g2.reads_state());
    }
}
