//! Determinism guarantees: compilation and simulation are pure functions
//! of their inputs. Switch operators reprovision pipelines from source;
//! two builds of the same program must behave identically.

use banzai::{AtomKind, Machine, Target};

#[test]
fn compilation_is_deterministic_for_every_algorithm() {
    for algo in algorithms::TABLE4.iter() {
        let Some(kind) = algo.paper.least_atom else {
            continue;
        };
        let target = Target::banzai(kind);
        let a = domino_compiler::compile(algo.source, &target).unwrap();
        let b = domino_compiler::compile(algo.source, &target).unwrap();
        assert_eq!(a, b, "{}: non-deterministic compilation", algo.name);
    }
}

#[test]
fn rejection_reasons_are_deterministic() {
    let algo = algorithms::by_name("codel").unwrap();
    let target = Target::banzai(AtomKind::Pairs);
    let a = domino_compiler::compile(algo.source, &target).unwrap_err();
    let b = domino_compiler::compile(algo.source, &target).unwrap_err();
    assert_eq!(a, b);
}

#[test]
fn simulation_replay_is_bit_identical() {
    let algo = algorithms::by_name("heavy_hitters").unwrap();
    let pipeline = domino_compiler::compile(algo.source, &Target::banzai(AtomKind::Raw)).unwrap();
    let trace = algo.trace(500, 1234);
    let mut m1 = Machine::new(pipeline.clone());
    let mut m2 = Machine::new(pipeline);
    assert_eq!(m1.run_trace(&trace), m2.run_trace(&trace));
    assert_eq!(m1.state(), m2.state());
}

#[test]
fn synthesized_configs_are_stable_across_runs() {
    // The synthesizer (including its seeded verification RNG) must hand
    // back the same configuration every time.
    let compilation =
        domino_compiler::normalize(algorithms::by_name("conga").unwrap().source).unwrap();
    let codelet = compilation
        .pvsm
        .iter_codelets()
        .map(|(_, c)| c)
        .find(|c| !c.is_stateless())
        .unwrap();
    let a = atom_synth::synthesize(codelet).unwrap();
    let b = atom_synth::synthesize(codelet).unwrap();
    assert_eq!(a.config, b.config);
    assert_eq!(a.minimal_kind, b.minimal_kind);
}
