//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access, so this
//! vendored shim implements exactly the `rand 0.8`-style API surface the
//! workspace uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a documented,
//! reproducible stream (workload traces in `algorithms` are seeded and the
//! golden tests pin their outputs, so the stream must stay stable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator seedable from integer or byte seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable as `gen_range` bounds (integer uniform sampling).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// The object-safe core: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `low..high`.
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Debiased multiply-shift (Lemire); span < 2^63 for all
                // callers here, so the rejection loop terminates fast.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return ((low as $wide).wrapping_add((v % span) as $wide)) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: xoshiro256++.
    ///
    /// Not the ChaCha12 core of the real `rand::rngs::StdRng` — this
    /// workspace only relies on determinism-per-seed, not the exact
    /// upstream stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000i32), b.gen_range(0..1_000_000i32));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i32> = (0..8).map(|_| c.gen_range(0..1000)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let other: Vec<i32> = (0..8).map(|_| d.gen_range(0..1000)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20i32..20);
            assert!((-20..20).contains(&v));
            let u = rng.gen_range(0usize..16);
            assert!(u < 16);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
