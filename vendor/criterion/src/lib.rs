//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no network access, so this
//! vendored shim implements the subset of criterion's API that
//! `crates/bench/benches/pipeline.rs` uses: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up, then
//! timed over an adaptive number of iterations (targeting ~200 ms of
//! wall-clock per benchmark), and the mean time per iteration is printed —
//! no statistical analysis, plots, or saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, adaptively choosing the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration: one timed call decides the batch size.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_MEASURE.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters;
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{id:<40} (no iterations run)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / per_iter),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 * 1e9 / per_iter),
    });
    println!(
        "{id:<40} {:>12} /iter ({} iters){}",
        format_ns(per_iter),
        b.iters_done,
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into one group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(2u64)));
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(1u32)));
    }
}
