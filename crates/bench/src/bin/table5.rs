//! Experiment E3 — regenerate **Table 5**: programmability (how many of
//! the Table 4 algorithms each atom can run) versus performance (minimum
//! delay and the resulting maximum line rate).

use banzai::{AtomKind, Target};
use bench::render_table;
use hardware_model::{paper_delay, stateful_circuit};

fn main() {
    println!("Table 5 — programmability vs performance\n");
    // Programmability: compile all Table 4 algorithms per target.
    let compilations: Vec<_> = algorithms::TABLE4
        .iter()
        .map(|a| {
            (
                a.name,
                domino_compiler::normalize(a.source).expect("normalizes"),
            )
        })
        .collect();

    let mut rows = Vec::new();
    for kind in AtomKind::ALL {
        let target = Target::banzai(kind);
        let supported = compilations
            .iter()
            .filter(|(_, c)| domino_compiler::lower(c, &target).is_ok())
            .count();
        let circuit = stateful_circuit(kind);
        let delay = circuit.min_delay_ps();
        rows.push(vec![
            kind.paper_name().to_string(),
            format!("{delay:.0}"),
            format!("{:.0}", paper_delay(kind)),
            format!("{supported}"),
            format!("{}", paper_programmability(kind)),
            format!("{:.2}", circuit.max_line_rate_gpps()),
            format!("{:.2}", 1000.0 / paper_delay(kind)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Atom", "Delay ps", "(paper)", "# algos", "(paper)", "Gpkts/s", "(paper)",],
            &rows
        )
    );
    println!(
        "Programmability counts our 11 Table 4 algorithms; the paper counted 10 of\n\
         its 11 at Pairs because CoDel never maps (same here)."
    );
}

/// The paper's Table 5 programmability column.
fn paper_programmability(kind: AtomKind) -> usize {
    match kind {
        AtomKind::Write => 1,
        AtomKind::Raw => 2,
        AtomKind::Praw => 4,
        AtomKind::IfElseRaw => 5,
        AtomKind::Sub => 6,
        AtomKind::Nested => 9,
        AtomKind::Pairs => 10,
    }
}
