//! Abstract syntax tree for Domino programs.
//!
//! The same tree type is used before and after semantic analysis; sema
//! ([`crate::sema`]) establishes the invariants documented on each node
//! (e.g. after sema, [`Expr::Ident`] only ever names a state scalar, and all
//! `#define` constants have been folded into [`Expr::Int`]).

use crate::span::Span;
use std::fmt;

/// Binary operators, in C semantics over 32-bit wrapping integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are their C spellings
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    /// Logical `&&` (operands normalized to 0/1).
    And,
    /// Logical `||`.
    Or,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// True for `< > <= >= == !=`.
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        }
    }

    /// Evaluates the operator with C-on-32-bit-wrapping semantics.
    ///
    /// Division/modulo by zero are defined to yield 0 (the simulator must be
    /// total); shifts use only the low 5 bits of the shift amount, matching
    /// common hardware behaviour.
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::Shl => a.wrapping_shl(b as u32 & 31),
            BinOp::Shr => a.wrapping_shr(b as u32 & 31),
            BinOp::BitAnd => a & b,
            BinOp::BitOr => a | b,
            BinOp::BitXor => a ^ b,
            BinOp::And => ((a != 0) && (b != 0)) as i32,
            BinOp::Or => ((a != 0) || (b != 0)) as i32,
            BinOp::Lt => (a < b) as i32,
            BinOp::Gt => (a > b) as i32,
            BinOp::Le => (a <= b) as i32,
            BinOp::Ge => (a >= b) as i32,
            BinOp::Eq => (a == b) as i32,
            BinOp::Ne => (a != b) as i32,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical not `!` (yields 0/1).
    Not,
    /// Bitwise not `~`.
    BitNot,
}

impl UnOp {
    /// C spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }

    /// Evaluates with wrapping semantics.
    pub fn eval(self, a: i32) -> i32 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => (a == 0) as i32,
            UnOp::BitNot => !a,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal (or folded `#define` constant after sema).
    Int(i32, Span),
    /// Bare identifier. After sema this is guaranteed to name a **state
    /// scalar**; `#define` names have been folded to [`Expr::Int`].
    Ident(String, Span),
    /// `pkt.field` — a packet field access (`base.field`).
    Field(String, String, Span),
    /// `arr[idx]` — a state array element access.
    Index(String, Box<Expr>, Span),
    /// `op e`.
    Unary(UnOp, Box<Expr>, Span),
    /// `a op b`.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
    /// `cond ? then : else`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>, Span),
    /// Intrinsic call, e.g. `hash2(pkt.sport, pkt.dport)`.
    Call(String, Vec<Expr>, Span),
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Ident(_, s)
            | Expr::Field(_, _, s)
            | Expr::Index(_, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s)
            | Expr::Ternary(_, _, _, s)
            | Expr::Call(_, _, s) => *s,
        }
    }

    /// Structural equality, ignoring spans. Used e.g. for the Table 1 check
    /// that all accesses to an array use the same index expression.
    pub fn structurally_equal(&self, other: &Expr) -> bool {
        match (self, other) {
            (Expr::Int(a, _), Expr::Int(b, _)) => a == b,
            (Expr::Ident(a, _), Expr::Ident(b, _)) => a == b,
            (Expr::Field(b1, f1, _), Expr::Field(b2, f2, _)) => b1 == b2 && f1 == f2,
            (Expr::Index(n1, i1, _), Expr::Index(n2, i2, _)) => {
                n1 == n2 && i1.structurally_equal(i2)
            }
            (Expr::Unary(o1, e1, _), Expr::Unary(o2, e2, _)) => {
                o1 == o2 && e1.structurally_equal(e2)
            }
            (Expr::Binary(o1, a1, b1, _), Expr::Binary(o2, a2, b2, _)) => {
                o1 == o2 && a1.structurally_equal(a2) && b1.structurally_equal(b2)
            }
            (Expr::Ternary(c1, t1, e1, _), Expr::Ternary(c2, t2, e2, _)) => {
                c1.structurally_equal(c2) && t1.structurally_equal(t2) && e1.structurally_equal(e2)
            }
            (Expr::Call(n1, a1, _), Expr::Call(n2, a2, _)) => {
                n1 == n2
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2).all(|(x, y)| x.structurally_equal(y))
            }
            _ => false,
        }
    }

    /// Calls `f` on this expression and all sub-expressions (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Int(..) | Expr::Ident(..) | Expr::Field(..) => {}
            Expr::Index(_, idx, _) => idx.walk(f),
            Expr::Unary(_, e, _) => e.walk(f),
            Expr::Binary(_, a, b, _) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Ternary(c, t, e, _) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            Expr::Call(_, args, _) => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// Rebuilds the expression bottom-up, applying `f` to every node after
    /// its children have been rebuilt (post-order map).
    pub fn map(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Int(..) | Expr::Ident(..) | Expr::Field(..) => self,
            Expr::Index(n, idx, s) => Expr::Index(n, Box::new(idx.map(f)), s),
            Expr::Unary(op, e, s) => Expr::Unary(op, Box::new(e.map(f)), s),
            Expr::Binary(op, a, b, s) => {
                Expr::Binary(op, Box::new(a.map(f)), Box::new(b.map(f)), s)
            }
            Expr::Ternary(c, t, e, s) => Expr::Ternary(
                Box::new(c.map(f)),
                Box::new(t.map(f)),
                Box::new(e.map(f)),
                s,
            ),
            Expr::Call(n, args, s) => {
                Expr::Call(n, args.into_iter().map(|a| a.map(f)).collect(), s)
            }
        };
        f(rebuilt)
    }

    /// True if the expression contains no state references (idents or array
    /// indexing) — i.e. it reads only packet fields and constants.
    pub fn is_stateless(&self) -> bool {
        let mut stateless = true;
        self.walk(&mut |e| {
            if matches!(e, Expr::Ident(..) | Expr::Index(..)) {
                stateless = false;
            }
        });
        stateless
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `pkt.field`.
    Field(String, String, Span),
    /// A state scalar `x`.
    Scalar(String, Span),
    /// A state array element `arr[idx]`.
    Array(String, Box<Expr>, Span),
}

impl LValue {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            LValue::Field(_, _, s) | LValue::Scalar(_, s) | LValue::Array(_, _, s) => *s,
        }
    }
}

/// A statement. Domino has only assignments and (nested) conditionals;
/// everything else in Table 1 is banned.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // struct-variant fields are documented on the variant
pub enum Stmt {
    /// `lhs = rhs;` (compound assignments and `++`/`--` are desugared to
    /// this form by the parser).
    Assign { lhs: LValue, rhs: Expr, span: Span },
    /// `if (cond) { .. } else { .. }`. A missing else is an empty vec.
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
        span: Span,
    },
}

impl Stmt {
    /// The source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. } | Stmt::If { span, .. } => *span,
        }
    }
}

/// A `#define NAME <const-expr>` directive. The value expression is folded
/// to a constant during semantic analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Define {
    /// Macro name.
    pub name: String,
    /// Value expression (folded to a constant by sema).
    pub value: Expr,
    /// Source span of the directive.
    pub span: Span,
}

/// A `struct Name { int f; ... };` declaration describing the packet
/// headers and metadata visible to the transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDecl {
    /// Struct type name.
    pub name: String,
    /// Field names in declaration order.
    pub fields: Vec<(String, Span)>,
    /// Source span of the declaration.
    pub span: Span,
}

/// A global state variable: `int x = 0;` or `int arr[SIZE] = {0};`.
///
/// State variables persist across packets — they are *the* algorithmic
/// state the paper is about.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// State variable name.
    pub name: String,
    /// `None` for scalars; `Some(size-expr)` for arrays. The size must fold
    /// to a positive constant.
    pub size: Option<Expr>,
    /// Initializer expression (defaults to 0). For arrays this is the value
    /// every element starts with (`= {v}` syntax).
    pub init: Option<Expr>,
    /// Source span of the declaration.
    pub span: Span,
}

/// The packet transaction: `void name(struct StructName param) { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transaction {
    /// Transaction (function) name.
    pub name: String,
    /// Name of the packet struct type.
    pub struct_name: String,
    /// Name of the packet parameter (usually `pkt` or `p`).
    pub param: String,
    /// The transaction body.
    pub body: Vec<Stmt>,
    /// Source span of the signature.
    pub span: Span,
}

/// A complete parsed Domino program: defines, one packet struct, state
/// declarations, and exactly one packet transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// `#define` directives.
    pub defines: Vec<Define>,
    /// Struct declarations (packet layout).
    pub structs: Vec<StructDecl>,
    /// Persistent state declarations.
    pub globals: Vec<GlobalDecl>,
    /// The packet transaction.
    pub transaction: Transaction,
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v, _) => write!(f, "{v}"),
            Expr::Ident(n, _) => write!(f, "{n}"),
            Expr::Field(b, n, _) => write!(f, "{b}.{n}"),
            Expr::Index(n, i, _) => write!(f, "{n}[{i}]"),
            Expr::Unary(op, e, _) => write!(f, "{}({e})", op.symbol()),
            Expr::Binary(op, a, b, _) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Ternary(c, t, e, _) => write!(f, "({c} ? {t} : {e})"),
            Expr::Call(n, args, _) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fld(name: &str) -> Expr {
        Expr::Field("pkt".into(), name.into(), Span::SYNTH)
    }

    #[test]
    fn binop_eval_matches_c_semantics() {
        assert_eq!(BinOp::Add.eval(i32::MAX, 1), i32::MIN); // wrapping
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(7, 0), 0); // total semantics
        assert_eq!(BinOp::Mod.eval(7, 0), 0);
        assert_eq!(BinOp::Shl.eval(1, 33), 2); // shift amount masked to 5 bits
        assert_eq!(BinOp::And.eval(3, 0), 0);
        assert_eq!(BinOp::And.eval(3, -1), 1);
        assert_eq!(BinOp::Lt.eval(-1, 0), 1);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(i32::MIN), i32::MIN); // wrapping
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(42), 0);
        assert_eq!(UnOp::BitNot.eval(0), -1);
    }

    #[test]
    fn structural_equality_ignores_spans() {
        let a = Expr::Field("pkt".into(), "id".into(), Span::new(1, 2, 1, 1));
        let b = Expr::Field("pkt".into(), "id".into(), Span::new(9, 10, 3, 4));
        assert!(a.structurally_equal(&b));
        let c = Expr::Field("pkt".into(), "other".into(), Span::SYNTH);
        assert!(!a.structurally_equal(&c));
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(fld("a")),
            Box::new(Expr::Ternary(
                Box::new(fld("c")),
                Box::new(fld("t")),
                Box::new(Expr::Int(1, Span::SYNTH)),
                Span::SYNTH,
            )),
            Span::SYNTH,
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 6);
    }

    #[test]
    fn map_rewrites_bottom_up() {
        // Replace every Int(1) with Int(2).
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Int(1, Span::SYNTH)),
            Box::new(Expr::Int(1, Span::SYNTH)),
            Span::SYNTH,
        );
        let out = e.map(&mut |e| match e {
            Expr::Int(1, s) => Expr::Int(2, s),
            other => other,
        });
        match out {
            Expr::Binary(BinOp::Add, a, b, _) => {
                assert!(matches!(*a, Expr::Int(2, _)));
                assert!(matches!(*b, Expr::Int(2, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn statelessness_detection() {
        assert!(fld("a").is_stateless());
        let stateful = Expr::Index("arr".into(), Box::new(fld("i")), Span::SYNTH);
        assert!(!stateful.is_stateless());
        let scalar = Expr::Ident("counter".into(), Span::SYNTH);
        assert!(!scalar.is_stateless());
    }

    #[test]
    fn display_round_trips_shape() {
        let e = Expr::Ternary(
            Box::new(Expr::Binary(
                BinOp::Gt,
                Box::new(fld("tmp")),
                Box::new(Expr::Int(5, Span::SYNTH)),
                Span::SYNTH,
            )),
            Box::new(fld("new_hop")),
            Box::new(fld("saved_hop")),
            Span::SYNTH,
        );
        assert_eq!(
            e.to_string(),
            "((pkt.tmp > 5) ? pkt.new_hop : pkt.saved_hop)"
        );
    }
}
