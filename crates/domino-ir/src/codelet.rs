//! Codelets and the Pipelined Virtual Switch Machine (PVSM).
//!
//! After pipelining (§4.2), a transaction becomes a **codelet pipeline**: a
//! sequence of stages, each holding codelets that execute in parallel. A
//! codelet is a sequential block of TAC statements that must execute
//! atomically — one strongly connected component of the dependency graph.
//! PVSM places no computational or resource constraints (like LLVM's
//! unlimited virtual registers); those are applied during code generation.

use crate::tac::TacStmt;
use std::collections::BTreeSet;
use std::fmt;

/// A sequential block of TAC statements that must execute atomically within
/// one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Codelet {
    /// Statements in dependency (topological) order.
    pub stmts: Vec<TacStmt>,
}

impl Codelet {
    /// Creates a codelet from ordered statements.
    pub fn new(stmts: Vec<TacStmt>) -> Self {
        Codelet { stmts }
    }

    /// True if the codelet touches no state (pure packet-field compute).
    pub fn is_stateless(&self) -> bool {
        self.state_vars().is_empty()
    }

    /// Names of the state variables this codelet reads or writes.
    pub fn state_vars(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for s in &self.stmts {
            if let Some(n) = s.state_read() {
                out.insert(n);
            }
            if let Some(n) = s.state_written() {
                out.insert(n);
            }
        }
        out
    }

    /// Packet fields read by the codelet from *outside* (i.e. not produced
    /// by an earlier statement of the same codelet).
    pub fn external_reads(&self) -> BTreeSet<&str> {
        let mut produced: BTreeSet<&str> = BTreeSet::new();
        let mut out = BTreeSet::new();
        for s in &self.stmts {
            for r in s.fields_read() {
                if !produced.contains(r) {
                    out.insert(r);
                }
            }
            if let Some(w) = s.field_written() {
                produced.insert(w);
            }
        }
        out
    }

    /// Packet fields written by the codelet.
    pub fn fields_written(&self) -> BTreeSet<&str> {
        self.stmts
            .iter()
            .filter_map(|s| s.field_written())
            .collect()
    }
}

impl fmt::Display for Codelet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.stmts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// The PVSM intermediate representation: stages of codelets, unconstrained
/// by width, depth, or atom capability.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PvsmPipeline {
    /// `stages[i]` holds the codelets running in parallel in stage `i`.
    pub stages: Vec<Vec<Codelet>>,
}

impl PvsmPipeline {
    /// Number of stages (pipeline depth).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Maximum number of codelets in any stage (pipeline width actually
    /// used).
    pub fn max_width(&self) -> usize {
        self.stages.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Maximum number of *stateful* codelets in any stage.
    pub fn max_stateful_width(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.iter().filter(|c| !c.is_stateless()).count())
            .max()
            .unwrap_or(0)
    }

    /// Total number of codelets.
    pub fn codelet_count(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }

    /// Iterates all codelets with their stage index.
    pub fn iter_codelets(&self) -> impl Iterator<Item = (usize, &Codelet)> {
        self.stages
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.iter().map(move |c| (i, c)))
    }
}

impl fmt::Display for PvsmPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, stage) in self.stages.iter().enumerate() {
            writeln!(f, "=== Stage {} ===", i + 1)?;
            for (j, c) in stage.iter().enumerate() {
                let tag = if c.is_stateless() {
                    "stateless"
                } else {
                    "stateful"
                };
                writeln!(f, "--- codelet {}.{} ({tag}) ---", i + 1, j + 1)?;
                writeln!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tac::{Operand, StateRef, TacRhs};
    use domino_ast::BinOp;

    fn read(dst: &str, var: &str) -> TacStmt {
        TacStmt::ReadState {
            dst: dst.into(),
            state: StateRef::Scalar(var.into()),
        }
    }
    fn write(var: &str, src: &str) -> TacStmt {
        TacStmt::WriteState {
            state: StateRef::Scalar(var.into()),
            src: Operand::Field(src.into()),
        }
    }
    fn add(dst: &str, a: &str, b: i32) -> TacStmt {
        TacStmt::Assign {
            dst: dst.into(),
            rhs: TacRhs::Binary(BinOp::Add, Operand::Field(a.into()), Operand::Const(b)),
        }
    }

    #[test]
    fn statefulness_detected() {
        let stateless = Codelet::new(vec![add("t", "a", 1)]);
        assert!(stateless.is_stateless());
        let stateful = Codelet::new(vec![read("t", "c"), add("t2", "t", 1), write("c", "t2")]);
        assert!(!stateful.is_stateless());
        assert_eq!(
            stateful.state_vars().into_iter().collect::<Vec<_>>(),
            vec!["c"]
        );
    }

    #[test]
    fn external_reads_exclude_internal_products() {
        let c = Codelet::new(vec![read("t", "c"), add("t2", "t", 1), write("c", "t2")]);
        // `t` and `t2` are produced internally; no external packet reads.
        assert!(c.external_reads().is_empty());
        let c2 = Codelet::new(vec![add("x", "incoming", 3)]);
        assert_eq!(
            c2.external_reads().into_iter().collect::<Vec<_>>(),
            vec!["incoming"]
        );
    }

    #[test]
    fn pipeline_stats() {
        let p = PvsmPipeline {
            stages: vec![
                vec![
                    Codelet::new(vec![add("a", "x", 1)]),
                    Codelet::new(vec![add("b", "x", 2)]),
                ],
                vec![Codelet::new(vec![read("t", "s"), write("s", "a")])],
            ],
        };
        assert_eq!(p.depth(), 2);
        assert_eq!(p.max_width(), 2);
        assert_eq!(p.max_stateful_width(), 1);
        assert_eq!(p.codelet_count(), 3);
    }

    #[test]
    fn display_labels_stages() {
        let p = PvsmPipeline {
            stages: vec![vec![Codelet::new(vec![add("a", "x", 1)])]],
        };
        let text = p.to_string();
        assert!(text.contains("=== Stage 1 ==="), "{text}");
        assert!(text.contains("stateless"), "{text}");
    }
}
