//! # domino — packet transactions for line-rate switches
//!
//! A faithful, complete Rust implementation of *Packet Transactions:
//! High-Level Programming for Line-Rate Switches* (Sivaraman et al.,
//! SIGCOMM 2016): the **Domino** language, its all-or-nothing compiler,
//! and the **Banzai** machine model for programmable line-rate switch
//! pipelines, plus the paper's hardware cost model, P4 backend, and the
//! Table 4 algorithm suite.
//!
//! This crate is the facade: it re-exports the workspace and offers
//! one-call helpers for the common path.
//!
//! ## Quickstart
//!
//! ```
//! use domino::prelude::*;
//!
//! // A packet transaction: sequential code, atomic and isolated across
//! // packets.
//! let src = r#"
//!     struct Packet { int sport; int dport; int bucket; int count; };
//!     int counters[256] = {0};
//!     void count_flows(struct Packet pkt) {
//!         pkt.bucket = hash2(pkt.sport, pkt.dport) % 256;
//!         counters[pkt.bucket] = counters[pkt.bucket] + 1;
//!         pkt.count = counters[pkt.bucket];
//!     }
//! "#;
//!
//! // Compile for a Banzai machine whose stateful atom is ReadAddWrite.
//! let target = Target::banzai(AtomKind::Raw);
//! let pipeline = domino::compile(src, &target).expect("compiles at line rate");
//! assert_eq!(pipeline.max_stateful_kind(), Some(AtomKind::Raw));
//!
//! // Run packets through the machine: one packet per clock cycle.
//! let mut machine = Machine::new(pipeline);
//! let out = machine.process(Packet::new().with("sport", 99).with("dport", 80));
//! assert_eq!(out.get("count"), Some(1));
//! ```
//!
//! ## Streaming ingestion
//!
//! Whole-switch runs pull packets from a [`PacketSource`](banzai::PacketSource)
//! through the unified `run` builder, so a trace never has to be
//! materialized — memory stays bounded however long the run:
//!
//! ```
//! use domino::prelude::*;
//!
//! let mut sw = Switch::new_slot(
//!     &banzai::AtomPipeline::passthrough("in"),
//!     &banzai::AtomPipeline::passthrough("out"),
//!     64,
//! )
//! .unwrap();
//!
//! // One million generated packets, never held in memory at once: the
//! // source yields them on demand and the sink consumes them as they
//! // depart.
//! let src = GenSource::with_len(1_000_000, |i| {
//!     Some(Packet::new().with("flow", (i % 97) as i32))
//! });
//! let stats = sw.run(src).for_each(|_pkt| {}).unwrap();
//! assert_eq!(stats.offered, 1_000_000);
//! assert_eq!(stats.transmitted, 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atom_synth;
pub use banzai;
pub use domino_ast;
pub use domino_compiler;
pub use domino_ir;
pub use hardware_model;
pub use p4_backend;

use banzai::machine::AtomPipeline;
use banzai::Target;
use domino_ast::Diagnostic;

/// Commonly used types, for `use domino::prelude::*`.
pub mod prelude {
    pub use banzai::wire::{
        deparse, encode, parse, BoundParser, FrameSpec, ParseVerdict, WireConfig, WirePacket,
    };
    pub use banzai::{
        Accounting, AtomKind, Backpressure, DropCounters, DropReason, FailAfter, FaultCause,
        FaultKind, FaultPlan, FaultReport, FaultSpec, FaultyEngine, Fifo, FrameGenSource, FrameRun,
        FrameSliceSource, FrameSource, GenSource, HierPifo, IntoFrameSource, IntoPacketSource,
        Machine, PacketSource, Pifo, Rewind, Run, RunStats, SchedDeparture, SchedKey, SchedRun,
        SchedSpec, Scheduler, ShardConfig, ShardError, ShardSalvage, ShardedFrameRun, ShardedRun,
        ShardedSchedRun, ShardedSwitch, SliceSource, SlotMachine, SourceError, SourceFault,
        SteerMode, Switch, SwitchError, Target,
    };
    pub use domino_ir::{Packet, StateStore};
}

/// Compiles a Domino source program for a Banzai target (all-or-nothing:
/// the pipeline runs at line rate, or compilation fails with a diagnostic).
pub fn compile(source: &str, target: &Target) -> Result<AtomPipeline, Diagnostic> {
    domino_compiler::compile(source, target)
}

/// Compiles and immediately instantiates a machine with fresh state.
pub fn machine(source: &str, target: &Target) -> Result<banzai::Machine, Diagnostic> {
    Ok(banzai::Machine::new(compile(source, target)?))
}

/// Compiles onto the slot-compiled fast path: fields interned, state
/// resolved to a flat register file, no per-packet string hashing.
/// Bit-identical to [`machine`] — `compile` validates the layout, so the
/// lowering cannot fail on a compiled pipeline.
///
/// ```
/// use domino::prelude::*;
///
/// let src = "struct P { int a; int r; };\nint sum = 0;\n\
///            void acc(struct P pkt) { sum = sum + pkt.a; pkt.r = sum; }";
/// let target = Target::banzai(AtomKind::Raw);
/// let mut fast = domino::slot_machine(src, &target).unwrap();
/// let mut reference = domino::machine(src, &target).unwrap();
/// let pkt = Packet::new().with("a", 5).with("r", 0);
/// assert_eq!(fast.process(pkt.clone()), reference.process(pkt));
/// ```
pub fn slot_machine(source: &str, target: &Target) -> Result<banzai::SlotMachine, Diagnostic> {
    let pipeline = compile(source, target)?;
    banzai::SlotMachine::compile(&pipeline).map_err(|e| {
        Diagnostic::global(
            domino_ast::Stage::CodeGen,
            format!("internal error: compiled pipeline has no slot layout: {e}"),
        )
    })
}

/// Compiles an ingress and an egress program and assembles a multi-core
/// [`ShardedSwitch`](banzai::ShardedSwitch): N worker shards, each a
/// slot-compiled switch, fed by RSS-style flow steering derived from the
/// programs' own state indexing.
///
/// Sharding never changes observable behaviour: per-flow outputs and
/// merged state are bit-identical to the serial switch. Programs whose
/// state indexing is not partitionable (global registers, multi-hash
/// sketches) run on a single shard, with the reason recorded in
/// [`ShardPlan::fallback`](banzai::ShardPlan::fallback).
///
/// The threaded run is supervised: worker faults surface as typed
/// [`SwitchError::Fault`](banzai::SwitchError::Fault) values carrying a
/// salvage-and-accounting [`FaultReport`](banzai::FaultReport), never as
/// a process abort (see `banzai::shard`'s failure model).
///
/// ```
/// use domino::prelude::*;
///
/// let ingress = "struct P { int flow; int c; };\nint counts[64] = {0};\n\
///                void count(struct P pkt) {\n\
///                  counts[pkt.flow] = counts[pkt.flow] + 1;\n\
///                  pkt.c = counts[pkt.flow];\n\
///                }";
/// let egress = "struct P { int c; int heavy; };\n\
///               void mark(struct P pkt) { pkt.heavy = pkt.c > 4; }";
/// let mut sw = domino::sharded_switch(
///     ingress,
///     egress,
///     &Target::banzai(AtomKind::Raw),
///     ShardConfig::new(4),
/// )
/// .unwrap();
/// assert_eq!(sw.plan().effective(), 4);
///
/// let trace: Vec<Packet> = (0..40).map(|i| Packet::new().with("flow", i % 8)).collect();
/// let out = sw.run(&trace).collect().unwrap();
/// assert_eq!(out.len(), 40);
/// // Five packets per flow: every flow's last packet is marked heavy.
/// assert_eq!(out.iter().filter(|p| p.get("heavy") == Some(1)).count(), 8);
/// ```
pub fn sharded_switch(
    ingress: &str,
    egress: &str,
    target: &Target,
    config: banzai::ShardConfig,
) -> Result<banzai::ShardedSwitch, Diagnostic> {
    let ingress = compile(ingress, target)?;
    let egress = compile(egress, target)?;
    banzai::ShardedSwitch::new_slot(&ingress, &egress, config).map_err(|e| {
        Diagnostic::global(
            domino_ast::Stage::CodeGen,
            format!("internal error: sharded switch construction failed: {e}"),
        )
    })
}

/// Compiles ingress/egress programs and assembles a slot-compiled
/// [`Switch`](banzai::Switch) whose queue runs a **programmed scheduler**
/// ([`banzai::pifo`]): the ingress program computes the rank field, the
/// configured [`SchedSpec`](banzai::SchedSpec) turns it into departure
/// order. Drive it with the unified run builder:
/// `sw.run(trace).scheduled().collect()`.
///
/// ```
/// use domino::prelude::*;
///
/// // The rank is computed by a packet transaction: two priority bands
/// // by the `urgent` field, FIFO within each (rank = arrival index).
/// let ingress = "struct P { int urgent; int at; int rank; };\n\
///                void classify(struct P pkt) {\n\
///                  pkt.rank = ((1 - pkt.urgent) << 14) + pkt.at;\n\
///                }";
/// let egress = "struct P { int rank; };\nvoid pass(struct P pkt) {}";
/// let mut sw = domino::scheduled_switch(
///     ingress,
///     egress,
///     &Target::banzai(AtomKind::Raw),
///     64,
///     SchedSpec::Pifo { rank: "rank".into() },
/// )
/// .unwrap();
///
/// // A burst where every urgent packet arrives *last*...
/// let trace: Vec<Packet> = (0..8)
///     .map(|i| Packet::new().with("urgent", (i >= 4) as i32).with("at", i))
///     .collect();
/// let deps = sw.run(&trace).scheduled().collect().unwrap();
/// // ...yet departs first, in arrival order within its band.
/// let order: Vec<i32> = deps.iter().map(|d| d.pkt.expect("at")).collect();
/// assert_eq!(order, [4, 5, 6, 7, 0, 1, 2, 3]);
/// ```
pub fn scheduled_switch(
    ingress: &str,
    egress: &str,
    target: &Target,
    capacity: usize,
    sched: banzai::SchedSpec,
) -> Result<banzai::Switch<banzai::SlotMachine>, Diagnostic> {
    let ingress = compile(ingress, target)?;
    let egress = compile(egress, target)?;
    banzai::Switch::new_slot(&ingress, &egress, capacity)
        .map(|sw| sw.with_scheduler(sched))
        .map_err(|e| {
            Diagnostic::global(
                domino_ast::Stage::CodeGen,
                format!("internal error: switch construction failed: {e}"),
            )
        })
}

/// Compiles a program and emits the equivalent P4 (the code a programmer
/// would otherwise write by hand, §5.1).
pub fn compile_to_p4(source: &str, target: &Target) -> Result<String, Diagnostic> {
    let compilation = domino_compiler::normalize(source)?;
    let pipeline = domino_compiler::lower(&compilation, target)?;
    Ok(p4_backend::generate(&compilation, &pipeline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzai::AtomKind;
    use domino_ir::Packet;

    const SRC: &str = "struct P { int a; int total; };\nint sum = 0;\n\
                       void acc(struct P pkt) { sum = sum + pkt.a; pkt.total = sum; }";

    #[test]
    fn facade_compile_and_run() {
        let mut m = machine(SRC, &Target::banzai(AtomKind::Raw)).unwrap();
        let out = m.process(Packet::new().with("a", 5).with("total", 0));
        assert_eq!(out.get("total"), Some(5));
        let out = m.process(Packet::new().with("a", 7).with("total", 0));
        assert_eq!(out.get("total"), Some(12));
    }

    #[test]
    fn facade_p4_generation() {
        let p4 = compile_to_p4(SRC, &Target::banzai(AtomKind::Raw)).unwrap();
        assert!(p4.contains("register<bit<32>>(1) sum;"), "{p4}");
    }

    #[test]
    fn facade_rejects_like_compiler() {
        assert!(compile(SRC, &Target::banzai(AtomKind::Write)).is_err());
    }

    #[test]
    fn facade_wire_roundtrip() {
        use crate::prelude::*;

        let cfg = WireConfig::new();
        let frame = encode(
            &Packet::new().with("sport", 443),
            &cfg,
            &FrameSpec::default(),
        );
        let wp = parse(&frame, &cfg).unwrap();
        assert_eq!(wp.pkt.get("sport"), Some(443));
        assert_eq!(deparse(&wp.pkt, &wp.layout), frame);
        assert_eq!(
            parse(&frame[..10], &cfg).unwrap_err(),
            ParseVerdict::TruncatedEthernet
        );
    }
}
