//! Property suite for the streaming run API: a switch fed one packet at
//! a time from a [`PacketSource`] / [`FrameSource`] must be
//! **bit-identical** to the same switch fed a materialized slice — same
//! outputs, same drop counters, same exported state — across every
//! geometry the sharded runtime supports. The bounded-memory path is not
//! allowed to buy its memory profile with even one bit of divergence.
//!
//! * `GenSource` (pull-based generator) vs `&[Packet]` (slice) on the
//!   threaded [`ShardedSwitch`], across shard counts 1..=8, queue
//!   capacities (including 0), and batch/ring geometries under
//!   `Backpressure::Block` (under `Shed`, *which* packets drop is
//!   pacing-dependent by design, so that policy holds conservation
//!   instead of bit-identity);
//! * the same equivalence through the scheduler for all three
//!   disciplines (PIFO, strict priority, shaping), departures compared
//!   as full `SchedDeparture` records;
//! * the wire path: a `FrameGenSource` yielding valid, truncated, and
//!   garbage frames vs the equivalent frame slice;
//! * `for_each` vs `collect`: the sink-based terminal sees the same
//!   stream and reports [`RunStats`] that balance with the counters;
//! * every mappable Table 4 algorithm, streamed vs materialized on the
//!   serial and 4-way sharded switches.

use banzai::wire::{self, FrameSpec, WireConfig};
use banzai::{
    AtomKind, AtomPipeline, Backpressure, GenSource, SchedSpec, ShardConfig, ShardedSwitch, Switch,
    Target,
};
use domino_ir::Packet;
use proptest::prelude::*;

/// A per-flow counter (partitionable: real fan-out at every shard count).
const COUNTER: &str = "struct P { int flow; int c; };\nint counts[64] = {0};\n\
                       void count(struct P pkt) {\n\
                         counts[pkt.flow] = counts[pkt.flow] + 1;\n\
                         pkt.c = counts[pkt.flow];\n\
                       }";

fn counter_pipeline() -> AtomPipeline {
    domino_compiler::compile(COUNTER, &Target::banzai(AtomKind::Raw)).unwrap()
}

fn to_trace(flows: &[i32]) -> Vec<Packet> {
    flows
        .iter()
        .map(|&f| Packet::new().with("flow", f).with("c", 0))
        .collect()
}

/// A generator source that replays `trace` one packet at a time — the
/// streamed twin of passing `&trace` directly.
fn gen_of(trace: &[Packet]) -> GenSource<impl FnMut(u64) -> Option<Packet>> {
    let owned: Vec<Packet> = trace.to_vec();
    GenSource::with_len(owned.len() as u64, move |i| Some(owned[i as usize].clone()))
}

fn capacity_of(sel: usize) -> usize {
    [0, 1, 4, 512][sel]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streamed == materialized on the threaded sharded switch, for every
    /// blocking geometry: outputs, drop counters, merged ingress state,
    /// and the `RunStats` books all agree. (Under `Backpressure::Shed`
    /// drops depend on live ring occupancy — source pacing is allowed to
    /// change *which* packets shed, so bit-identity is a `Block`-only
    /// contract; `sharded_streamed_conserves_under_shed` covers the other
    /// policy.)
    #[test]
    fn sharded_streamed_equals_materialized(
        flows in proptest::collection::vec(0..64i32, 0..400),
        shards in 1..=8usize,
        cap in 0..=3usize,
        batch in 1..=64usize,
        ring in 1..=8usize,
    ) {
        let ingress = counter_pipeline();
        let egress = AtomPipeline::passthrough("egress");
        let cfg = ShardConfig::new(shards)
            .with_capacity(capacity_of(cap))
            .with_batch(batch)
            .with_ring(ring)
            .with_backpressure(Backpressure::Block);
        let trace = to_trace(&flows);

        let mut materialized = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
        let expect = materialized.run(&trace).collect().expect("no faults armed");

        let mut streamed = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let mut got = Vec::new();
        let stats = streamed
            .run(gen_of(&trace))
            .for_each(|p| got.push(p))
            .expect("generator source cannot fail");

        prop_assert_eq!(got, expect, "streamed outputs diverged from materialized");
        prop_assert_eq!(stats.offered, trace.len() as u64);
        prop_assert_eq!(stats.transmitted, streamed.transmitted());
        prop_assert_eq!(streamed.transmitted(), materialized.transmitted());
        prop_assert_eq!(
            streamed.drop_counters(),
            materialized.drop_counters(),
            "drop counters diverged"
        );
        prop_assert_eq!(
            streamed.export_merged_ingress_state().unwrap(),
            materialized.export_merged_ingress_state().unwrap(),
            "merged ingress state diverged"
        );
    }

    /// Under `Backpressure::Shed` the streamed run still keeps perfect
    /// books — offered == transmitted + drops, outputs match the
    /// transmitted counter — even though *which* packets shed is pacing-
    /// dependent and may differ from a slice-fed run.
    #[test]
    fn sharded_streamed_conserves_under_shed(
        flows in proptest::collection::vec(0..64i32, 0..400),
        shards in 1..=8usize,
        cap in 0..=3usize,
        batch in 1..=64usize,
        ring in 1..=8usize,
    ) {
        let ingress = counter_pipeline();
        let egress = AtomPipeline::passthrough("egress");
        let cfg = ShardConfig::new(shards)
            .with_capacity(capacity_of(cap))
            .with_batch(batch)
            .with_ring(ring)
            .with_backpressure(Backpressure::Shed);
        let trace = to_trace(&flows);

        let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let mut got = Vec::new();
        let stats = sw
            .run(gen_of(&trace))
            .for_each(|p| got.push(p))
            .expect("generator source cannot fail");

        prop_assert_eq!(stats.offered, trace.len() as u64);
        prop_assert_eq!(got.len() as u64, sw.transmitted());
        prop_assert_eq!(
            sw.transmitted() + sw.drops(),
            trace.len() as u64,
            "offered {} != transmitted {} + dropped {}",
            trace.len(), sw.transmitted(), sw.drops()
        );
        if capacity_of(cap) == 0 {
            prop_assert_eq!(sw.transmitted(), 0);
        }
    }
}

fn spec_of(sel: usize) -> SchedSpec {
    match sel {
        0 => SchedSpec::Pifo { rank: "c".into() },
        1 => SchedSpec::Priority {
            class: "flow".into(),
            rank: "c".into(),
        },
        _ => SchedSpec::Shaping { rank: "c".into() },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same equivalence through the scheduler: for each of the three
    /// disciplines, a streamed sched run departs identically to the
    /// materialized one — full departure records, including the
    /// `sched_full` overflow pattern at tight capacities.
    #[test]
    fn scheduled_streamed_equals_materialized_for_every_discipline(
        flows in proptest::collection::vec(0..8i32, 0..200),
        discipline in 0..3usize,
        cap in 0..=3usize,
    ) {
        let ingress = counter_pipeline();
        let egress = AtomPipeline::passthrough("egress");
        let capacity = capacity_of(cap);
        let trace = to_trace(&flows);

        let mut materialized = Switch::new_slot(&ingress, &egress, capacity)
            .unwrap()
            .with_scheduler(spec_of(discipline));
        let expect = materialized
            .run(&trace)
            .scheduled()
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");

        let mut streamed = Switch::new_slot(&ingress, &egress, capacity)
            .unwrap()
            .with_scheduler(spec_of(discipline));
        let got = streamed
            .run(gen_of(&trace))
            .scheduled()
            .collect()
            .expect("generator source cannot fail");

        prop_assert_eq!(got, expect, "streamed departures diverged");
        prop_assert_eq!(
            streamed.drop_counters().clone(),
            materialized.drop_counters().clone()
        );
    }
}

/// A byte buffer that is sometimes a valid frame, sometimes a truncated
/// one, sometimes garbage — the streamed wire path must agree with the
/// materialized one on all of them.
fn any_frame() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        2 => (0..60_000i32).prop_map(|sport| {
            wire::encode(
                &Packet::new().with("sport", sport),
                &WireConfig::new(),
                &FrameSpec::default(),
            )
        }),
        2 => (0..60_000i32, 0..70usize).prop_map(|(sport, cut)| {
            let f = wire::encode(
                &Packet::new().with("sport", sport),
                &WireConfig::new(),
                &FrameSpec::default(),
            );
            let keep = cut.min(f.len());
            f[..keep].to_vec()
        }),
        1 => proptest::collection::vec(any::<u8>(), 0..80),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wire-path equivalence: a `FrameGenSource` lending frames one at a
    /// time produces the same egress bytes and the same per-verdict parse
    /// counters as the frame slice.
    #[test]
    fn wire_streamed_equals_materialized(
        frames in proptest::collection::vec(any_frame(), 0..40),
        cap in 0..=2usize,
    ) {
        let capacity = [0, 1, 256][cap];
        let cfg = WireConfig::new();

        let mut materialized = Switch::new(
            AtomPipeline::passthrough("in"),
            AtomPipeline::passthrough("out"),
            capacity,
        );
        let expect = materialized
            .run_frames(&frames, &cfg)
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");

        let mut streamed = Switch::new(
            AtomPipeline::passthrough("in"),
            AtomPipeline::passthrough("out"),
            capacity,
        );
        let owned = frames.clone();
        let src = banzai::FrameGenSource::new(move |i| owned.get(i as usize).cloned());
        let mut got = Vec::new();
        let stats = streamed
            .run_frames(src, &cfg)
            .for_each(|f| got.push(f))
            .expect("generator source cannot fail");

        prop_assert_eq!(got, expect, "streamed egress frames diverged");
        prop_assert_eq!(stats.offered, frames.len() as u64);
        prop_assert_eq!(stats.transmitted, streamed.transmitted());
        prop_assert_eq!(
            streamed.drop_counters().clone(),
            materialized.drop_counters().clone(),
            "parse/drop counters diverged"
        );
    }
}

/// `for_each` and `collect` are the same stream with different
/// terminals: the sink sees exactly the collected packets, in order, and
/// the returned stats balance against the switch counters.
#[test]
fn for_each_and_collect_see_the_same_stream() {
    let ingress = counter_pipeline();
    let egress = AtomPipeline::passthrough("egress");
    let trace = to_trace(&(0..500).map(|i| i % 7).collect::<Vec<_>>());

    let mut a = Switch::new_slot(&ingress, &egress, 32).unwrap();
    let collected = a
        .run(&trace)
        .collect()
        .expect("slice-backed sources cannot fail mid-stream");

    let mut b = Switch::new_slot(&ingress, &egress, 32).unwrap();
    let mut sunk = Vec::new();
    let stats = b
        .run(&trace)
        .for_each(|p| sunk.push(p))
        .expect("slice-backed sources cannot fail mid-stream");

    assert_eq!(sunk, collected);
    assert_eq!(stats.offered, trace.len() as u64);
    assert_eq!(stats.transmitted, collected.len() as u64);
    assert_eq!(
        stats.offered,
        stats.transmitted + b.drops(),
        "stats must balance with the drop counters"
    );
}

/// Source-independence across the whole algorithm suite: for every
/// Table 4 program that maps to an atom, a streamed run produces the
/// same outputs and exported state as the materialized one — on the
/// serial switch and 4-way sharded.
#[test]
fn streamed_equals_materialized_for_every_table4_algorithm() {
    for a in algorithms::TABLE4
        .iter()
        .filter(|a| a.paper.least_atom.is_some())
    {
        let ingress =
            domino_compiler::compile(a.source, &Target::banzai(a.paper.least_atom.unwrap()))
                .unwrap();
        let egress = AtomPipeline::passthrough("egress");
        let trace = a.trace(500, 0xE14 ^ 0x51CA);

        let mut serial_mat = Switch::new_slot(&ingress, &egress, trace.len()).unwrap();
        let expect = serial_mat
            .run(&trace)
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");
        let mut serial_str = Switch::new_slot(&ingress, &egress, trace.len()).unwrap();
        let got = serial_str
            .run(gen_of(&trace))
            .collect()
            .expect("generator source cannot fail");
        assert_eq!(got, expect, "{}: serial streamed diverged", a.name);
        assert_eq!(
            serial_str.export_ingress_state(),
            serial_mat.export_ingress_state(),
            "{}: serial state diverged",
            a.name
        );

        let cfg = ShardConfig::new(4).with_capacity(trace.len());
        let mut sh_mat = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
        let sh_expect = sh_mat.run(&trace).collect().expect("no faults armed");
        let mut sh_str = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
        let sh_got = sh_str
            .run(gen_of(&trace))
            .collect()
            .expect("generator source cannot fail");
        assert_eq!(sh_got, sh_expect, "{}: sharded streamed diverged", a.name);
        assert_eq!(
            sh_str.export_merged_ingress_state().unwrap(),
            sh_mat.export_merged_ingress_state().unwrap(),
            "{}: sharded merged state diverged",
            a.name
        );
    }
}
