//! Multi-transaction policies (§3.3–§3.4, extension X2).
//!
//! A switch runs several data-plane algorithms, each on its own traffic
//! slice. A *policy* is a list of `(guard, transaction)` pairs: the guard
//! is a predicate over packet fields (it becomes the match key of a
//! match-action table, §3.3); the transaction runs on matching packets.
//!
//! When guards overlap, the paper's proposed composition semantics is to
//! concatenate the transaction bodies in user order, "providing the
//! illusion of a larger transaction" (§3.4). [`Policy::compose`]
//! implements exactly that: it produces a single merged
//! [`CheckedProgram`] in which each constituent body is wrapped in
//! `if (guard) { ... }`, ready for the ordinary compilation pipeline.

use domino_ast::ast::{Expr, Stmt};
use domino_ast::diag::{Diagnostic, Result, Stage};
use domino_ast::{CheckedProgram, Span, StateVar};

/// One `(guard, transaction)` pair.
#[derive(Debug, Clone)]
pub struct GuardedTransaction {
    /// Predicate over packet fields; `None` means "all packets".
    pub guard: Option<Expr>,
    /// The transaction to run when the guard matches.
    pub program: CheckedProgram,
}

/// An ordered list of guarded transactions.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    entries: Vec<GuardedTransaction>,
}

impl Policy {
    /// An empty policy.
    pub fn new() -> Policy {
        Policy::default()
    }

    /// Adds a transaction that runs on every packet.
    // Builder-style by design; the name reads as "add a transaction",
    // not arithmetic, and takes a `CheckedProgram` rather than `Self`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, program: CheckedProgram) -> Policy {
        self.entries.push(GuardedTransaction {
            guard: None,
            program,
        });
        self
    }

    /// Adds a transaction guarded by a predicate (source text, e.g.
    /// `"pkt.tcp_dst_port == 80"`). The guard is parsed immediately;
    /// name resolution against the packet struct happens in
    /// [`Policy::compose`].
    pub fn add_guarded(mut self, guard_src: &str, program: CheckedProgram) -> Result<Policy> {
        let guard = domino_ast::parse_expr(guard_src)?;
        self.entries.push(GuardedTransaction {
            guard: Some(guard),
            program,
        });
        Ok(self)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the policy has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Composes all entries into one packet transaction by concatenating
    /// bodies in order (§3.4), wrapping each guarded body in its guard.
    ///
    /// Requirements checked here:
    /// * all transactions use the same packet parameter name,
    /// * packet field sets are merged (duplicates must agree — they are
    ///   just names),
    /// * state variable names must be disjoint across transactions
    ///   (algorithms own their state),
    /// * guards reference only declared packet fields.
    pub fn compose(&self, name: &str) -> Result<CheckedProgram> {
        let Some(first) = self.entries.first() else {
            return Err(Diagnostic::global(
                Stage::Sema,
                "policy has no transactions",
            ));
        };
        let param = first.program.param.clone();

        let mut packet_fields: Vec<String> = Vec::new();
        let mut state: Vec<StateVar> = Vec::new();
        let mut body: Vec<Stmt> = Vec::new();

        for entry in &self.entries {
            let p = &entry.program;
            if p.param != param {
                return Err(Diagnostic::global(
                    Stage::Sema,
                    format!(
                        "cannot compose: transaction `{}` names its packet `{}` \
                         but `{}` was used earlier (rename the parameter)",
                        p.name, p.param, param
                    ),
                ));
            }
            for f in &p.packet_fields {
                if !packet_fields.contains(f) {
                    packet_fields.push(f.clone());
                }
            }
            for sv in &p.state {
                if state.iter().any(|s| s.name == sv.name) {
                    return Err(Diagnostic::global(
                        Stage::Sema,
                        format!(
                            "cannot compose: state variable `{}` is declared by \
                             more than one transaction; algorithms must own \
                             disjoint state",
                            sv.name
                        ),
                    ));
                }
                state.push(sv.clone());
            }
        }

        for entry in &self.entries {
            match &entry.guard {
                None => body.extend(entry.program.body.iter().cloned()),
                Some(guard) => {
                    let resolved = resolve_guard(guard, &param, &packet_fields)?;
                    body.push(Stmt::If {
                        cond: resolved,
                        then_branch: entry.program.body.clone(),
                        else_branch: Vec::new(),
                        span: Span::SYNTH,
                    });
                }
            }
        }

        Ok(CheckedProgram {
            name: name.to_string(),
            param,
            packet_fields,
            state,
            body,
        })
    }
}

/// Checks a guard references only packet fields of the merged struct.
fn resolve_guard(guard: &Expr, param: &str, fields: &[String]) -> Result<Expr> {
    let mut err: Option<Diagnostic> = None;
    guard.walk(&mut |e| {
        if err.is_some() {
            return;
        }
        match e {
            Expr::Field(base, f, s) => {
                if base != param {
                    err = Some(Diagnostic::new(
                        Stage::Sema,
                        format!("guard must reference the packet as `{param}`, found `{base}`"),
                        *s,
                    ));
                } else if !fields.contains(f) {
                    err = Some(Diagnostic::new(
                        Stage::Sema,
                        format!("guard references unknown packet field `{f}`"),
                        *s,
                    ));
                }
            }
            Expr::Ident(n, s) | Expr::Index(n, _, s) => {
                err = Some(Diagnostic::new(
                    Stage::Sema,
                    format!(
                        "guard may only read packet fields (it becomes a \
                         match-action key); `{n}` is not a packet field"
                    ),
                    *s,
                ));
            }
            Expr::Call(n, _, s) => {
                err = Some(Diagnostic::new(
                    Stage::Sema,
                    format!("guards cannot call intrinsics (`{n}`)"),
                    *s,
                ));
            }
            _ => {}
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(guard.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banzai::{AtomKind, Machine, Target};
    use domino_ast::parse_and_check;
    use domino_ir::Packet;

    fn counter_prog(var: &str) -> CheckedProgram {
        parse_and_check(&format!(
            "struct P {{ int port; int out_{var}; }};\nint {var} = 0;\n\
             void f_{var}(struct P pkt) {{ {var} = {var} + 1; pkt.out_{var} = {var}; }}"
        ))
        .unwrap()
    }

    #[test]
    fn unguarded_composition_concatenates() {
        let policy = Policy::new().add(counter_prog("a")).add(counter_prog("b"));
        let merged = policy.compose("both").unwrap();
        assert_eq!(merged.state.len(), 2);
        assert_eq!(merged.body.len(), 4);
    }

    #[test]
    fn guarded_composition_compiles_and_runs() {
        let policy = Policy::new()
            .add_guarded("pkt.port == 80", counter_prog("web"))
            .unwrap()
            .add_guarded("pkt.port == 53", counter_prog("dns"))
            .unwrap();
        let merged = policy.compose("split_count").unwrap();
        let pipeline = crate::compile_checked(merged, &Target::banzai(AtomKind::Praw)).unwrap();
        let mut m = Machine::new(pipeline);
        for port in [80, 80, 53, 80, 22] {
            m.process(
                Packet::new()
                    .with("port", port)
                    .with("out_web", 0)
                    .with("out_dns", 0),
            );
        }
        assert_eq!(m.state().read_scalar("web"), 3);
        assert_eq!(m.state().read_scalar("dns"), 1);
    }

    #[test]
    fn overlapping_guards_serialize_in_order() {
        // Both guards match port 80; both counters increment — the
        // "one big transaction" illusion of §3.4.
        let policy = Policy::new()
            .add_guarded("pkt.port > 0", counter_prog("a"))
            .unwrap()
            .add_guarded("pkt.port > 10", counter_prog("b"))
            .unwrap();
        let merged = policy.compose("overlap").unwrap();
        let pipeline = crate::compile_checked(merged, &Target::banzai(AtomKind::Praw)).unwrap();
        let mut m = Machine::new(pipeline);
        m.process(
            Packet::new()
                .with("port", 80)
                .with("out_a", 0)
                .with("out_b", 0),
        );
        m.process(
            Packet::new()
                .with("port", 5)
                .with("out_a", 0)
                .with("out_b", 0),
        );
        assert_eq!(m.state().read_scalar("a"), 2);
        assert_eq!(m.state().read_scalar("b"), 1);
    }

    #[test]
    fn state_collision_rejected() {
        let policy = Policy::new().add(counter_prog("a")).add(counter_prog("a"));
        let err = policy.compose("dup").unwrap_err();
        assert!(err.message.contains("disjoint state"), "{err}");
    }

    #[test]
    fn guard_with_unknown_field_rejected() {
        let policy = Policy::new()
            .add_guarded("pkt.nonexistent == 1", counter_prog("a"))
            .unwrap();
        let err = policy.compose("bad").unwrap_err();
        assert!(err.message.contains("unknown packet field"), "{err}");
    }

    #[test]
    fn guard_reading_state_rejected() {
        let policy = Policy::new()
            .add_guarded("some_state == 1", counter_prog("a"))
            .unwrap();
        let err = policy.compose("bad").unwrap_err();
        assert!(err.message.contains("match-action key"), "{err}");
    }

    #[test]
    fn empty_policy_rejected() {
        assert!(Policy::new().compose("none").is_err());
    }

    #[test]
    fn mismatched_param_names_rejected() {
        let a = counter_prog("a");
        let b = parse_and_check(
            "struct P { int port; };\nint z = 0;\nvoid g(struct P p) { z = z + 1; }",
        )
        .unwrap();
        let err = Policy::new().add(a).add(b).compose("mix").unwrap_err();
        assert!(err.message.contains("rename the parameter"), "{err}");
    }
}
