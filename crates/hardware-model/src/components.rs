//! Standard-cell component library.
//!
//! The paper synthesizes its atoms with the Synopsys Design Compiler
//! against a 32 nm standard-cell library (§5.2). We substitute a
//! component-level cost model: every atom circuit is a bag of datapath
//! components (32-bit muxes, adders, comparators, ...) plus a critical
//! path through them. The per-component area/delay constants below are
//! *calibrated* against the paper's published atom figures (Tables 3, 5,
//! 6) — the residuals are asserted by tests and reported by the Table 3/6
//! benches. Relative ordering and growth (the shape of the results) follow
//! from the circuit structures, not from the calibration.

use std::fmt;

/// A 32-bit datapath component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// 2-to-1 multiplexer (32-bit).
    Mux2,
    /// 3-to-1 multiplexer (32-bit).
    Mux3,
    /// 32-bit adder.
    Adder,
    /// 32-bit subtractor.
    Subtractor,
    /// Relational unit (`< <= == != >= >`).
    RelOp,
    /// Bitwise logic unit (and/or/xor).
    Logic,
    /// Barrel shifter.
    Shifter,
    /// 32-bit state register including write-enable fanout.
    Register,
    /// Configuration constant storage (one 32-bit immediate).
    ConstReg,
}

impl Component {
    /// All component kinds.
    pub const ALL: [Component; 9] = [
        Component::Mux2,
        Component::Mux3,
        Component::Adder,
        Component::Subtractor,
        Component::RelOp,
        Component::Logic,
        Component::Shifter,
        Component::Register,
        Component::ConstReg,
    ];

    /// Cell area in µm² (32 nm, least-squares calibrated against the
    /// paper's Table 3; residuals < 7% on every atom).
    pub fn area(self) -> f64 {
        match self {
            Component::Mux2 => 31.0,
            Component::Mux3 => 106.0,
            Component::Adder => 172.0,
            Component::Subtractor => 295.0,
            Component::RelOp => 93.0,
            Component::Logic => 44.0,
            Component::Shifter => 175.0,
            Component::Register => 143.0,
            Component::ConstReg => 44.0,
        }
    }

    /// Propagation delay in picoseconds (registers count clock-to-Q plus
    /// setup). These solve the paper's Table 5/6 critical paths exactly
    /// (IfElseRAW differs by 1 ps — the paper itself attributes its
    /// PRAW/IfElseRAW inversion to synthesis-tool noise).
    pub fn delay(self) -> f64 {
        match self {
            Component::Mux2 => 29.0,
            Component::Mux3 => 30.0,
            Component::Adder => 111.0,
            Component::Subtractor => 145.0,
            Component::RelOp => 158.0,
            Component::Logic => 30.0,
            Component::Shifter => 110.0,
            Component::Register => 147.0,
            Component::ConstReg => 0.0,
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Mux2 => "2-to-1 mux",
            Component::Mux3 => "3-to-1 mux",
            Component::Adder => "adder",
            Component::Subtractor => "subtractor",
            Component::RelOp => "relational unit",
            Component::Logic => "logic unit",
            Component::Shifter => "shifter",
            Component::Register => "state register",
            Component::ConstReg => "constant register",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_and_delays_are_positive() {
        for c in Component::ALL {
            assert!(c.area() > 0.0, "{c}");
            assert!(c.delay() >= 0.0, "{c}");
        }
    }

    #[test]
    fn bigger_muxes_cost_more() {
        assert!(Component::Mux3.area() > Component::Mux2.area());
        assert!(Component::Mux3.delay() > Component::Mux2.delay());
    }

    #[test]
    fn subtractor_exceeds_adder() {
        // Two's-complement subtract needs the inverter row + carry-in.
        assert!(Component::Subtractor.area() > Component::Adder.area());
        assert!(Component::Subtractor.delay() > Component::Adder.delay());
    }
}
