//! The differential throughput harness (E9): replay large seeded traces
//! through the map-based reference engine and the slot-compiled fast path,
//! assert the two are bit-identical (packet-for-packet and
//! state-for-state), and measure the speedup the compile-time field-layout
//! pass buys.
//!
//! Workloads:
//!
//! * **machine workloads** — one Table 4 algorithm on its least-expressive
//!   target, [`Machine::run_trace`] vs a pre-flattened
//!   [`SlotMachine::run_trace_flat`] replay (the line-rate story: parsing
//!   into the PHV happens once at the parser, execution is pure integer
//!   indexing);
//! * **the Figure-1 switch workload** — flowlet at ingress, CoDel (LUT) at
//!   egress, a real queue in between, driven once per engine through
//!   [`Switch::run_trace`] (map-packet edges included on both sides).
//!
//! Every run *is* a differential test: divergence panics, so any recorded
//! [`Measurement`] is also a correctness witness.

use banzai::{Machine, SlotMachine, Switch, Target};
use domino_ir::Packet;
use std::time::Instant;

/// One workload's timed, verified comparison of the two engines.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name (algorithm, or `figure1_switch`).
    pub name: String,
    /// Packets replayed through each engine.
    pub packets: usize,
    /// Wall-clock nanoseconds for the map-based reference path.
    pub map_ns: u128,
    /// Wall-clock nanoseconds for the slot-compiled fast path.
    pub slot_ns: u128,
}

impl Measurement {
    /// Packets per second through the map-based reference path.
    pub fn map_pps(&self) -> f64 {
        self.packets as f64 / (self.map_ns as f64 / 1e9)
    }

    /// Packets per second through the slot-compiled fast path.
    pub fn slot_pps(&self) -> f64 {
        self.packets as f64 / (self.slot_ns as f64 / 1e9)
    }

    /// Fast-path speedup over the reference path.
    pub fn speedup(&self) -> f64 {
        self.map_ns as f64 / self.slot_ns.max(1) as f64
    }
}

/// Compiles `name` on its least-expressive paper target (LUT-extended for
/// `codel_lut`), mirroring `tests/differential.rs`.
fn compile_least(name: &str) -> banzai::AtomPipeline {
    let a = algorithms::by_name(name).unwrap_or_else(|| panic!("unknown algorithm `{name}`"));
    let kind = a.paper.least_atom.expect("algorithm must map");
    let target = if a.name == "codel_lut" {
        Target::banzai_with_lut(kind)
    } else {
        Target::banzai(kind)
    };
    domino_compiler::compile(a.source, &target).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Replays `n` seeded packets of algorithm `name` through both engines and
/// returns the timed, verified measurement.
///
/// # Panics
///
/// Panics if the two paths diverge on any output packet or on final state —
/// the measurement doubles as a differential test.
pub fn machine_workload(name: &str, n: usize, seed: u64) -> Measurement {
    let pipeline = compile_least(name);
    let trace = algorithms::by_name(name).unwrap().trace(n, seed);

    let mut map_machine = Machine::new(pipeline.clone());
    let t = Instant::now();
    let map_out = map_machine.run_trace(&trace);
    let map_ns = t.elapsed().as_nanos();

    let mut slot_machine =
        SlotMachine::compile(&pipeline).expect("compiled pipelines are slot-executable");
    // Parse once onto the layout (a real parser fills the PHV exactly
    // once); the timed region is pure slot-indexed execution.
    let flat = slot_machine.flatten_trace(&trace);
    let t = Instant::now();
    let flat_out = slot_machine.run_trace_flat(&flat);
    let slot_ns = t.elapsed().as_nanos();

    // Bit-identical or bust: state…
    assert_eq!(
        *map_machine.state(),
        slot_machine.export_state(),
        "{name}: engines diverged on final state"
    );
    // …and every output packet, realized through the deparser.
    for (i, (m, f)) in map_out.iter().zip(&flat_out).enumerate() {
        let mut realized = trace[i].clone();
        slot_machine.merge_back(f, &mut realized);
        assert_eq!(*m, realized, "{name}: engines diverged at packet {i}");
    }

    Measurement {
        name: name.to_string(),
        packets: n,
        map_ns,
        slot_ns,
    }
}

/// Drives the Figure-1 switch (flowlet ingress, CoDel-LUT egress, bounded
/// queue at 1/3 line rate) once per engine and returns the measurement.
///
/// # Panics
///
/// Panics if outputs, drop counts, transmit counts, or final pipeline
/// state differ between the engines.
pub fn switch_workload(n: usize, seed: u64) -> Measurement {
    let ingress = compile_least("flowlet");
    let egress = compile_least("codel_lut");
    let trace: Vec<Packet> = algorithms::by_name("flowlet").unwrap().trace(n, seed);

    let mut map_switch = Switch::new(ingress.clone(), egress.clone(), 512).with_drain_period(3);
    let t = Instant::now();
    let map_out = map_switch.run_trace(&trace);
    let map_ns = t.elapsed().as_nanos();

    let mut slot_switch = Switch::new_slot(&ingress, &egress, 512)
        .expect("compiled pipelines are slot-executable")
        .with_drain_period(3);
    let t = Instant::now();
    let slot_out = slot_switch.run_trace(&trace);
    let slot_ns = t.elapsed().as_nanos();

    assert_eq!(map_out, slot_out, "switch engines diverged on outputs");
    assert_eq!(
        map_switch.drops(),
        slot_switch.drops(),
        "drop counts diverged"
    );
    assert_eq!(
        map_switch.transmitted(),
        slot_switch.transmitted(),
        "transmit counts diverged"
    );
    assert_eq!(
        map_switch.export_ingress_state(),
        slot_switch.export_ingress_state(),
        "ingress state diverged"
    );
    assert_eq!(
        map_switch.export_egress_state(),
        slot_switch.export_egress_state(),
        "egress state diverged"
    );

    Measurement {
        name: "figure1_switch".to_string(),
        packets: n,
        map_ns,
        slot_ns,
    }
}

/// Renders the measurements as the machine-readable `BENCH_throughput.json`
/// document (hand-rolled: the build environment is offline, no serde).
pub fn render_json(measurements: &[Measurement]) -> String {
    let rows: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"packets\": {},\n      \
                 \"map_ns\": {},\n      \"slot_ns\": {},\n      \
                 \"map_pkts_per_sec\": {:.0},\n      \"slot_pkts_per_sec\": {:.0},\n      \
                 \"speedup\": {:.2},\n      \"identical\": true\n    }}",
                m.name,
                m.packets,
                m.map_ns,
                m.slot_ns,
                m.map_pps(),
                m.slot_pps(),
                m.speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"suite\": \"throughput\",\n  \"engines\": [\"map\", \"slot\"],\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_workload_verifies_and_measures() {
        let m = machine_workload("flowlet", 2_000, 0xBEEF);
        assert_eq!(m.packets, 2_000);
        assert!(m.map_ns > 0 && m.slot_ns > 0);
    }

    #[test]
    fn switch_workload_verifies_and_measures() {
        let m = switch_workload(1_500, 0xF00D);
        assert_eq!(m.name, "figure1_switch");
        assert!(m.map_ns > 0 && m.slot_ns > 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let m = Measurement {
            name: "flowlet".into(),
            packets: 10,
            map_ns: 100,
            slot_ns: 10,
        };
        let doc = render_json(&[m]);
        assert!(doc.contains("\"name\": \"flowlet\""), "{doc}");
        assert!(doc.contains("\"speedup\": 10.00"), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
