//! Heavy-hitter detection with a count-min sketch running on the Banzai
//! machine: replay a skewed (elephants-and-mice) trace and compare the
//! flows the sketch flags against ground truth.
//!
//! Run with: `cargo run --example heavy_hitter_detection`

use domino::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let algo = algorithms::by_name("heavy_hitters").unwrap();
    let pipeline = domino::compile(algo.source, &Target::banzai(AtomKind::Raw))
        .expect("CMS increments need exactly the RAW atom (Table 4)");
    let mut machine = Machine::new(pipeline);

    let trace = algo.trace(30_000, 99);
    let outs = machine.run_trace(&trace);

    // Ground truth packet counts per flow.
    let mut truth: BTreeMap<(i32, i32), i32> = BTreeMap::new();
    for p in &trace {
        *truth
            .entry((p.get("sport").unwrap(), p.get("dport").unwrap()))
            .or_insert(0) += 1;
    }

    // Flows flagged by the data plane (estimate > threshold at any point).
    let mut flagged: BTreeMap<(i32, i32), i32> = BTreeMap::new();
    for (inp, out) in trace.iter().zip(&outs) {
        if out.get("is_heavy") == Some(1) {
            let key = (inp.get("sport").unwrap(), inp.get("dport").unwrap());
            let est = out.get("estimate").unwrap();
            flagged
                .entry(key)
                .and_modify(|e| *e = (*e).max(est))
                .or_insert(est);
        }
    }

    println!("flows flagged heavy (sketch estimate vs true count):");
    let mut missed_heavy = 0;
    for (flow, est) in &flagged {
        println!(
            "  {:?}  estimate {est:>6}  true {:>6}",
            flow,
            truth.get(flow).copied().unwrap_or(0)
        );
        // Count-min never underestimates.
        assert!(*est >= truth[flow] - 1, "CMS underestimated {flow:?}");
    }
    for (flow, n) in &truth {
        if *n > 200 && !flagged.contains_key(flow) {
            missed_heavy += 1;
            println!("  MISSED heavy flow {flow:?} with {n} packets");
        }
    }
    println!(
        "\n{} flows flagged, {} heavy flows missed (elephants always exceed the threshold)",
        flagged.len(),
        missed_heavy
    );
    assert_eq!(missed_heavy, 0);
}
