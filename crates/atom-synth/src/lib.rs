//! # atom-synth — codelet→atom mapping by program synthesis
//!
//! The Domino compiler's code-generation problem (§4.3): given a stateful
//! codelet (one SCC of the dependency graph) and an atom template, find
//! values for the template's configuration parameters such that the
//! configured atom is functionally identical to the codelet — or prove
//! none exist and reject the program. The paper uses the SKETCH program
//! synthesizer; this crate implements the equivalent search:
//!
//! 1. [`sym::collapse`] — fold the codelet into per-state-variable update
//!    expressions (the codelet *is* the functional specification);
//! 2. [`normalize`] — structural rewriting into guarded-update normal form
//!    (the re-parameterizations SKETCH finds by search, done by rule);
//! 3. [`search::enumerate`] — an enumerative fallback/oracle that explores
//!    the template parameter space directly, SKETCH-style;
//! 4. [`verify`] — counterexample-driven equivalence checking of every
//!    produced configuration against the codelet.
//!
//! The top-level entry points are [`synthesize`] (find *some* configuration
//! and the minimal atom kind that holds it) and [`map_to_kind`] (the
//! all-or-nothing check against a specific target's atom).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod normalize;
pub mod search;
pub mod sym;
pub mod verify;

use banzai::atom::StatefulConfig;
use banzai::kind::AtomKind;
use domino_ir::Codelet;
use std::fmt;

/// A successful synthesis: the configuration and the least expressive atom
/// kind that can hold it.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesis {
    /// The filled-in template.
    pub config: StatefulConfig,
    /// The least expressive kind of Table 3 able to execute it.
    pub minimal_kind: AtomKind,
}

/// Why a codelet could not be mapped to any atom (or to the requested
/// kind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthError {
    /// Human-readable reason, forwarded into the compiler's rejection
    /// diagnostic.
    pub message: String,
}

impl SynthError {
    fn new(msg: impl Into<String>) -> Self {
        SynthError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SynthError {}

/// Synthesizes an atom configuration for a stateful codelet, using the
/// structural normalizer first and the enumerative search as fallback.
/// Every configuration is verified against the codelet before being
/// returned.
pub fn synthesize(codelet: &Codelet) -> Result<Synthesis, SynthError> {
    let spec = sym::collapse(codelet).map_err(|e| SynthError::new(e.message))?;

    // Fast path: structural normalization.
    let config = match normalize::normalize_spec(&spec) {
        Ok(config) => config,
        Err(norm_err) => {
            // Fallback: enumerative search over the most expressive
            // single-variable space (the hierarchy means a hit here can
            // still be classified minimally afterwards).
            match search::enumerate(&spec, AtomKind::Nested) {
                Some(config) => config,
                None => return Err(SynthError::new(norm_err.message)),
            }
        }
    };

    verify::verify(&spec, &config).map_err(|cex| {
        SynthError::new(format!("internal synthesis error (unsound rewrite): {cex}"))
    })?;

    let minimal_kind = config.minimal_kind().ok_or_else(|| {
        SynthError::new(
            "codelet's configuration exceeds every atom kind (more than two \
             state variables or tree depth beyond 4-way predication)",
        )
    })?;

    Ok(Synthesis {
        config,
        minimal_kind,
    })
}

/// The all-or-nothing mapping check: synthesize and verify a configuration,
/// then require it to fit the target's `kind`.
///
/// When the normalizer's configuration is too expressive for `kind`, the
/// enumerative search is given a chance to find a *different*
/// parameterization within `kind`'s template — just as SKETCH searches each
/// target's own parameter space (a codelet whose natural decision tree is
/// deep may still have a semantically equivalent shallow configuration).
pub fn map_to_kind(codelet: &Codelet, kind: AtomKind) -> Result<Synthesis, SynthError> {
    let synth = synthesize(codelet)?;
    if synth.minimal_kind > kind {
        let spec = sym::collapse(codelet).map_err(|e| SynthError::new(e.message))?;
        if let Some(config) = search::enumerate(&spec, kind) {
            if verify::verify(&spec, &config).is_ok() {
                if let Some(minimal_kind) = config.minimal_kind() {
                    if minimal_kind <= kind {
                        return Ok(Synthesis {
                            config,
                            minimal_kind,
                        });
                    }
                }
            }
        }
        return Err(SynthError::new(format!(
            "codelet requires the {} atom but the target provides only {}",
            synth.minimal_kind, kind
        )));
    }
    Ok(synth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_ast::BinOp;
    use domino_ir::{Operand, StateRef, TacRhs, TacStmt};

    fn fld(n: &str) -> Operand {
        Operand::Field(n.into())
    }

    /// Flowlet's saved_hop codelet (Figure 3b stage 4-5 stateful atom).
    fn saved_hop_codelet() -> Codelet {
        Codelet::new(vec![
            TacStmt::ReadState {
                dst: "saved_hop".into(),
                state: StateRef::Array {
                    name: "saved_hop".into(),
                    index: fld("id"),
                },
            },
            TacStmt::Assign {
                dst: "out".into(),
                rhs: TacRhs::Ternary(fld("tmp2"), fld("new_hop"), fld("saved_hop")),
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "saved_hop".into(),
                    index: fld("id"),
                },
                src: fld("out"),
            },
        ])
    }

    /// Flowlet's last_time codelet (read + unconditional write).
    fn last_time_codelet() -> Codelet {
        Codelet::new(vec![
            TacStmt::ReadState {
                dst: "last_time".into(),
                state: StateRef::Array {
                    name: "last_time".into(),
                    index: fld("id"),
                },
            },
            TacStmt::WriteState {
                state: StateRef::Array {
                    name: "last_time".into(),
                    index: fld("id"),
                },
                src: fld("arrival"),
            },
        ])
    }

    #[test]
    fn saved_hop_needs_praw() {
        // Conditional write with unchanged else: exactly PRAW (Table 4 says
        // flowlets' least expressive atom is PRAW).
        let synth = synthesize(&saved_hop_codelet()).unwrap();
        assert_eq!(synth.minimal_kind, AtomKind::Praw);
    }

    #[test]
    fn last_time_needs_only_write() {
        let synth = synthesize(&last_time_codelet()).unwrap();
        assert_eq!(synth.minimal_kind, AtomKind::Write);
        // The read flank is delivered to the packet.
        assert_eq!(synth.config.outputs, vec![("last_time".into(), 0)]);
    }

    #[test]
    fn map_to_kind_respects_hierarchy() {
        let c = saved_hop_codelet();
        assert!(map_to_kind(&c, AtomKind::Write).is_err());
        assert!(map_to_kind(&c, AtomKind::Raw).is_err());
        assert!(map_to_kind(&c, AtomKind::Praw).is_ok());
        assert!(map_to_kind(&c, AtomKind::Pairs).is_ok()); // containment
    }

    #[test]
    fn mapping_failure_message_names_kinds() {
        let err = map_to_kind(&saved_hop_codelet(), AtomKind::Raw).unwrap_err();
        assert!(err.message.contains("PRAW"), "{err}");
        assert!(err.message.contains("RAW"), "{err}");
    }

    #[test]
    fn conga_pair_maps_to_pairs() {
        // if (util < best_util) { best_util = util; best_path = path }
        // else if (path == best_path) { best_util = util }
        let c = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "bu".into(),
                state: StateRef::Scalar("best_util".into()),
            },
            TacStmt::ReadState {
                dst: "bp".into(),
                state: StateRef::Scalar("best_path".into()),
            },
            TacStmt::Assign {
                dst: "better".into(),
                rhs: TacRhs::Binary(BinOp::Lt, fld("util"), fld("bu")),
            },
            TacStmt::Assign {
                dst: "same".into(),
                rhs: TacRhs::Binary(BinOp::Eq, fld("path_id"), fld("bp")),
            },
            TacStmt::Assign {
                dst: "nbu1".into(),
                rhs: TacRhs::Ternary(fld("same"), fld("util"), fld("bu")),
            },
            TacStmt::Assign {
                dst: "nbu".into(),
                rhs: TacRhs::Ternary(fld("better"), fld("util"), fld("nbu1")),
            },
            TacStmt::Assign {
                dst: "nbp".into(),
                rhs: TacRhs::Ternary(fld("better"), fld("path_id"), fld("bp")),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("best_util".into()),
                src: fld("nbu"),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("best_path".into()),
                src: fld("nbp"),
            },
        ]);
        let synth = synthesize(&c).unwrap();
        assert_eq!(synth.minimal_kind, AtomKind::Pairs);
        assert_eq!(synth.config.state_refs.len(), 2);
    }

    #[test]
    fn square_rejected_everywhere() {
        let c = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "x".into(),
                state: StateRef::Scalar("x".into()),
            },
            TacStmt::Assign {
                dst: "sq".into(),
                rhs: TacRhs::Binary(BinOp::Mul, fld("x"), fld("x")),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("x".into()),
                src: fld("sq"),
            },
        ]);
        let err = synthesize(&c).unwrap_err();
        assert!(err.message.contains("does not fit"), "{err}");
    }

    #[test]
    fn normalizer_and_search_agree_on_praw_example() {
        // Cross-check the two synthesis engines on the same spec.
        let c = saved_hop_codelet();
        let spec = sym::collapse(&c).unwrap();
        let structural = normalize::normalize_spec(&spec).unwrap();
        let searched = search::enumerate(&spec, AtomKind::Praw).unwrap();
        // Both must verify; they may differ syntactically.
        verify::verify(&spec, &structural).unwrap();
        verify::verify(&spec, &searched).unwrap();
    }

    #[test]
    fn stfq_style_max_plus_add() {
        // last_finish = max(virtual_time_field, old) + len, written in the
        // atom-friendly form: precomputed vt_plus_len outside, codelet:
        //   new = (old > vt) ? old + len : vt_plus_len
        let c = Codelet::new(vec![
            TacStmt::ReadState {
                dst: "lf".into(),
                state: StateRef::Scalar("last_finish".into()),
            },
            TacStmt::Assign {
                dst: "ge".into(),
                rhs: TacRhs::Binary(BinOp::Gt, fld("lf"), fld("vt")),
            },
            TacStmt::Assign {
                dst: "a".into(),
                rhs: TacRhs::Binary(BinOp::Add, fld("lf"), fld("len")),
            },
            TacStmt::Assign {
                dst: "nf".into(),
                rhs: TacRhs::Ternary(fld("ge"), fld("a"), fld("vt_plus_len")),
            },
            TacStmt::WriteState {
                state: StateRef::Scalar("last_finish".into()),
                src: fld("nf"),
            },
        ]);
        let synth = synthesize(&c).unwrap();
        // Guard on state, add in one branch, write in the other: IfElseRAW.
        assert_eq!(synth.minimal_kind, AtomKind::IfElseRaw);
    }
}
