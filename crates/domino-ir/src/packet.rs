//! Packets as seen by the data plane: a bag of named 32-bit fields.
//!
//! Banzai does not model parsing (§2.2) — packets arrive already parsed, so
//! a packet here is simply a map from field name to value. Fields cover
//! both real headers (`sport`, `dport`) and per-packet metadata/temporaries
//! introduced by the programmer (`id`) or by the compiler (SSA temps).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed packet: named 32-bit fields.
///
/// A `BTreeMap` keeps iteration deterministic, which matters for
/// reproducible simulation output and golden tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Packet {
    fields: BTreeMap<String, i32>,
}

impl Packet {
    /// An empty packet.
    pub fn new() -> Self {
        Packet::default()
    }

    /// Builder-style field setter.
    ///
    /// ```
    /// use domino_ir::Packet;
    /// let p = Packet::new().with("sport", 80).with("dport", 443);
    /// assert_eq!(p.get("sport"), Some(80));
    /// ```
    pub fn with(mut self, field: &str, value: i32) -> Self {
        self.set(field, value);
        self
    }

    /// Sets a field (creating it if absent).
    pub fn set(&mut self, field: &str, value: i32) {
        // Overwrites are the common case in the execution hot path; avoid
        // allocating a fresh key String for them.
        if let Some(slot) = self.fields.get_mut(field) {
            *slot = value;
        } else {
            self.fields.insert(field.to_string(), value);
        }
    }

    /// Reads a field, `None` if the packet does not carry it.
    pub fn get(&self, field: &str) -> Option<i32> {
        self.fields.get(field).copied()
    }

    /// Reads a field that the execution model guarantees to exist.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if the field is missing — this
    /// always indicates a compiler bug (a stage consuming a field no earlier
    /// stage produced), never a user error, so failing loudly is correct.
    pub fn expect(&self, field: &str) -> i32 {
        match self.get(field) {
            Some(v) => v,
            None => panic!(
                "internal error: packet field `{field}` read before any write; \
                 fields present: [{}]",
                self.field_names().collect::<Vec<_>>().join(", ")
            ),
        }
    }

    /// Reads a field, defaulting to 0 (uninitialized packet metadata reads
    /// as zero, like uninitialized PHV containers in real switch pipelines).
    pub fn get_or_zero(&self, field: &str) -> i32 {
        self.get(field).unwrap_or(0)
    }

    /// True if the packet carries `field`.
    pub fn has(&self, field: &str) -> bool {
        self.fields.contains_key(field)
    }

    /// Iterates field names in deterministic (sorted) order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.keys().map(|s| s.as_str())
    }

    /// Iterates `(name, value)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i32)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the packet has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Restricts the packet to the given fields (missing ones read as 0).
    ///
    /// Used when comparing pipeline output against the reference
    /// interpreter: compiler-introduced temporaries (SSA renames, flank
    /// reads) are not part of the observable result.
    pub fn project(&self, fields: &[String]) -> Packet {
        let mut out = Packet::new();
        for f in fields {
            out.set(f, self.get_or_zero(f));
        }
        out
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, i32)> for Packet {
    fn from_iter<T: IntoIterator<Item = (String, i32)>>(iter: T) -> Self {
        Packet {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut p = Packet::new();
        p.set("a", 5);
        assert_eq!(p.get("a"), Some(5));
        assert_eq!(p.get("b"), None);
        assert_eq!(p.get_or_zero("b"), 0);
    }

    #[test]
    fn builder_chains() {
        let p = Packet::new().with("x", 1).with("y", -2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get("y"), Some(-2));
    }

    #[test]
    #[should_panic(expected = "read before any write")]
    fn expect_panics_on_missing_field() {
        Packet::new().expect("ghost");
    }

    #[test]
    fn project_restricts_and_zero_fills() {
        let p = Packet::new().with("a", 1).with("b", 2);
        let q = p.project(&["a".into(), "c".into()]);
        assert_eq!(q.get("a"), Some(1));
        assert_eq!(q.get("c"), Some(0));
        assert!(!q.has("b"));
    }

    #[test]
    fn display_is_deterministic() {
        let p = Packet::new().with("z", 3).with("a", 1);
        assert_eq!(p.to_string(), "{a: 1, z: 3}");
    }

    #[test]
    fn overwriting_a_field_keeps_latest() {
        let mut p = Packet::new();
        p.set("a", 1);
        p.set("a", 7);
        assert_eq!(p.get("a"), Some(7));
        assert_eq!(p.len(), 1);
    }
}
