//! The seven stateful atom kinds of Table 3.
//!
//! The paper designs "a containment hierarchy of stateful atoms, where each
//! atom can express all stateful operations that its predecessor can"
//! (§5.2). Each kind is characterized here by a set of *capabilities*; the
//! synthesizer ([`atom-synth`](../../atom-synth)) maps a codelet onto a kind
//! by finding a configuration within these capabilities.

use std::fmt;

/// A stateful atom kind, ordered from least to most expressive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AtomKind {
    /// Read/Write: read the state variable into a packet field, or write a
    /// packet field/constant into it.
    Write,
    /// ReadAddWrite (RAW): additionally add a packet field/constant to the
    /// state variable.
    Raw,
    /// Predicated ReadAddWrite (PRAW): execute a RAW only if a predicate
    /// holds, else leave the state unchanged.
    Praw,
    /// IfElse ReadAddWrite: two separate RAWs, one for each predicate
    /// outcome.
    IfElseRaw,
    /// Subtract: like IfElseRAW but updates may also subtract.
    Sub,
    /// Nested Ifs: two predication levels (4-way predication).
    Nested,
    /// Paired updates: like Nested, on a *pair* of state variables whose
    /// predicates may read both.
    Pairs,
}

/// What a stateful atom kind can express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatefulCaps {
    /// Maximum depth of the predication tree (0 = unconditional update).
    pub max_tree_depth: u8,
    /// Whether the non-taken branch of a depth-1 tree may do anything other
    /// than keep the state unchanged (false for PRAW: "else leave
    /// unchanged").
    pub else_may_update: bool,
    /// Whether updates may add (`x = x + v`).
    pub allow_add: bool,
    /// Whether updates may subtract (`x = x - v`).
    pub allow_sub: bool,
    /// Number of state variables managed atomically.
    pub max_state_vars: u8,
}

impl AtomKind {
    /// All kinds, least to most expressive (the containment hierarchy).
    pub const ALL: [AtomKind; 7] = [
        AtomKind::Write,
        AtomKind::Raw,
        AtomKind::Praw,
        AtomKind::IfElseRaw,
        AtomKind::Sub,
        AtomKind::Nested,
        AtomKind::Pairs,
    ];

    /// The capability set of this kind.
    pub fn caps(self) -> StatefulCaps {
        match self {
            AtomKind::Write => StatefulCaps {
                max_tree_depth: 0,
                else_may_update: false,
                allow_add: false,
                allow_sub: false,
                max_state_vars: 1,
            },
            AtomKind::Raw => StatefulCaps {
                max_tree_depth: 0,
                else_may_update: false,
                allow_add: true,
                allow_sub: false,
                max_state_vars: 1,
            },
            AtomKind::Praw => StatefulCaps {
                max_tree_depth: 1,
                else_may_update: false,
                allow_add: true,
                allow_sub: false,
                max_state_vars: 1,
            },
            AtomKind::IfElseRaw => StatefulCaps {
                max_tree_depth: 1,
                else_may_update: true,
                allow_add: true,
                allow_sub: false,
                max_state_vars: 1,
            },
            AtomKind::Sub => StatefulCaps {
                max_tree_depth: 1,
                else_may_update: true,
                allow_add: true,
                allow_sub: true,
                max_state_vars: 1,
            },
            AtomKind::Nested => StatefulCaps {
                max_tree_depth: 2,
                else_may_update: true,
                allow_add: true,
                allow_sub: true,
                max_state_vars: 1,
            },
            AtomKind::Pairs => StatefulCaps {
                max_tree_depth: 2,
                else_may_update: true,
                allow_add: true,
                allow_sub: true,
                max_state_vars: 2,
            },
        }
    }

    /// The paper's name for this atom (Table 3).
    pub fn paper_name(self) -> &'static str {
        match self {
            AtomKind::Write => "Read/Write",
            AtomKind::Raw => "ReadAddWrite (RAW)",
            AtomKind::Praw => "Predicated ReadAddWrite (PRAW)",
            AtomKind::IfElseRaw => "IfElse ReadAddWrite (IfElseRAW)",
            AtomKind::Sub => "Subtract (Sub)",
            AtomKind::Nested => "Nested Ifs (Nested)",
            AtomKind::Pairs => "Paired updates (Pairs)",
        }
    }

    /// Short identifier used in target names and CLI flags.
    pub fn short_name(self) -> &'static str {
        match self {
            AtomKind::Write => "write",
            AtomKind::Raw => "raw",
            AtomKind::Praw => "praw",
            AtomKind::IfElseRaw => "ifelse_raw",
            AtomKind::Sub => "sub",
            AtomKind::Nested => "nested",
            AtomKind::Pairs => "pairs",
        }
    }

    /// Parses a short identifier.
    pub fn from_short_name(s: &str) -> Option<AtomKind> {
        AtomKind::ALL.iter().copied().find(|k| k.short_name() == s)
    }

    /// True if `self` can express everything `other` can (containment
    /// hierarchy: every kind contains all its predecessors).
    pub fn contains(self, other: AtomKind) -> bool {
        self >= other
    }
}

impl fmt::Display for AtomKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_ordered() {
        for w in AtomKind::ALL.windows(2) {
            assert!(
                w[1] > w[0],
                "{:?} should be more expressive than {:?}",
                w[1],
                w[0]
            );
            assert!(w[1].contains(w[0]));
            assert!(!w[0].contains(w[1]));
        }
    }

    #[test]
    fn caps_grow_monotonically() {
        // Each successor's capabilities are a superset of its predecessor's.
        for w in AtomKind::ALL.windows(2) {
            let (a, b) = (w[0].caps(), w[1].caps());
            assert!(b.max_tree_depth >= a.max_tree_depth);
            assert!(b.else_may_update >= a.else_may_update);
            assert!(b.allow_add >= a.allow_add);
            assert!(b.allow_sub >= a.allow_sub);
            assert!(b.max_state_vars >= a.max_state_vars);
        }
    }

    #[test]
    fn praw_cannot_update_on_else() {
        assert!(!AtomKind::Praw.caps().else_may_update);
        assert!(AtomKind::IfElseRaw.caps().else_may_update);
    }

    #[test]
    fn only_pairs_handles_two_state_vars() {
        for k in AtomKind::ALL {
            let expected = if k == AtomKind::Pairs { 2 } else { 1 };
            assert_eq!(k.caps().max_state_vars, expected, "{k:?}");
        }
    }

    #[test]
    fn short_names_round_trip() {
        for k in AtomKind::ALL {
            assert_eq!(AtomKind::from_short_name(k.short_name()), Some(k));
        }
        assert_eq!(AtomKind::from_short_name("bogus"), None);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(AtomKind::Praw.to_string(), "Predicated ReadAddWrite (PRAW)");
    }
}
