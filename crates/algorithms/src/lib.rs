//! # algorithms — the data-plane algorithm suite of Table 4
//!
//! Every algorithm the paper programs in Domino (§5.1), as Domino source
//! (`src/domino/*.domino`), together with:
//!
//! * the paper's published Table 4 row (least expressive atom, pipeline
//!   shape, LOC counts) for experiment E2's paper-vs-measured comparison,
//! * independent, idiomatic Rust **reference implementations**
//!   ([`mod@reference`]) used for differential testing of compiled pipelines,
//! * **workload generators** ([`workload`]) producing packet traces that
//!   exercise each algorithm's interesting behaviour (flowlet gaps,
//!   heavy-hitter skew, RTT mixes, queue build-ups, TTL churn).
//!
//! The Domino sources are written in the same "atom-friendly" style as the
//! paper's published examples: stateless subexpressions are staged through
//! packet temporaries so that each stateful codelet is a single-ALU update
//! (the compiler performs no algebraic reassociation, and neither did the
//! paper's).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reference;
pub mod sched;
pub mod workload;

use banzai::AtomKind;

/// The published Table 4 row for an algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Least expressive stateful atom (None = "Doesn't map").
    pub least_atom: Option<AtomKind>,
    /// Number of pipeline stages.
    pub stages: usize,
    /// Maximum atoms per stage.
    pub max_atoms_per_stage: usize,
    /// Ingress or egress pipeline.
    pub pipeline: &'static str,
    /// Lines of Domino code reported by the paper.
    pub domino_loc: usize,
    /// Lines of (auto-generated) P4 reported by the paper.
    pub p4_loc: usize,
}

/// One algorithm of the suite.
#[derive(Debug, Clone, Copy)]
pub struct Algorithm {
    /// Short identifier (used by `domc` and the bench harness).
    pub name: &'static str,
    /// Table 4's one-line description.
    pub description: &'static str,
    /// The Domino source text.
    pub source: &'static str,
    /// The paper's Table 4 row.
    pub paper: PaperRow,
    /// Packet fields whose values the reference implementation checks.
    pub output_fields: &'static [&'static str],
}

impl Algorithm {
    /// Builds the independent Rust reference implementation.
    pub fn reference(&self) -> Box<dyn reference::Reference> {
        reference::build(self.name)
    }

    /// Generates a seeded workload trace of `n` packets for this
    /// algorithm.
    pub fn trace(&self, n: usize, seed: u64) -> Vec<domino_ir::Packet> {
        workload::trace_for(self.name, n, seed)
    }

    /// Non-comment, non-blank LOC of the Domino source.
    pub fn domino_loc(&self) -> usize {
        domino_ast::loc::count(self.source)
    }
}

macro_rules! algorithm {
    ($name:literal, $desc:literal, $file:literal, $atom:expr, $stages:literal,
     $atoms:literal, $pipe:literal, $dloc:literal, $ploc:literal, $outputs:expr) => {
        Algorithm {
            name: $name,
            description: $desc,
            source: include_str!(concat!("domino/", $file)),
            paper: PaperRow {
                least_atom: $atom,
                stages: $stages,
                max_atoms_per_stage: $atoms,
                pipeline: $pipe,
                domino_loc: $dloc,
                p4_loc: $ploc,
            },
            output_fields: $outputs,
        }
    };
}

/// The eleven algorithms of Table 4, in the paper's order.
pub const TABLE4: [Algorithm; 11] = [
    algorithm!(
        "bloom_filter",
        "Set membership bit on every packet (3 hash functions)",
        "bloom_filter.domino",
        Some(AtomKind::Write),
        4,
        3,
        "Either",
        29,
        104,
        &["member"]
    ),
    algorithm!(
        "heavy_hitters",
        "Increment Count-Min Sketch on every packet (3 hash functions)",
        "heavy_hitters.domino",
        Some(AtomKind::Raw),
        10,
        9,
        "Either",
        35,
        192,
        &["estimate", "is_heavy"]
    ),
    algorithm!(
        "flowlet",
        "Update saved next hop if flowlet threshold is exceeded",
        "flowlet.domino",
        Some(AtomKind::Praw),
        6,
        2,
        "Ingress",
        37,
        107,
        &["next_hop", "id"]
    ),
    algorithm!(
        "rcp",
        "Accumulate RTT sum if RTT is under maximum allowable RTT",
        "rcp.domino",
        Some(AtomKind::Praw),
        3,
        3,
        "Egress",
        23,
        75,
        &[]
    ),
    algorithm!(
        "sampled_netflow",
        "Sample a packet if packet count reaches N; reset count at N",
        "sampled_netflow.domino",
        Some(AtomKind::IfElseRaw),
        4,
        2,
        "Either",
        18,
        70,
        &["sample"]
    ),
    algorithm!(
        "hull",
        "Update counter for virtual queue",
        "hull.domino",
        Some(AtomKind::Sub),
        7,
        1,
        "Egress",
        26,
        95,
        &["mark"]
    ),
    algorithm!(
        "avq",
        "Update virtual queue size and virtual capacity",
        "avq.domino",
        Some(AtomKind::Nested),
        7,
        3,
        "Ingress",
        36,
        147,
        &["mark"]
    ),
    algorithm!(
        "stfq",
        "Compute packet's virtual start time from last finish time (WFQ)",
        "stfq.domino",
        Some(AtomKind::Nested),
        4,
        2,
        "Ingress",
        29,
        87,
        &["start"]
    ),
    algorithm!(
        "dns_ttl_change",
        "Track number of changes in announced TTL for each domain",
        "dns_ttl_change.domino",
        Some(AtomKind::Nested),
        6,
        3,
        "Ingress",
        27,
        119,
        &["changed", "change_count", "streak"]
    ),
    algorithm!(
        "conga",
        "Update best path's utilization/id if we see a better path",
        "conga.domino",
        Some(AtomKind::Pairs),
        4,
        2,
        "Ingress",
        32,
        89,
        &[]
    ),
    algorithm!(
        "codel",
        "CoDel AQM: drop scheduling via interval/sqrt(count)",
        "codel.domino",
        None,
        15,
        3,
        "Egress",
        57,
        271,
        &["ok_to_drop", "drop"]
    ),
];

/// The X1 extension: CoDel restructured for the look-up-table target
/// (§5.3 future work).
pub const CODEL_LUT: Algorithm = algorithm!(
    "codel_lut",
    "CoDel with the control law as a look-up table (X1 extension)",
    "codel_lut.domino",
    Some(AtomKind::Nested),
    0,
    0,
    "Egress",
    0,
    0,
    &["drop"]
);

/// Looks an algorithm up by name (including `codel_lut`).
pub fn by_name(name: &str) -> Option<Algorithm> {
    TABLE4
        .iter()
        .copied()
        .chain(std::iter::once(CODEL_LUT))
        .find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse_and_check() {
        for a in TABLE4.iter().chain(std::iter::once(&CODEL_LUT)) {
            let checked =
                domino_ast::parse_and_check(a.source).unwrap_or_else(|e| panic!("{}: {e}", a.name));
            assert_eq!(checked.name, a.name, "transaction name matches id");
        }
    }

    #[test]
    fn registry_is_in_paper_order_and_complete() {
        let names: Vec<&str> = TABLE4.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec![
                "bloom_filter",
                "heavy_hitters",
                "flowlet",
                "rcp",
                "sampled_netflow",
                "hull",
                "avq",
                "stfq",
                "dns_ttl_change",
                "conga",
                "codel"
            ]
        );
    }

    #[test]
    fn by_name_finds_all() {
        assert!(by_name("flowlet").is_some());
        assert!(by_name("codel_lut").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn domino_loc_is_in_paper_ballpark() {
        // Our sources are rewritten, not copied, so LOC differs — but the
        // order of magnitude must match (tens of lines, not hundreds).
        for a in &TABLE4 {
            let loc = a.domino_loc();
            assert!(
                (10..=100).contains(&loc),
                "{}: LOC {loc} out of expected range",
                a.name
            );
        }
    }

    #[test]
    fn traces_have_requested_length_and_fields() {
        for a in &TABLE4 {
            let trace = a.trace(16, 7);
            assert_eq!(trace.len(), 16, "{}", a.name);
            assert!(!trace[0].is_empty(), "{}", a.name);
        }
    }
}
