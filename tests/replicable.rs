//! Property suite for the **Replicable** partitioning tier: full sketch
//! replica per shard, elementwise merge at collect time.
//!
//! The contract under test (see `domino_ir::layout::ReplicaSpec` and
//! `banzai::shard`):
//!
//! * **merge algebra**: the elementwise merge is commutative and
//!   associative — permuting the shard snapshots, or folding them
//!   pairwise in any grouping, yields a bit-identical merged state;
//! * **serial equivalence**: the merged state equals the serial
//!   switch's state bit-for-bit (sum of wrapping per-shard
//!   displacements, max over constant stores), at every shard count;
//! * **the (ε, δ) bound**: on both the packet-born and the wire path,
//!   the serial *and* the merged states satisfy the sketch's own
//!   contract — spec replay, overestimate, mass conservation, and the
//!   error bound derived from array geometry
//!   (`bench::sketch::verify_sketch`) — across random traces, shard
//!   counts 1..=8, and sketch geometries.

use banzai::{AtomKind, AtomPipeline, ShardConfig, ShardTier, ShardedSwitch, Switch, Target};
use bench::sketch::{parse_wire_trace, verify_sketch};
use bench::wiregen::{self, GenOptions};
use domino_ir::{Packet, ReplicaSpec, StateStore};
use proptest::prelude::*;

const CAPACITY: usize = 512;
const SEED: u64 = 0x000D_0771_2016;

/// Synthesizes a count-min sketch in Domino: one array per row, each
/// indexed by its own salted hash of `(sport, dport)`. Distinct index
/// fields per row keep it out of the Exact tier (no shared flow key),
/// which is precisely what makes it exercise the replica tier.
fn count_min_source(widths: &[usize]) -> String {
    let mut fields = String::from("int sport; int dport;");
    let mut decls = String::new();
    let mut body = String::new();
    for (r, w) in widths.iter().enumerate() {
        fields.push_str(&format!(" int h{r};"));
        decls.push_str(&format!("int cms{r}[{w}] = {{0}};\n"));
        body.push_str(&format!(
            "  pkt.h{r} = hash3(pkt.sport, pkt.dport, {salt}) % {w};\n\
             \x20 cms{r}[pkt.h{r}] = cms{r}[pkt.h{r}] + 1;\n",
            salt = 1000 + 7 * r
        ));
    }
    format!("struct P {{ {fields} }};\n{decls}void sketch(struct P pkt) {{\n{body}}}\n")
}

fn compile_count_min(widths: &[usize]) -> AtomPipeline {
    domino_compiler::compile(&count_min_source(widths), &Target::banzai(AtomKind::Raw))
        .expect("synthesized count-min compiles")
}

fn to_trace(keys: &[(i32, i32)]) -> Vec<Packet> {
    keys.iter()
        .map(|&(s, d)| {
            let mut p = Packet::new().with("sport", s).with("dport", d);
            for r in 0..4 {
                p = p.with(&format!("h{r}"), 0);
            }
            p
        })
        .collect()
}

/// Runs the serial switch and returns `(state, spec)` where the spec is
/// taken from a sharded plan over the same pipelines.
fn serial_state_and_spec(
    ingress: &AtomPipeline,
    trace: &[Packet],
    shards: usize,
) -> (StateStore, ReplicaSpec, ShardedSwitch) {
    let egress = AtomPipeline::passthrough("egress");
    let mut serial = Switch::new_slot(ingress, &egress, CAPACITY).unwrap();
    serial
        .run(trace)
        .for_each(|_| {})
        .expect("slice-backed sources cannot fail mid-stream");
    let sw = ShardedSwitch::new_slot(ingress, &egress, ShardConfig::new(shards)).unwrap();
    assert_eq!(
        sw.plan().tier(),
        ShardTier::Replicable,
        "synthesized sketch must land in the replica tier: {}",
        sw.plan()
    );
    let spec = sw.plan().ingress_replica().unwrap().clone();
    (serial.export_ingress_state(), spec, sw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shard-order and merge-order permutations of the per-shard
    /// snapshots give identical merged state, and that state is the
    /// serial state — across random traces, shard counts, and
    /// geometries.
    #[test]
    fn merge_is_commutative_and_associative(
        keys in proptest::collection::vec((0..9i32, 0..5i32), 50..250),
        shards in 1..=8usize,
        geometry in prop_oneof![
            Just(vec![16usize, 16]),
            Just(vec![16usize, 32]),
            Just(vec![32usize, 16, 32]),
            Just(vec![16usize, 32, 64]),
        ],
    ) {
        let ingress = compile_count_min(&geometry);
        let trace = to_trace(&keys);
        let (serial_state, spec, mut sw) = serial_state_and_spec(&ingress, &trace, shards);
        sw.run(&trace).collect().expect("no faults armed");

        let snaps: Vec<StateStore> = sw
            .export_shard_states()
            .into_iter()
            .map(|(ingress_state, _)| ingress_state)
            .collect();
        let merged = spec.merge_states(&snaps);
        prop_assert_eq!(&merged, &serial_state, "merged state must equal serial");

        // Commutativity: any shard-order permutation merges identically.
        let mut reversed = snaps.clone();
        reversed.reverse();
        prop_assert_eq!(&spec.merge_states(&reversed), &merged);
        let mut rotated = snaps.clone();
        rotated.rotate_left(shards / 2);
        prop_assert_eq!(&spec.merge_states(&rotated), &merged);

        // Associativity: pairwise left fold == pairwise right fold ==
        // one flat merge.
        let left = snaps
            .iter()
            .skip(1)
            .fold(snaps[0].clone(), |acc, s| {
                spec.merge_states(&[acc, s.clone()])
            });
        prop_assert_eq!(&left, &merged);
        let right = snaps
            .iter()
            .rev()
            .skip(1)
            .fold(snaps.last().unwrap().clone(), |acc, s| {
                spec.merge_states(&[s.clone(), acc])
            });
        prop_assert_eq!(&right, &merged);
    }

    /// The statistical tier holds for the serial state and the sharded
    /// merged state alike: spec replay, overestimate, mass
    /// conservation, and the (ε, δ) bound from array geometry.
    #[test]
    fn epsilon_delta_bound_holds_across_shard_counts(
        keys in proptest::collection::vec((0..9i32, 0..5i32), 80..300),
        shards in 1..=8usize,
        geometry in prop_oneof![
            Just(vec![16usize, 16]),
            Just(vec![32usize, 32]),
            Just(vec![16usize, 32, 64]),
        ],
    ) {
        let ingress = compile_count_min(&geometry);
        let trace = to_trace(&keys);
        let (serial_state, spec, mut sw) = serial_state_and_spec(&ingress, &trace, shards);
        prop_assert!(spec.epsilon().unwrap() > 0.0);
        prop_assert!(spec.delta().unwrap() < 1.0);
        verify_sketch(&spec, &trace, &serial_state, "count-min serial");
        sw.run(&trace).collect().expect("no faults armed");
        let merged = sw.export_merged_ingress_state().unwrap();
        verify_sketch(&spec, &trace, &merged, &format!("count-min@{shards} merged"));
    }
}

/// The acceptance sweep: every Replicable Table 4 program, packet-born
/// and wire, serial and sharded, at 1/2/4/8 shards — the error-bound
/// tier must be green everywhere.
#[test]
fn replicable_programs_honor_their_bound_on_both_paths() {
    for name in ["heavy_hitters", "bloom_filter"] {
        let a = algorithms::by_name(name).unwrap();
        let kind = a.paper.least_atom.unwrap();
        let ingress = domino_compiler::compile(a.source, &Target::banzai(kind)).unwrap();
        let egress = AtomPipeline::passthrough("egress");
        let trace = a.trace(800, SEED);
        let wt = wiregen::wire_trace(&trace, SEED, &GenOptions::default());
        let wire_pkts = parse_wire_trace(&wt.frames, &wt.cfg);
        assert_eq!(wire_pkts.len(), trace.len(), "{name}: no malformed frames");

        // Serial references for both paths.
        let mut serial = Switch::new_slot(&ingress, &egress, CAPACITY).unwrap();
        serial
            .run(&trace)
            .for_each(|_| {})
            .expect("slice-backed sources cannot fail mid-stream");
        let serial_state = serial.export_ingress_state();
        let mut serial_wire = Switch::new_slot(&ingress, &egress, CAPACITY).unwrap();
        serial_wire
            .run_frames(&wt.frames, &wt.cfg)
            .collect()
            .expect("slice-backed sources cannot fail mid-stream");
        let serial_wire_state = serial_wire.export_ingress_state();

        for shards in [1usize, 2, 4, 8] {
            let cfg = ShardConfig::new(shards).with_capacity(CAPACITY);
            let mut sw = ShardedSwitch::new_slot(&ingress, &egress, cfg.clone()).unwrap();
            assert_eq!(sw.plan().tier(), ShardTier::Replicable, "{name}");
            assert_eq!(sw.plan().effective(), shards, "{name}");
            let spec = sw.plan().ingress_replica().unwrap().clone();

            // Packet-born path.
            sw.run(&trace).collect().expect("no faults armed");
            let merged = sw.export_merged_ingress_state().unwrap();
            assert_eq!(merged, serial_state, "{name}@{shards}: merged != serial");
            verify_sketch(&spec, &trace, &serial_state, &format!("{name} serial"));
            verify_sketch(&spec, &trace, &merged, &format!("{name}@{shards} merged"));

            // Wire path: same invariants over the parsed-frame trace.
            let mut wsw = ShardedSwitch::new_slot(&ingress, &egress, cfg).unwrap();
            wsw.run_frames(&wt.frames, &wt.cfg)
                .partitioned()
                .expect("no faults armed");
            let wire_merged = wsw.export_merged_ingress_state().unwrap();
            assert_eq!(
                wire_merged, serial_wire_state,
                "{name}@{shards}: wire merged != wire serial"
            );
            verify_sketch(
                &spec,
                &wire_pkts,
                &serial_wire_state,
                &format!("{name} wire serial"),
            );
            verify_sketch(
                &spec,
                &wire_pkts,
                &wire_merged,
                &format!("{name}@{shards} wire merged"),
            );
        }
    }
}
