//! Repo-wide lint: the deprecated `run_*` trace adapters exist for one
//! release so external callers can migrate, but **in-repo** code must
//! already be on the unified `run(source)` builder. This scan fails if
//! any source file outside the adapter definitions calls one of the old
//! names.
//!
//! `run_trace` itself is not in the pattern set: `Machine::run_trace`
//! (the engine-level trace runner) legitimately shares the name and is
//! not deprecated. Switch-level `run_trace` calls are instead caught by
//! the CI clippy job (`-D warnings` denies deprecation warnings), which
//! uses the compiler's own resolution rather than text.

use std::fs;
use std::path::{Path, PathBuf};

/// The unambiguous deprecated names — these exist only on `Switch` /
/// `ShardedSwitch`, so any textual hit is a real deprecated call.
/// Spelled head + tail so this file's own strings don't self-match.
const FORBIDDEN: [(&str, &str); 6] = [
    (".run_", "stamped("),
    (".run_", "sched_trace("),
    (".run_", "wire_trace("),
    (".run_", "trace_partitioned("),
    (".run_", "trace_instrumented("),
    (".run_", "wire_trace_partitioned("),
];

/// Files allowed to mention the old names: the adapter definitions
/// themselves (and their `#[allow(deprecated)]` coverage tests).
const ADAPTER_FILES: [&str; 2] = ["crates/banzai/src/switch.rs", "crates/banzai/src/shard.rs"];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Vendored deps and build products are not ours to lint.
            if !matches!(name.as_ref(), "target" | "vendor" | ".git" | "node_modules") {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_in_repo_code_calls_the_deprecated_run_family() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() > 30,
        "scan found only {} .rs files — walk is broken",
        files.len()
    );

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap()
            .to_string_lossy()
            .replace('\\', "/");
        if ADAPTER_FILES.contains(&rel.as_ref()) || rel == "tests/deprecation_lint.rs" {
            continue;
        }
        let Ok(text) = fs::read_to_string(path) else {
            continue;
        };
        for (lineno, line) in text.lines().enumerate() {
            for (head, tail) in FORBIDDEN {
                let pat = format!("{head}{tail}");
                if line.contains(&pat) {
                    violations.push(format!("{rel}:{}: `{pat}`", lineno + 1));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "deprecated run_* adapters called outside their definitions — \
         migrate to `run(source)` / `run_frames(source, cfg)`:\n{}",
        violations.join("\n")
    );
}

/// The other half of the one-release contract: the adapters must still
/// *exist* (deprecated, not deleted) so external callers get a warning,
/// not a build break.
#[test]
fn the_deprecated_adapters_still_exist_for_one_release() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for rel in ADAPTER_FILES {
        let text = fs::read_to_string(root.join(rel)).unwrap();
        assert!(
            text.contains("#[deprecated"),
            "{rel}: adapter file lost its deprecation attributes"
        );
    }
    let switch = fs::read_to_string(root.join(ADAPTER_FILES[0])).unwrap();
    for tail in ["stamped", "sched_trace", "wire_trace"] {
        assert!(
            switch.contains(&format!("pub fn run_{tail}")),
            "Switch adapter run_{tail} was removed before its grace release"
        );
    }
    let shard = fs::read_to_string(root.join(ADAPTER_FILES[1])).unwrap();
    for tail in [
        "trace_partitioned",
        "trace_instrumented",
        "wire_trace_partitioned",
    ] {
        assert!(
            shard.contains(&format!("pub fn run_{tail}")),
            "ShardedSwitch adapter run_{tail} was removed before its grace release"
        );
    }
}
