//! Lines-of-code counting, used for Table 4's "Domino LOC" and "P4 LOC"
//! columns.
//!
//! Following the paper ("231 lines of *uncommented* P4, in comparison to the
//! 37 lines of Domino code"), we count non-blank lines after stripping `//`
//! and `/* */` comments. The same counter is applied to Domino sources and
//! to generated P4, so the comparison is apples-to-apples.

/// Counts non-blank, non-comment lines of `source`.
pub fn count(source: &str) -> usize {
    strip_comments(source)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

/// Removes `//` line comments and `/* */` block comments, preserving line
/// structure (newlines inside block comments are kept so line counts of the
/// surrounding code are unaffected).
fn strip_comments(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i < bytes.len() {
                if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_plain_lines() {
        assert_eq!(count("a\nb\nc\n"), 3);
    }

    #[test]
    fn skips_blank_lines() {
        assert_eq!(count("a\n\n\nb\n"), 2);
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(count("a\n// only a comment\nb // trailing\n"), 2);
    }

    #[test]
    fn skips_block_comments_preserving_structure() {
        assert_eq!(count("a\n/* one\ntwo\nthree */\nb\n"), 2);
        assert_eq!(count("a /* inline */ b\n"), 1);
    }

    #[test]
    fn whitespace_only_lines_do_not_count() {
        assert_eq!(count("a\n   \n\t\nb"), 2);
    }

    #[test]
    fn flowlet_fig3a_counts_like_the_paper() {
        // Figure 3a is "37 lines of Domino code" including blank-stripped
        // declarations; our equivalent source (with the same structure but
        // one-line field decls) lands in the same ballpark.
        let src = r#"
#define NUM_FLOWLETS 8000
#define THRESHOLD 5
#define NUM_HOPS 10
struct Packet {
  int sport;
  int dport;
  int new_hop;
  int arrival;
  int next_hop;
  int id;
};
int last_time[NUM_FLOWLETS] = {0};
int saved_hop[NUM_FLOWLETS] = {0};
void flowlet(struct Packet pkt) {
  pkt.new_hop = hash3(pkt.sport, pkt.dport, pkt.arrival) % NUM_HOPS;
  pkt.id = hash2(pkt.sport, pkt.dport) % NUM_FLOWLETS;
  if (pkt.arrival - last_time[pkt.id] > THRESHOLD) {
    saved_hop[pkt.id] = pkt.new_hop;
  }
  last_time[pkt.id] = pkt.arrival;
  pkt.next_hop = saved_hop[pkt.id];
}
"#;
        let n = count(src);
        assert!((20..=40).contains(&n), "LOC = {n}");
    }
}
