//! The byte-level wire front-end: a parse graph decoding raw frames into
//! packet fields, and a deparser re-serializing them — so the full path is
//! **bytes → parse → pipeline → deparse → bytes**.
//!
//! Banzai proper assumes packets arrive parsed (§2.2); production traffic
//! is bytes. This module supplies the missing front-end as a fixed parse
//! graph:
//!
//! ```text
//! Ethernet ──(0x8100)──► 802.1Q VLAN ──┐
//!     │                                │
//!     └──────────(0x0800)──────────────┴──► IPv4 ──(6)──► TCP ──► [meta] ──► payload
//!                                             │
//!                                             └───(17)──► UDP ──► [meta] ──► payload
//! ```
//!
//! Every multi-byte field is **big-endian on the wire** and a host-order
//! `i32` in the packet slot; the parser is the only place byte order is
//! handled (the canonical slot names live in [`domino_ir::wire`]). The
//! optional *metadata trailer* carries named non-header fields (workload
//! metadata like `arrival`, algorithm outputs like `next_hop`) as
//! big-endian 32-bit words in [`WireConfig`] schema order — the in-band
//! telemetry idiom, which is what lets the Table 4 programs run from real
//! frames even though their inputs are not all IP headers.
//!
//! ## Deparsing: original bytes + patches
//!
//! Parsing records a [`WireLayout`]: the original frame verbatim plus one
//! [`Patch`] (offset, width) per decoded field. Deparsing clones the
//! original bytes and re-writes every patched region from the packet's
//! current field values, so:
//!
//! * an **unmodified** packet deparses to the *identical* byte frame —
//!   IPv4 options, TCP options, payloads, and unparsed bits survive
//!   untouched (the fuzz suite pins this);
//! * a **modified** field (a pipeline writing `pkt.sport` or a trailer
//!   field) lands back in its wire position, masked to its width.
//!
//! Checksums are carried opaque: the parser exposes `ip_csum`/`tcp_csum`
//! as ordinary fields and the deparser writes them back verbatim, so a
//! pipeline that rewrites headers is responsible for fixing them up (the
//! encoder computes a valid IPv4 checksum for synthesized traffic).
//!
//! ## Malformed traffic
//!
//! Parse failures never panic: every way a frame can go wrong maps to a
//! typed [`ParseVerdict`] in strict parse order (first failure wins), and
//! the switch's wire ingress turns each verdict into a per-reason drop
//! counter (see `crate::switch::DropCounters`).

use domino_ir::wire::{fields as wf, HEADER_FIELDS};
use domino_ir::{FieldId, FieldTable, FlatPacket, Packet};
use std::fmt;
use std::sync::Arc;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for an 802.1Q VLAN tag.
pub const ETHERTYPE_VLAN: u16 = 0x8100;
/// IPv4 protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IPv4 protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// Why a frame failed to parse, in strict parse order: the verdict is the
/// *first* failure the parse graph hits walking Ethernet → VLAN → IPv4 →
/// L4 → metadata trailer. Each verdict backs one drop-reason counter on
/// the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseVerdict {
    /// Frame shorter than the 14-byte Ethernet header.
    TruncatedEthernet,
    /// EtherType 0x8100 but the frame ends inside the 4-byte VLAN tag.
    TruncatedVlan,
    /// EtherType (outer or inner) is not IPv4 — including double-tagged
    /// frames, whose inner type is 0x8100 again.
    UnsupportedEthertype,
    /// IPv4 version nibble is not 4.
    BadIpVersion,
    /// IPv4 IHL below the minimum of 5 words.
    BadIhl,
    /// Frame ends inside the IPv4 header (before `IHL * 4` bytes).
    TruncatedIpv4,
    /// IPv4 protocol is neither TCP nor UDP.
    UnsupportedIpProto,
    /// TCP data offset below the minimum of 5 words.
    BadTcpOffset,
    /// Frame ends inside the TCP header (base 20 bytes, or options).
    TruncatedTcp,
    /// Frame ends inside the 8-byte UDP header.
    TruncatedUdp,
    /// Frame ends inside the configured metadata trailer.
    TruncatedMetadata,
}

impl ParseVerdict {
    /// Every verdict, in parse order (the dense index space for drop
    /// counters).
    pub const ALL: [ParseVerdict; 11] = [
        ParseVerdict::TruncatedEthernet,
        ParseVerdict::TruncatedVlan,
        ParseVerdict::UnsupportedEthertype,
        ParseVerdict::BadIpVersion,
        ParseVerdict::BadIhl,
        ParseVerdict::TruncatedIpv4,
        ParseVerdict::UnsupportedIpProto,
        ParseVerdict::BadTcpOffset,
        ParseVerdict::TruncatedTcp,
        ParseVerdict::TruncatedUdp,
        ParseVerdict::TruncatedMetadata,
    ];

    /// Number of distinct verdicts.
    pub const COUNT: usize = ParseVerdict::ALL.len();

    /// Dense index of this verdict in [`ParseVerdict::ALL`].
    pub fn index(self) -> usize {
        ParseVerdict::ALL
            .iter()
            .position(|v| *v == self)
            .expect("ALL is exhaustive")
    }

    /// Stable snake_case label (used in counters and bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            ParseVerdict::TruncatedEthernet => "truncated_ethernet",
            ParseVerdict::TruncatedVlan => "truncated_vlan",
            ParseVerdict::UnsupportedEthertype => "unsupported_ethertype",
            ParseVerdict::BadIpVersion => "bad_ip_version",
            ParseVerdict::BadIhl => "bad_ihl",
            ParseVerdict::TruncatedIpv4 => "truncated_ipv4",
            ParseVerdict::UnsupportedIpProto => "unsupported_ip_proto",
            ParseVerdict::BadTcpOffset => "bad_tcp_offset",
            ParseVerdict::TruncatedTcp => "truncated_tcp",
            ParseVerdict::TruncatedUdp => "truncated_udp",
            ParseVerdict::TruncatedMetadata => "truncated_metadata",
        }
    }
}

impl fmt::Display for ParseVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Wire front-end configuration: the metadata-trailer schema.
///
/// The trailer is a fixed-layout custom header after the L4 header: one
/// big-endian 32-bit word per schema field, in schema order. Encoder and
/// parser must agree on the schema, exactly like any P4 header type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireConfig {
    meta: Vec<String>,
}

impl WireConfig {
    /// A config with no metadata trailer (pure Ethernet/IPv4/L4 parsing).
    pub fn new() -> Self {
        WireConfig::default()
    }

    /// Sets the metadata-trailer schema.
    ///
    /// Rejects duplicate fields and fields that shadow a canonical wire
    /// header name (those travel in the real headers, never the trailer).
    pub fn with_meta_fields<I, S>(fields: I) -> Result<WireConfig, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut meta: Vec<String> = Vec::new();
        for f in fields {
            let f = f.into();
            if domino_ir::wire::is_header_field(&f) {
                return Err(format!(
                    "metadata field `{f}` shadows a wire header field; it travels \
                     in the header, not the trailer"
                ));
            }
            if meta.contains(&f) {
                return Err(format!("duplicate metadata field `{f}`"));
            }
            meta.push(f);
        }
        Ok(WireConfig { meta })
    }

    /// The trailer schema, in wire order.
    pub fn meta_fields(&self) -> &[String] {
        &self.meta
    }

    /// Trailer length in bytes (4 per field).
    pub fn meta_len(&self) -> usize {
        self.meta.len() * 4
    }
}

/// Which L4 header a frame carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L4 {
    /// TCP (protocol 6).
    Tcp,
    /// UDP (protocol 17).
    Udp,
}

/// One patchable region of a frame: a decoded field's wire position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patch {
    /// The packet field this region decodes to.
    pub field: String,
    /// Byte offset into the frame.
    pub offset: usize,
    /// Width in bytes (1, 2, or 4); values are masked to this width on
    /// write-back.
    pub width: u8,
}

/// The structural record of a parsed frame: the original bytes verbatim
/// plus the patch list the deparser re-writes from field values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireLayout {
    bytes: Vec<u8>,
    patches: Vec<Patch>,
    has_vlan: bool,
    l4: L4,
    payload_off: usize,
}

impl WireLayout {
    /// True if the frame carried an 802.1Q tag.
    pub fn has_vlan(&self) -> bool {
        self.has_vlan
    }

    /// Which L4 header the frame carried.
    pub fn l4(&self) -> L4 {
        self.l4
    }

    /// The original frame, verbatim.
    pub fn frame(&self) -> &[u8] {
        &self.bytes
    }

    /// Bytes after every parsed header (and the metadata trailer).
    pub fn payload(&self) -> &[u8] {
        &self.bytes[self.payload_off..]
    }

    /// The decoded-field patch list, in parse order.
    pub fn patches(&self) -> &[Patch] {
        &self.patches
    }
}

/// A successfully parsed frame: the field view plus the structural layout
/// needed to deparse it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePacket {
    /// The decoded fields (headers and metadata trailer).
    pub pkt: Packet,
    /// The structural layout for the deparser.
    pub layout: WireLayout,
}

// ---------------------------------------------------------------------------
// Core parse (shared by the map-level and flat front-ends)
// ---------------------------------------------------------------------------

// Dense indices into `domino_ir::wire::HEADER_FIELDS`, so the hot path
// never hashes a field name.
const W_ETH_DST_HI: usize = 0;
const W_ETH_DST_LO: usize = 1;
const W_ETH_SRC_HI: usize = 2;
const W_ETH_SRC_LO: usize = 3;
const W_ETH_TYPE: usize = 4;
const W_VLAN_TCI: usize = 5;
const W_IP_TOS: usize = 6;
const W_IP_LEN: usize = 7;
const W_IP_ID: usize = 8;
const W_IP_FRAG: usize = 9;
const W_IP_TTL: usize = 10;
const W_IP_PROTO: usize = 11;
const W_IP_CSUM: usize = 12;
const W_IP_SRC: usize = 13;
const W_IP_DST: usize = 14;
const W_SPORT: usize = 15;
const W_DPORT: usize = 16;
const W_TCP_SEQ: usize = 17;
const W_TCP_ACK: usize = 18;
const W_TCP_FLAGS: usize = 19;
const W_TCP_WIN: usize = 20;
const W_TCP_CSUM: usize = 21;
const W_TCP_URG: usize = 22;
const W_UDP_LEN: usize = 23;
const W_UDP_CSUM: usize = 24;

/// A decoded field before it is routed to a map packet or a flat slot:
/// (dense wire index, value, frame offset, width).
type RawField = (usize, i32, usize, u8);

/// The allocation-light result of walking the parse graph.
struct RawFrame {
    fields: Vec<RawField>,
    /// Metadata-trailer values in schema order; entry `i` sits at
    /// `meta_off + 4 * i`.
    meta: Vec<i32>,
    meta_off: usize,
    has_vlan: bool,
    l4: L4,
    payload_off: usize,
}

#[inline]
fn be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

#[inline]
fn be32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// Writes `value` big-endian into `out[offset..offset + width]`, masked to
/// the region's width.
#[inline]
fn patch_be(out: &mut [u8], offset: usize, width: u8, value: i32) {
    let v = value as u32;
    match width {
        1 => out[offset] = v as u8,
        2 => out[offset..offset + 2].copy_from_slice(&(v as u16).to_be_bytes()),
        _ => out[offset..offset + 4].copy_from_slice(&v.to_be_bytes()),
    }
}

/// Walks the parse graph over `frame`. First failure (in parse order) is
/// the verdict; the walk itself can never panic on any byte input.
fn parse_raw(frame: &[u8], cfg: &WireConfig) -> Result<RawFrame, ParseVerdict> {
    let n = frame.len();
    let mut fields: Vec<RawField> = Vec::with_capacity(24 + cfg.meta.len());

    // --- Ethernet -------------------------------------------------------
    if n < 14 {
        return Err(ParseVerdict::TruncatedEthernet);
    }
    fields.push((W_ETH_DST_HI, be16(frame, 0) as i32, 0, 2));
    fields.push((W_ETH_DST_LO, be32(frame, 2) as i32, 2, 4));
    fields.push((W_ETH_SRC_HI, be16(frame, 6) as i32, 6, 2));
    fields.push((W_ETH_SRC_LO, be32(frame, 8) as i32, 8, 4));

    let mut ethertype = be16(frame, 12);
    let has_vlan = ethertype == ETHERTYPE_VLAN;
    let l3_off = if has_vlan {
        // --- 802.1Q VLAN ------------------------------------------------
        if n < 18 {
            return Err(ParseVerdict::TruncatedVlan);
        }
        fields.push((W_VLAN_TCI, be16(frame, 14) as i32, 14, 2));
        ethertype = be16(frame, 16);
        fields.push((W_ETH_TYPE, ethertype as i32, 16, 2));
        18
    } else {
        fields.push((W_ETH_TYPE, ethertype as i32, 12, 2));
        14
    };
    if ethertype != ETHERTYPE_IPV4 {
        return Err(ParseVerdict::UnsupportedEthertype);
    }

    // --- IPv4 -----------------------------------------------------------
    if n < l3_off + 1 {
        return Err(ParseVerdict::TruncatedIpv4);
    }
    let vihl = frame[l3_off];
    if vihl >> 4 != 4 {
        return Err(ParseVerdict::BadIpVersion);
    }
    let ihl = (vihl & 0x0f) as usize;
    if ihl < 5 {
        return Err(ParseVerdict::BadIhl);
    }
    if n < l3_off + ihl * 4 {
        return Err(ParseVerdict::TruncatedIpv4);
    }
    fields.push((W_IP_TOS, frame[l3_off + 1] as i32, l3_off + 1, 1));
    fields.push((W_IP_LEN, be16(frame, l3_off + 2) as i32, l3_off + 2, 2));
    fields.push((W_IP_ID, be16(frame, l3_off + 4) as i32, l3_off + 4, 2));
    fields.push((W_IP_FRAG, be16(frame, l3_off + 6) as i32, l3_off + 6, 2));
    fields.push((W_IP_TTL, frame[l3_off + 8] as i32, l3_off + 8, 1));
    let proto = frame[l3_off + 9];
    fields.push((W_IP_PROTO, proto as i32, l3_off + 9, 1));
    fields.push((W_IP_CSUM, be16(frame, l3_off + 10) as i32, l3_off + 10, 2));
    fields.push((W_IP_SRC, be32(frame, l3_off + 12) as i32, l3_off + 12, 4));
    fields.push((W_IP_DST, be32(frame, l3_off + 16) as i32, l3_off + 16, 4));
    // IPv4 options (ihl > 5) are carried verbatim, never decoded.
    let l4_off = l3_off + ihl * 4;

    // --- L4 -------------------------------------------------------------
    let (l4, l4_len) = match proto {
        IPPROTO_TCP => {
            if n < l4_off + 20 {
                return Err(ParseVerdict::TruncatedTcp);
            }
            let doff = (frame[l4_off + 12] >> 4) as usize;
            if doff < 5 {
                return Err(ParseVerdict::BadTcpOffset);
            }
            if n < l4_off + doff * 4 {
                return Err(ParseVerdict::TruncatedTcp);
            }
            fields.push((W_SPORT, be16(frame, l4_off) as i32, l4_off, 2));
            fields.push((W_DPORT, be16(frame, l4_off + 2) as i32, l4_off + 2, 2));
            fields.push((W_TCP_SEQ, be32(frame, l4_off + 4) as i32, l4_off + 4, 4));
            fields.push((W_TCP_ACK, be32(frame, l4_off + 8) as i32, l4_off + 8, 4));
            fields.push((W_TCP_FLAGS, frame[l4_off + 13] as i32, l4_off + 13, 1));
            fields.push((W_TCP_WIN, be16(frame, l4_off + 14) as i32, l4_off + 14, 2));
            fields.push((W_TCP_CSUM, be16(frame, l4_off + 16) as i32, l4_off + 16, 2));
            fields.push((W_TCP_URG, be16(frame, l4_off + 18) as i32, l4_off + 18, 2));
            // TCP options are carried verbatim, never decoded.
            (L4::Tcp, doff * 4)
        }
        IPPROTO_UDP => {
            if n < l4_off + 8 {
                return Err(ParseVerdict::TruncatedUdp);
            }
            fields.push((W_SPORT, be16(frame, l4_off) as i32, l4_off, 2));
            fields.push((W_DPORT, be16(frame, l4_off + 2) as i32, l4_off + 2, 2));
            fields.push((W_UDP_LEN, be16(frame, l4_off + 4) as i32, l4_off + 4, 2));
            fields.push((W_UDP_CSUM, be16(frame, l4_off + 6) as i32, l4_off + 6, 2));
            (L4::Udp, 8)
        }
        _ => return Err(ParseVerdict::UnsupportedIpProto),
    };

    // --- metadata trailer ----------------------------------------------
    let meta_off = l4_off + l4_len;
    if n < meta_off + cfg.meta_len() {
        return Err(ParseVerdict::TruncatedMetadata);
    }
    let meta: Vec<i32> = (0..cfg.meta.len())
        .map(|i| be32(frame, meta_off + 4 * i) as i32)
        .collect();

    Ok(RawFrame {
        fields,
        meta,
        meta_off,
        has_vlan,
        l4,
        payload_off: meta_off + cfg.meta_len(),
    })
}

// ---------------------------------------------------------------------------
// Map-level front-end (the reference path)
// ---------------------------------------------------------------------------

/// Parses a byte frame into a [`WirePacket`] (map-packet view plus
/// deparse layout).
///
/// Never panics: malformed input is a typed [`ParseVerdict`].
pub fn parse(frame: &[u8], cfg: &WireConfig) -> Result<WirePacket, ParseVerdict> {
    let raw = parse_raw(frame, cfg)?;
    let mut pkt = Packet::new();
    let mut patches = Vec::with_capacity(raw.fields.len() + raw.meta.len());
    for &(idx, value, offset, width) in &raw.fields {
        let name = HEADER_FIELDS[idx];
        pkt.set(name, value);
        patches.push(Patch {
            field: name.to_string(),
            offset,
            width,
        });
    }
    for (i, (&value, name)) in raw.meta.iter().zip(&cfg.meta).enumerate() {
        pkt.set(name, value);
        patches.push(Patch {
            field: name.clone(),
            offset: raw.meta_off + 4 * i,
            width: 4,
        });
    }
    Ok(WirePacket {
        pkt,
        layout: WireLayout {
            bytes: frame.to_vec(),
            patches,
            has_vlan: raw.has_vlan,
            l4: raw.l4,
            payload_off: raw.payload_off,
        },
    })
}

/// Re-serializes a (possibly pipeline-modified) packet over its parse
/// layout: the original bytes with every decoded field patched back from
/// the packet's current value, masked to its wire width.
///
/// A packet whose patched fields are unmodified deparses to the identical
/// frame. Fields the packet no longer carries (impossible through the
/// pipeline, which only writes) keep their original bytes.
pub fn deparse(pkt: &Packet, layout: &WireLayout) -> Vec<u8> {
    let mut out = layout.bytes.clone();
    for p in &layout.patches {
        if let Some(v) = pkt.get(&p.field) {
            patch_be(&mut out, p.offset, p.width, v);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Flat front-end (the slot-engine fast path)
// ---------------------------------------------------------------------------

/// The deparse layout of the flat fast path: original bytes plus patches
/// pre-resolved to [`FieldId`]s (no name lookups per packet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatWireLayout {
    bytes: Vec<u8>,
    patches: Vec<(FieldId, u32, u8)>,
}

impl FlatWireLayout {
    /// The original frame, verbatim.
    pub fn frame(&self) -> &[u8] {
        &self.bytes
    }
}

/// A wire parser bound to a pipeline's field layout: every canonical
/// header name and metadata field is resolved to its [`FieldId`] (or
/// dropped, if the pipeline never mentions it) once at bind time, so
/// per-frame parsing does zero hashing — the streaming-parser shape.
///
/// Fields the pipeline's table does not intern are *not* lost: they keep
/// their original bytes in the layout and re-appear verbatim on deparse.
/// Only fields the pipeline can actually read or write get slots and
/// patches.
#[derive(Debug, Clone)]
pub struct BoundParser {
    cfg: WireConfig,
    table: Arc<FieldTable>,
    wire_slots: [Option<FieldId>; HEADER_FIELDS.len()],
    meta_slots: Vec<Option<FieldId>>,
}

impl BoundParser {
    /// Binds a config to a field table (typically
    /// `SlotMachine::field_table`).
    pub fn bind(cfg: WireConfig, table: Arc<FieldTable>) -> BoundParser {
        let mut wire_slots = [None; HEADER_FIELDS.len()];
        for (i, name) in HEADER_FIELDS.iter().enumerate() {
            wire_slots[i] = table.lookup(name);
        }
        let meta_slots = cfg.meta.iter().map(|f| table.lookup(f)).collect();
        BoundParser {
            cfg,
            table,
            wire_slots,
            meta_slots,
        }
    }

    /// The schema this parser was bound with.
    pub fn config(&self) -> &WireConfig {
        &self.cfg
    }

    /// The field table this parser fills.
    pub fn table(&self) -> &Arc<FieldTable> {
        &self.table
    }

    /// Parses a frame straight onto the bound layout: a [`FlatPacket`]
    /// with every table-known field filled (big-endian decoded, marked
    /// present) plus the flat deparse layout.
    pub fn parse_flat(&self, frame: &[u8]) -> Result<(FlatPacket, FlatWireLayout), ParseVerdict> {
        let raw = parse_raw(frame, &self.cfg)?;
        let mut flat = FlatPacket::new(Arc::clone(&self.table));
        let mut patches = Vec::with_capacity(raw.fields.len() + raw.meta.len());
        for &(idx, value, offset, width) in &raw.fields {
            if let Some(id) = self.wire_slots[idx] {
                flat.set(id, value);
                patches.push((id, offset as u32, width));
            }
        }
        for (i, &value) in raw.meta.iter().enumerate() {
            if let Some(id) = self.meta_slots[i] {
                flat.set(id, value);
                patches.push((id, (raw.meta_off + 4 * i) as u32, 4));
            }
        }
        Ok((
            flat,
            FlatWireLayout {
                bytes: frame.to_vec(),
                patches,
            },
        ))
    }

    /// Re-serializes a flat packet over its flat layout (the fast-path
    /// mirror of [`deparse`]).
    pub fn deparse_flat(&self, flat: &FlatPacket, layout: &FlatWireLayout) -> Vec<u8> {
        let mut out = layout.bytes.clone();
        for &(id, offset, width) in &layout.patches {
            patch_be(&mut out, offset as usize, width, flat.get_or_zero(id));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Encoder (the synthesis-side deparser)
// ---------------------------------------------------------------------------

/// Header defaults for encoding a map packet onto the wire: every header
/// field the packet does not carry takes its value from here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSpec {
    /// Destination MAC (low 48 bits used).
    pub eth_dst: u64,
    /// Source MAC (low 48 bits used).
    pub eth_src: u64,
    /// 802.1Q tag control information; `Some` emits a tagged frame.
    pub vlan_tci: Option<u16>,
    /// IPv4 source address.
    pub ip_src: u32,
    /// IPv4 destination address.
    pub ip_dst: u32,
    /// IPv4 TTL.
    pub ip_ttl: u8,
    /// L4 protocol: [`IPPROTO_TCP`] or [`IPPROTO_UDP`].
    pub ip_proto: u8,
    /// L4 source port.
    pub sport: u16,
    /// L4 destination port.
    pub dport: u16,
    /// Payload bytes after the headers (and metadata trailer).
    pub payload: Vec<u8>,
}

impl Default for FrameSpec {
    fn default() -> Self {
        FrameSpec {
            eth_dst: 0x0200_0000_0001,
            eth_src: 0x0200_0000_0002,
            vlan_tci: None,
            ip_src: u32::from_be_bytes([10, 0, 0, 1]),
            ip_dst: u32::from_be_bytes([10, 0, 0, 2]),
            ip_ttl: 64,
            ip_proto: IPPROTO_TCP,
            sport: 10_000,
            dport: 80,
            payload: Vec::new(),
        }
    }
}

/// The RFC 1071 one's-complement sum over an IPv4 header (checksum field
/// zeroed by the caller).
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = header.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Encodes a map packet as a wire frame: canonical header fields the
/// packet carries land in their header positions (masked to width),
/// everything else comes from `spec`; the packet's schema fields ride the
/// metadata trailer. Lengths and the IPv4 header checksum are computed,
/// so `parse(encode(pkt)) == pkt` on every encoded field — the property
/// the roundtrip differential pins.
///
/// The frame is untagged unless `spec.vlan_tci` is set or the packet
/// carries `vlan_tci`.
pub fn encode(pkt: &Packet, cfg: &WireConfig, spec: &FrameSpec) -> Vec<u8> {
    let f16 = |name: &str, default: u16| pkt.get(name).map(|v| v as u16).unwrap_or(default);
    let f8 = |name: &str, default: u8| pkt.get(name).map(|v| v as u8).unwrap_or(default);
    let f32v = |name: &str, default: u32| pkt.get(name).map(|v| v as u32).unwrap_or(default);

    let vlan_tci = pkt.get(wf::VLAN_TCI).map(|v| v as u16).or(spec.vlan_tci);

    let proto = f8(wf::IP_PROTO, spec.ip_proto);
    let l4_len = if proto == IPPROTO_UDP { 8 } else { 20 };
    let ip_total = 20 + l4_len + cfg.meta_len() + spec.payload.len();
    let mut out = Vec::with_capacity(14 + 4 + ip_total);

    // Ethernet.
    let dst_hi = f16(wf::ETH_DST_HI, (spec.eth_dst >> 32) as u16);
    let dst_lo = f32v(wf::ETH_DST_LO, spec.eth_dst as u32);
    let src_hi = f16(wf::ETH_SRC_HI, (spec.eth_src >> 32) as u16);
    let src_lo = f32v(wf::ETH_SRC_LO, spec.eth_src as u32);
    out.extend_from_slice(&dst_hi.to_be_bytes());
    out.extend_from_slice(&dst_lo.to_be_bytes());
    out.extend_from_slice(&src_hi.to_be_bytes());
    out.extend_from_slice(&src_lo.to_be_bytes());
    if let Some(tci) = vlan_tci {
        out.extend_from_slice(&ETHERTYPE_VLAN.to_be_bytes());
        out.extend_from_slice(&tci.to_be_bytes());
    }
    out.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());

    // IPv4 (IHL fixed at 5: synthesized traffic carries no IP options;
    // the parser still accepts them from foreign frames).
    let ip_off = out.len();
    out.push(0x45);
    out.push(f8(wf::IP_TOS, 0));
    out.extend_from_slice(&f16(wf::IP_LEN, ip_total as u16).to_be_bytes());
    out.extend_from_slice(&f16(wf::IP_ID, 0).to_be_bytes());
    out.extend_from_slice(&f16(wf::IP_FRAG, 0x4000).to_be_bytes()); // DF
    out.push(f8(wf::IP_TTL, spec.ip_ttl));
    out.push(proto);
    out.extend_from_slice(&[0, 0]); // checksum, fixed up below
    out.extend_from_slice(&f32v(wf::IP_SRC, spec.ip_src).to_be_bytes());
    out.extend_from_slice(&f32v(wf::IP_DST, spec.ip_dst).to_be_bytes());
    let csum = pkt
        .get(wf::IP_CSUM)
        .map(|v| v as u16)
        .unwrap_or_else(|| ipv4_checksum(&out[ip_off..ip_off + 20]));
    out[ip_off + 10..ip_off + 12].copy_from_slice(&csum.to_be_bytes());

    // L4.
    let sport = f16(wf::SPORT, spec.sport);
    let dport = f16(wf::DPORT, spec.dport);
    out.extend_from_slice(&sport.to_be_bytes());
    out.extend_from_slice(&dport.to_be_bytes());
    if proto == IPPROTO_UDP {
        let udp_len = f16(
            wf::UDP_LEN,
            (8 + cfg.meta_len() + spec.payload.len()) as u16,
        );
        out.extend_from_slice(&udp_len.to_be_bytes());
        out.extend_from_slice(&f16(wf::UDP_CSUM, 0).to_be_bytes());
    } else {
        out.extend_from_slice(&f32v(wf::TCP_SEQ, 0).to_be_bytes());
        out.extend_from_slice(&f32v(wf::TCP_ACK, 0).to_be_bytes());
        out.push(0x50); // data offset 5, no options
        out.push(f8(wf::TCP_FLAGS, 0x10)); // ACK
        out.extend_from_slice(&f16(wf::TCP_WIN, 0xffff).to_be_bytes());
        out.extend_from_slice(&f16(wf::TCP_CSUM, 0).to_be_bytes());
        out.extend_from_slice(&f16(wf::TCP_URG, 0).to_be_bytes());
    }

    // Metadata trailer + payload.
    for name in &cfg.meta {
        out.extend_from_slice(&pkt.get_or_zero(name).to_be_bytes());
    }
    out.extend_from_slice(&spec.payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_cfg() -> WireConfig {
        WireConfig::with_meta_fields(["arrival", "next_hop"]).unwrap()
    }

    fn sample_packet() -> Packet {
        Packet::new()
            .with("sport", 443)
            .with("dport", 80)
            .with("arrival", 123_456)
            .with("next_hop", -7)
    }

    #[test]
    fn encode_parse_roundtrips_every_field() {
        let cfg = tcp_cfg();
        let pkt = sample_packet();
        let frame = encode(&pkt, &cfg, &FrameSpec::default());
        let wire = parse(&frame, &cfg).unwrap();
        for (name, v) in pkt.iter() {
            assert_eq!(wire.pkt.get(name), Some(v), "field `{name}`");
        }
        assert_eq!(wire.pkt.get(wf::IP_PROTO), Some(IPPROTO_TCP as i32));
        assert_eq!(wire.layout.l4(), L4::Tcp);
        assert!(!wire.layout.has_vlan());
    }

    #[test]
    fn deparse_of_unmodified_packet_is_identity() {
        let cfg = tcp_cfg();
        let frame = encode(&sample_packet(), &cfg, &FrameSpec::default());
        let wire = parse(&frame, &cfg).unwrap();
        assert_eq!(deparse(&wire.pkt, &wire.layout), frame);
    }

    #[test]
    fn deparse_patches_modified_fields_in_place() {
        let cfg = tcp_cfg();
        let frame = encode(&sample_packet(), &cfg, &FrameSpec::default());
        let mut wire = parse(&frame, &cfg).unwrap();
        wire.pkt.set("sport", 9999);
        wire.pkt.set("next_hop", 3);
        let out = deparse(&wire.pkt, &wire.layout);
        assert_ne!(out, frame);
        let reparsed = parse(&out, &cfg).unwrap();
        assert_eq!(reparsed.pkt.get("sport"), Some(9999));
        assert_eq!(reparsed.pkt.get("next_hop"), Some(3));
        // Unmodified regions survive byte-for-byte.
        assert_eq!(reparsed.pkt.get("dport"), Some(80));
        assert_eq!(reparsed.pkt.get("arrival"), Some(123_456));
    }

    #[test]
    fn vlan_and_udp_paths_roundtrip() {
        let cfg = WireConfig::new();
        let spec = FrameSpec {
            vlan_tci: Some(0x2005),
            ip_proto: IPPROTO_UDP,
            payload: vec![0xAA, 0xBB],
            ..FrameSpec::default()
        };
        let frame = encode(&Packet::new().with("sport", 53), &cfg, &spec);
        let wire = parse(&frame, &cfg).unwrap();
        assert!(wire.layout.has_vlan());
        assert_eq!(wire.layout.l4(), L4::Udp);
        assert_eq!(wire.pkt.get(wf::VLAN_TCI), Some(0x2005));
        assert_eq!(wire.pkt.get("sport"), Some(53));
        assert_eq!(wire.pkt.get(wf::UDP_LEN), Some(10)); // 8 + payload 2
        assert_eq!(wire.layout.payload(), &[0xAA, 0xBB]);
        assert_eq!(deparse(&wire.pkt, &wire.layout), frame);
    }

    #[test]
    fn encoder_emits_a_valid_ipv4_checksum() {
        let frame = encode(&Packet::new(), &WireConfig::new(), &FrameSpec::default());
        // Re-summing the header with its checksum in place yields 0.
        let mut hdr = frame[14..34].to_vec();
        let stored = u16::from_be_bytes([hdr[10], hdr[11]]);
        hdr[10] = 0;
        hdr[11] = 0;
        assert_eq!(ipv4_checksum(&hdr), stored);
    }

    #[test]
    fn parse_order_pins_first_failure() {
        let cfg = WireConfig::new();
        let good = encode(&Packet::new(), &cfg, &FrameSpec::default());
        assert_eq!(
            parse(&[], &cfg).unwrap_err(),
            ParseVerdict::TruncatedEthernet
        );
        assert_eq!(
            parse(&good[..13], &cfg).unwrap_err(),
            ParseVerdict::TruncatedEthernet
        );
        // Garbage ethertype.
        let mut bad = good.clone();
        bad[12] = 0x86;
        bad[13] = 0xdd; // IPv6
        assert_eq!(
            parse(&bad, &cfg).unwrap_err(),
            ParseVerdict::UnsupportedEthertype
        );
        // Version nibble.
        let mut bad = good.clone();
        bad[14] = 0x65;
        assert_eq!(parse(&bad, &cfg).unwrap_err(), ParseVerdict::BadIpVersion);
        // IHL below 5.
        let mut bad = good.clone();
        bad[14] = 0x43;
        assert_eq!(parse(&bad, &cfg).unwrap_err(), ParseVerdict::BadIhl);
        // Truncated inside IPv4.
        assert_eq!(
            parse(&good[..20], &cfg).unwrap_err(),
            ParseVerdict::TruncatedIpv4
        );
        // Unsupported protocol (re-checksum not needed; proto precedes it).
        let mut bad = good.clone();
        bad[14 + 9] = 47; // GRE
        assert_eq!(
            parse(&bad, &cfg).unwrap_err(),
            ParseVerdict::UnsupportedIpProto
        );
        // Short TCP.
        assert_eq!(
            parse(&good[..40], &cfg).unwrap_err(),
            ParseVerdict::TruncatedTcp
        );
        // Bad TCP data offset.
        let mut bad = good.clone();
        bad[14 + 20 + 12] = 0x20; // doff 2
        assert_eq!(parse(&bad, &cfg).unwrap_err(), ParseVerdict::BadTcpOffset);
        // Truncated metadata trailer.
        let cfg_meta = tcp_cfg();
        let with_meta = encode(&sample_packet(), &cfg_meta, &FrameSpec::default());
        assert_eq!(
            parse(&with_meta[..with_meta.len() - 1], &cfg_meta).unwrap_err(),
            ParseVerdict::TruncatedMetadata
        );
    }

    #[test]
    fn ipv4_options_survive_parse_and_deparse() {
        // Hand-build an IHL=6 header (4 bytes of NOP options).
        let cfg = WireConfig::new();
        let base = encode(&Packet::new(), &cfg, &FrameSpec::default());
        let mut frame = Vec::new();
        frame.extend_from_slice(&base[..14]);
        let mut ip = base[14..34].to_vec();
        ip[0] = 0x46; // IHL 6
        frame.extend_from_slice(&ip);
        frame.extend_from_slice(&[0x01, 0x01, 0x01, 0x01]); // options
        frame.extend_from_slice(&base[34..]); // TCP onwards
        let wire = parse(&frame, &cfg).unwrap();
        assert_eq!(wire.pkt.get("sport"), Some(10_000));
        assert_eq!(deparse(&wire.pkt, &wire.layout), frame);
    }

    #[test]
    fn bound_parser_fills_only_table_known_slots() {
        let cfg = tcp_cfg();
        let mut table = FieldTable::new();
        let sport = table.intern("sport");
        let arrival = table.intern("arrival");
        let table = Arc::new(table);
        let parser = BoundParser::bind(cfg.clone(), Arc::clone(&table));
        let frame = encode(&sample_packet(), &cfg, &FrameSpec::default());
        let (flat, layout) = parser.parse_flat(&frame).unwrap();
        assert_eq!(flat.get(sport), Some(443));
        assert_eq!(flat.get(arrival), Some(123_456));
        // Identity deparse, even though most fields have no slot.
        assert_eq!(parser.deparse_flat(&flat, &layout), frame);
        // A modified slot lands back on the wire.
        let mut flat2 = flat.clone();
        flat2.set(sport, 8080);
        let out = parser.deparse_flat(&flat2, &layout);
        let reparsed = parse(&out, &cfg).unwrap();
        assert_eq!(reparsed.pkt.get("sport"), Some(8080));
        assert_eq!(reparsed.pkt.get("dport"), Some(80));
    }

    #[test]
    fn flat_and_map_parses_agree() {
        let cfg = tcp_cfg();
        let mut table = FieldTable::new();
        domino_ir::wire::intern_header_fields(&mut table);
        for f in cfg.meta_fields() {
            table.intern(f);
        }
        let parser = BoundParser::bind(cfg.clone(), Arc::new(table));
        let frame = encode(&sample_packet(), &cfg, &FrameSpec::default());
        let wire = parse(&frame, &cfg).unwrap();
        let (flat, _) = parser.parse_flat(&frame).unwrap();
        assert_eq!(flat.to_packet(), wire.pkt);
    }

    #[test]
    fn config_rejects_header_shadowing_and_duplicates() {
        assert!(WireConfig::with_meta_fields(["sport"]).is_err());
        assert!(WireConfig::with_meta_fields(["a", "a"]).is_err());
        let cfg = WireConfig::with_meta_fields(["a", "b"]).unwrap();
        assert_eq!(cfg.meta_len(), 8);
    }

    #[test]
    fn verdict_indices_are_dense_and_stable() {
        for (i, v) in ParseVerdict::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
        assert_eq!(ParseVerdict::COUNT, 11);
        assert_eq!(
            ParseVerdict::TruncatedEthernet.to_string(),
            "truncated_ethernet"
        );
    }
}
