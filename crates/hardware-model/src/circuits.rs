//! Structural circuits for every atom template.
//!
//! Each [`banzai::AtomKind`] (plus the stateless atom) is realized as a
//! concrete datapath: a bill of materials and a critical path, in the
//! style of the paper's Table 6 diagrams (operand muxes feeding a
//! relational unit whose output selects among ALU results). Area is the
//! component sum; minimum delay is the critical-path sum; the maximum
//! sustainable line rate is the reciprocal of the delay (§5.4).

use crate::components::Component;
use banzai::AtomKind;
use std::collections::BTreeMap;

/// A synthesized circuit: bill of materials + critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    /// Human-readable circuit name.
    pub name: String,
    /// Component counts.
    pub parts: BTreeMap<Component, usize>,
    /// The longest combinational path, ending at the state register.
    pub critical_path: Vec<Component>,
}

impl Circuit {
    fn new(name: &str, parts: &[(Component, usize)], critical_path: &[Component]) -> Circuit {
        Circuit {
            name: name.to_string(),
            parts: parts.iter().copied().collect(),
            critical_path: critical_path.to_vec(),
        }
    }

    /// Total area in µm².
    pub fn area(&self) -> f64 {
        self.parts.iter().map(|(c, n)| c.area() * *n as f64).sum()
    }

    /// Minimum delay (critical path) in picoseconds.
    pub fn min_delay_ps(&self) -> f64 {
        self.critical_path.iter().map(|c| c.delay()).sum()
    }

    /// Maximum line rate in billion packets per second (= GHz of the
    /// stage clock): `1000 / delay_ps`.
    pub fn max_line_rate_gpps(&self) -> f64 {
        1000.0 / self.min_delay_ps()
    }

    /// Depth of the combinational logic (number of components on the
    /// critical path, excluding the register).
    pub fn logic_depth(&self) -> usize {
        self.critical_path
            .iter()
            .filter(|c| !matches!(c, Component::Register))
            .count()
    }
}

/// Builds the circuit for a stateful atom kind.
///
/// The structures follow Table 6: every atom ends in the state register;
/// predicated atoms put operand muxes and a relational unit in front of
/// the result mux tree; each extra predication level adds a relational
/// unit and a mux level; Pairs doubles the datapath and widens the guard
/// operand muxes.
pub fn stateful_circuit(kind: AtomKind) -> Circuit {
    use Component::*;
    match kind {
        AtomKind::Write => Circuit::new(
            "Read/Write",
            &[(Mux2, 2), (Register, 1), (ConstReg, 1)],
            &[Mux2, Register],
        ),
        AtomKind::Raw => Circuit::new(
            "ReadAddWrite (RAW)",
            &[(Mux2, 2), (Adder, 1), (Register, 1), (ConstReg, 1)],
            &[Mux2, Adder, Mux2, Register],
        ),
        AtomKind::Praw => Circuit::new(
            "Predicated ReadAddWrite (PRAW)",
            &[
                (Mux3, 2),
                (Mux2, 3),
                (RelOp, 1),
                (Adder, 1),
                (Register, 1),
                (ConstReg, 2),
            ],
            // Operand mux → relational unit decides → result mux → write
            // mux → register (the adder runs in parallel with the relop;
            // the relop is slower, so it dominates).
            &[Mux3, RelOp, Mux2, Mux2, Register],
        ),
        AtomKind::IfElseRaw => Circuit::new(
            "IfElse ReadAddWrite (IfElseRAW)",
            &[
                (Mux3, 2),
                (Mux2, 4),
                (RelOp, 1),
                (Adder, 2),
                (Register, 1),
                (ConstReg, 2),
            ],
            &[Mux3, RelOp, Mux2, Mux2, Register],
        ),
        AtomKind::Sub => Circuit::new(
            "Subtract (Sub)",
            &[
                (Mux3, 2),
                (Mux2, 5),
                (RelOp, 1),
                (Adder, 2),
                (Subtractor, 2),
                (Register, 1),
                (ConstReg, 2),
            ],
            // The subtractor path overtakes the relop path.
            &[Mux3, Subtractor, Mux2, Mux2, Mux2, Register],
        ),
        AtomKind::Nested => Circuit::new(
            "Nested Ifs (Nested)",
            &[
                (Mux3, 6),
                (Mux2, 10),
                (RelOp, 3),
                (Adder, 4),
                (Subtractor, 4),
                (Register, 1),
                (ConstReg, 4),
            ],
            // Two cascaded predication levels: relop → relop → mux tree.
            &[Mux3, RelOp, RelOp, Mux2, Mux2, Mux2, Register],
        ),
        AtomKind::Pairs => Circuit::new(
            "Paired updates (Pairs)",
            &[
                (Mux3, 12),
                (Mux2, 16),
                (RelOp, 6),
                (Adder, 6),
                (Subtractor, 6),
                (Register, 2),
                (ConstReg, 8),
            ],
            // Like Nested but the guard operand muxes select between two
            // state variables as well (wider mux level first).
            &[Mux3, Mux2, RelOp, RelOp, Mux2, Mux2, Mux2, Register],
        ),
    }
}

/// The single stateless atom of §5.2: arithmetic (add, subtract, shifts),
/// logic (and/or/xor), relational, and conditional operations over two
/// mux-selected packet/constant operands.
pub fn stateless_circuit() -> Circuit {
    use Component::*;
    Circuit::new(
        "Stateless",
        &[
            (Mux3, 2),
            (Mux2, 7),
            (Adder, 1),
            (Subtractor, 1),
            (Shifter, 1),
            (Logic, 3),
            (RelOp, 1),
            (ConstReg, 2),
        ],
        // Operand mux → slowest unit (relop) → result mux tree.
        &[Mux3, RelOp, Mux2, Mux2, Mux2],
    )
}

/// The paper's published Table 3 areas (µm²) for comparison.
pub fn paper_area(kind: AtomKind) -> f64 {
    match kind {
        AtomKind::Write => 250.0,
        AtomKind::Raw => 431.0,
        AtomKind::Praw => 791.0,
        AtomKind::IfElseRaw => 985.0,
        AtomKind::Sub => 1522.0,
        AtomKind::Nested => 3597.0,
        AtomKind::Pairs => 5997.0,
    }
}

/// The paper's published stateless-atom area (µm²).
pub const PAPER_STATELESS_AREA: f64 = 1384.0;

/// The paper's published Table 5 minimum delays (ps).
pub fn paper_delay(kind: AtomKind) -> f64 {
    match kind {
        AtomKind::Write => 176.0,
        AtomKind::Raw => 316.0,
        AtomKind::Praw => 393.0,
        AtomKind::IfElseRaw => 392.0,
        AtomKind::Sub => 409.0,
        AtomKind::Nested => 580.0,
        AtomKind::Pairs => 609.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The calibrated model must land within this relative tolerance of
    /// every published figure.
    const TOLERANCE: f64 = 0.15;

    fn rel_err(got: f64, want: f64) -> f64 {
        (got - want).abs() / want
    }

    #[test]
    fn areas_match_table3_within_tolerance() {
        for kind in AtomKind::ALL {
            let got = stateful_circuit(kind).area();
            let want = paper_area(kind);
            assert!(
                rel_err(got, want) < TOLERANCE,
                "{kind:?}: area {got:.0} vs paper {want:.0}"
            );
        }
        let got = stateless_circuit().area();
        assert!(
            rel_err(got, PAPER_STATELESS_AREA) < TOLERANCE,
            "stateless: area {got:.0} vs paper {PAPER_STATELESS_AREA:.0}"
        );
    }

    #[test]
    fn delays_match_table5_within_tolerance() {
        for kind in AtomKind::ALL {
            let got = stateful_circuit(kind).min_delay_ps();
            let want = paper_delay(kind);
            assert!(
                rel_err(got, want) < TOLERANCE,
                "{kind:?}: delay {got:.0} vs paper {want:.0}"
            );
        }
    }

    #[test]
    fn area_grows_with_expressiveness() {
        // Table 3's central observation: more expressive atoms cost more
        // silicon.
        let areas: Vec<f64> = AtomKind::ALL
            .iter()
            .map(|k| stateful_circuit(*k).area())
            .collect();
        for w in areas.windows(2) {
            assert!(w[1] > w[0], "{areas:?}");
        }
    }

    #[test]
    fn delay_grows_with_expressiveness() {
        // Table 5/6's observation, monotonic in our model (the paper's
        // PRAW/IfElseRAW inversion is synthesis-tool noise, §5.4 footnote).
        let delays: Vec<f64> = AtomKind::ALL
            .iter()
            .map(|k| stateful_circuit(*k).min_delay_ps())
            .collect();
        for w in delays.windows(2) {
            assert!(w[1] >= w[0], "{delays:?}");
        }
    }

    #[test]
    fn line_rate_is_reciprocal_of_delay() {
        let c = stateful_circuit(AtomKind::Write);
        let rate = c.max_line_rate_gpps();
        assert!((rate - 1000.0 / c.min_delay_ps()).abs() < 1e-9);
        // Paper: Write sustains 5.68 B pkts/s at 176 ps.
        assert!(rate > 4.5 && rate < 6.5, "{rate}");
    }

    #[test]
    fn circuit_depth_increases_with_predication() {
        let w = stateful_circuit(AtomKind::Write).logic_depth();
        let p = stateful_circuit(AtomKind::Praw).logic_depth();
        let n = stateful_circuit(AtomKind::Nested).logic_depth();
        assert!(w < p && p < n, "{w} {p} {n}");
    }

    #[test]
    fn all_atoms_meet_timing_at_1ghz() {
        // Table 3: "All atoms meet timing at 1 GHz", i.e. delay < 1000 ps.
        for kind in AtomKind::ALL {
            assert!(stateful_circuit(kind).min_delay_ps() < 1000.0, "{kind:?}");
        }
        assert!(stateless_circuit().min_delay_ps() < 1000.0);
    }
}
